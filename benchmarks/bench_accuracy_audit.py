"""Calibration auditing: probe overhead and measured interval coverage.

Two questions about :class:`repro.obs.audit.CalibrationAuditor`:

* **Probe overhead** -- what does attaching an auditor cost on the
  hot query path, as a function of the audit fraction?  Fraction 0
  must be free (the seeded coin short-circuits); higher fractions pay
  for exact base-data shadows, which is the price of the calibration
  signal.  The no-auditor configuration replicates the
  ``engine_cache.count.uncached`` setup of ``bench_query_path.py`` so
  the committed baselines stay comparable.
* **Measured coverage** -- on a zipf-skewed workload with
  ``conservative_intervals=True`` (distribution-free Hoeffding /
  empirical-Bernstein bounds), does empirical audit coverage meet the
  claimed confidence for count, sum, frequency, and hot-list answers?
  It must: the bounds are finite-sample valid by construction.

Writes ``BENCH_accuracy_audit.json`` at the repository root (the
committed baseline); ``REPRO_BENCH_SMOKE=1`` runs a seconds-scale
configuration into ``bench_out/`` instead.

Run with ``PYTHONPATH=src python benchmarks/bench_accuracy_audit.py``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core import ConciseSample
from repro.engine import (
    ApproximateAnswerEngine,
    CountQuery,
    DataWarehouse,
    FrequencyQuery,
    HotListQuery,
    SumQuery,
)
from repro.estimators import Predicate
from repro.hotlist.concise import ConciseHotList
from repro.hotlist.counting import CountingHotList
from repro.obs.audit import CalibrationAuditor
from repro.obs.clock import perf_counter
from repro.streams import zipf_stream

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

N = 5_000 if SMOKE else 1_000_000
DOMAIN = 500 if SMOKE else 100_000
SKEW = 1.1
FOOTPRINT = 100 if SMOKE else 4_000
QUERIES = 50 if SMOKE else 2_000
FRACTIONS = (0.0, 0.01, 0.10)

COVERAGE_ROWS = 2_000 if SMOKE else 200_000
COVERAGE_BATCHES = 10
COVERAGE_DOMAIN = 100 if SMOKE else 2_000
COVERAGE_SKEW = 1.3
COVERAGE_FRACTION = 0.10

ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = (
    ROOT / "bench_out" / "BENCH_accuracy_audit.json"
    if SMOKE
    else ROOT / "BENCH_accuracy_audit.json"
)


def _timed_loop(calls: int, fn) -> dict:
    fn()  # warm
    start = perf_counter()
    for _ in range(calls):
        fn()
    elapsed = perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "microseconds_per_call": round(1e6 * elapsed / calls, 2),
    }


# ----------------------------------------------------------------------
# Probe overhead: the bench_query_path count workload, audited
# ----------------------------------------------------------------------


def bench_probe_overhead(stream) -> dict:
    def build(auditor: CalibrationAuditor | None):
        warehouse = DataWarehouse()
        warehouse.create_relation("sales", ["item"])
        engine = ApproximateAnswerEngine(warehouse, auditor=auditor)
        engine.register_sample(
            "sales", "item", ConciseSample(FOOTPRINT, seed=6)
        )
        warehouse.load_batch("sales", {"item": stream})
        return engine

    query = CountQuery("sales", "item")
    results: dict = {
        "no_auditor": _timed_loop(
            QUERIES, lambda e=build(None): e.answer(query)
        )
    }
    for fraction in FRACTIONS:
        auditor = CalibrationAuditor(fraction, seed=31)
        engine = build(auditor)
        timing = _timed_loop(QUERIES, lambda: engine.answer(query))
        timing["audit_shadows"] = len(auditor.observations())
        results[f"fraction_{fraction}"] = timing
    results["fraction_0_overhead_ratio"] = round(
        results["fraction_0.0"]["microseconds_per_call"]
        / results["no_auditor"]["microseconds_per_call"],
        3,
    )
    return results


# ----------------------------------------------------------------------
# Measured coverage on a streaming zipf workload
# ----------------------------------------------------------------------


def build_coverage_engine(fraction: float):
    warehouse = DataWarehouse()
    warehouse.create_relation("sales", ["item", "store"])
    auditor = CalibrationAuditor(fraction, seed=47)
    engine = ApproximateAnswerEngine(
        warehouse, auditor=auditor, conservative_intervals=True
    )
    engine.register_sample(
        "sales", "item", ConciseSample(FOOTPRINT, seed=11)
    )
    engine.register_hotlist(
        "sales", "item", ConciseHotList(FOOTPRINT, seed=12)
    )
    engine.register_hotlist(
        "sales",
        "store",
        CountingHotList(footprint_bound=FOOTPRINT, seed=13),
    )
    return warehouse, engine, auditor


def run_coverage_workload(warehouse, engine) -> int:
    """Stream in batches, interleaving every audited query kind."""
    per_batch = COVERAGE_ROWS // COVERAGE_BATCHES
    thresholds = (5, 10, 25, 50, 100, 250)
    queries = 0
    for batch in range(COVERAGE_BATCHES):
        items = zipf_stream(
            per_batch, COVERAGE_DOMAIN, COVERAGE_SKEW, seed=100 + batch
        )
        stores = zipf_stream(per_batch, 50, 0.8, seed=200 + batch)
        warehouse.load_batch(
            "sales", {"item": items, "store": stores}
        )
        for high in thresholds:
            engine.answer(
                CountQuery("sales", "item", Predicate(high=high))
            )
            engine.answer(
                SumQuery("sales", "item", Predicate(high=high))
            )
            engine.answer(FrequencyQuery("sales", "item", value=1))
            engine.answer(HotListQuery("sales", "item", k=10))
            engine.answer(HotListQuery("sales", "store", k=10))
            queries += 5
    return queries


def bench_coverage() -> dict:
    results: dict = {"fractions": {}}
    for fraction in FRACTIONS:
        warehouse, engine, auditor = build_coverage_engine(fraction)
        start = perf_counter()
        queries = run_coverage_workload(warehouse, engine)
        elapsed = perf_counter() - start
        results["fractions"][f"fraction_{fraction}"] = {
            "seconds": round(elapsed, 4),
            "queries": queries,
            "audit_shadows": len(auditor.observations()),
        }
        if fraction == COVERAGE_FRACTION:
            snapshot = auditor.snapshot()
            results["calibration"] = snapshot
            results["coverage_ok"] = all(
                row["coverage"] is None
                or row["coverage"] >= row["mean_claimed_confidence"]
                for row in snapshot
            )
            results["audited_query_kinds"] = sorted(
                {row["query"] for row in snapshot}
            )
    return results


def main() -> dict:
    stream = zipf_stream(N, DOMAIN, SKEW, seed=1)
    results = {
        "config": {
            "inserts": N,
            "domain": DOMAIN,
            "zipf_skew": SKEW,
            "footprint_bound": FOOTPRINT,
            "query_calls": QUERIES,
            "audit_fractions": list(FRACTIONS),
            "coverage_rows": COVERAGE_ROWS,
            "coverage_batches": COVERAGE_BATCHES,
            "coverage_domain": COVERAGE_DOMAIN,
            "coverage_zipf_skew": COVERAGE_SKEW,
            "coverage_fraction": COVERAGE_FRACTION,
        },
        "probe_overhead": bench_probe_overhead(stream),
        "coverage": bench_coverage(),
    }
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\nwritten to {RESULT_PATH}")
    return results


if __name__ == "__main__":
    main()
