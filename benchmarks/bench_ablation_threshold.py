"""Ablation: threshold-raise policy choices (paper Section 3.1).

The paper raises by 10% per eviction round and sketches two smarter
alternatives (binary search on the expected footprint decrease, and a
singleton-count lower bound).  This bench compares raise factors and
policies on the same streams along the axes the paper discusses:
final sample-size (bigger is better), number of raise rounds, and coin
flips per insert.
"""

from __future__ import annotations

import numpy as np

from common import print_series, profile
from repro.core import ConciseSample
from repro.core.thresholds import (
    BinarySearchRaise,
    MultiplicativeRaise,
    SingletonBoundRaise,
)
from repro.randkit import spawn_seeds
from repro.streams import zipf_stream

FOOTPRINT = 1_000
DOMAIN = 5_000
SKEW = 1.0

POLICIES = {
    "mult x1.01": lambda: MultiplicativeRaise(1.01),
    "mult x1.1 (paper)": lambda: MultiplicativeRaise(1.1),
    "mult x1.5": lambda: MultiplicativeRaise(1.5),
    "mult x4.0": lambda: MultiplicativeRaise(4.0),
    "binary search": lambda: BinarySearchRaise(),
    "singleton bound": lambda: SingletonBoundRaise(),
}


def _measure(active):
    rows = {}
    for name, make_policy in POLICIES.items():
        sizes, raises, flips = [], [], []
        for seed in spawn_seeds(9000, active.trials):
            stream = zipf_stream(active.inserts, DOMAIN, SKEW, seed)
            sample = ConciseSample(
                FOOTPRINT, seed=seed + 1, policy=make_policy()
            )
            sample.insert_array(stream)
            sizes.append(sample.sample_size)
            raises.append(sample.counters.threshold_raises)
            flips.append(sample.counters.flips_per_insert())
        rows[name] = (
            float(np.mean(sizes)),
            float(np.mean(raises)),
            float(np.mean(flips)),
        )
    return rows


def test_threshold_policy_ablation(benchmark):
    active = profile()
    rows = benchmark.pedantic(_measure, args=(active,), rounds=1,
                              iterations=1)
    print_series(
        f"Threshold-policy ablation: {active.inserts:,} values in "
        f"[1,{DOMAIN}], zipf {SKEW}, footprint {FOOTPRINT} "
        f"({active.name} profile)",
        ["policy", "sample-size", "raises", "flips/insert"],
        [
            [name, round(size, 0), round(raise_count, 1), round(f, 4)]
            for name, (size, raise_count, f) in rows.items()
        ],
        widths=[20, 14, 10, 14],
    )

    sizes = {name: row[0] for name, row in rows.items()}
    raises = {name: row[1] for name, row in rows.items()}

    # Larger raises evict more aggressively: fewer rounds ...
    assert raises["mult x4.0"] < raises["mult x1.1 (paper)"]
    assert raises["mult x1.1 (paper)"] < raises["mult x1.01"]
    # ... without a sample-size payoff: the final size is governed by
    # n / final-threshold, so the aggressive policy never *gains*
    # sample-size, it only saves raise rounds (the trade-off is in
    # time spent under-full right after each overshoot).
    assert sizes["mult x4.0"] <= sizes["mult x1.1 (paper)"] * 1.15
    # The gentle and smart policies all keep the sample within ~15% of
    # the best observed size.
    best = max(sizes.values())
    for name in ("mult x1.1 (paper)", "binary search", "singleton bound"):
        assert sizes[name] > 0.8 * best, f"{name} lost too much sample"
    # Smart policies don't explode the raise count relative to the
    # over-eager x1.01 policy.
    assert raises["binary search"] < raises["mult x1.01"]
    assert raises["singleton bound"] < raises["mult x1.01"]
