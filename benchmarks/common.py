"""Shared experiment plumbing for the benchmark suite.

The actual drivers live in :mod:`repro.experiments` (they are part of
the library so the ``python -m repro.experiments`` CLI can reuse
them); this module adapts their names to what the benchmark files use
and pins the profile selection.
"""

from __future__ import annotations

from repro.experiments import (
    FULL_PROFILE,
    HotListRun,
    Profile,
    ScenarioStats,
    active_profile,
    figure3_scenario,
    figure3_sweep,
    hotlist_scenario,
    print_series,
)

__all__ = [
    "FULL_PROFILE",
    "HotListRun",
    "Profile",
    "ScenarioStats",
    "figure3_scenario",
    "figure3_sweep",
    "hotlist_scenario",
    "print_series",
    "profile",
]

# Benchmark files historically call this `profile()`.
profile = active_profile
