"""Query-path latency: columnar kernels and the answer cache.

Measures the two layers the columnar refactor added to the serving
path:

* **Reporter kernels** -- steady-state ``report(k)`` latency of the
  hot-list reporters against the historical dict-path implementation
  (kept verbatim below as the reference), on the same loaded synopsis.
* **Answer cache** -- repeated ``engine.answer`` latency with and
  without the epoch-invalidated :class:`QueryResultCache` attached.
* **Estimator kernels** -- the vectorized sample-join cross product
  and ``FrequencyTable.top_k`` against their dict/sort references.

Writes ``BENCH_query_path.json`` at the repository root (the committed
baseline the CI trajectory tracks); ``REPRO_BENCH_SMOKE=1`` runs a
seconds-scale configuration into ``bench_out/`` instead.

Run with ``PYTHONPATH=src python benchmarks/bench_query_path.py``.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from pathlib import Path

import numpy as np

from repro.core import ConciseSample
from repro.engine import (
    ApproximateAnswerEngine,
    CountQuery,
    DataWarehouse,
    HotListQuery,
    JoinSizeQuery,
    QueryResultCache,
)
from repro.estimators.joins import join_size_from_samples
from repro.hotlist.base import HotListAnswer, kth_largest, order_entries
from repro.hotlist.concise import ConciseHotList
from repro.hotlist.counting import CountingHotList
from repro.hotlist.sorted_concise import SortedConciseHotList
from repro.hotlist.traditional import TraditionalHotList
from repro.obs.clock import perf_counter
from repro.stats.frequency import FrequencyTable
from repro.stats.theory import counting_report_cutoff
from repro.streams import zipf_stream

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

N = 5_000 if SMOKE else 1_000_000
DOMAIN = 500 if SMOKE else 100_000
SKEW = 1.1
FOOTPRINT = 100 if SMOKE else 4_000
K = 10
REPORTS = 50 if SMOKE else 2_000
QUERIES = 50 if SMOKE else 2_000
ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = (
    ROOT / "bench_out" / "BENCH_query_path.json"
    if SMOKE
    else ROOT / "BENCH_query_path.json"
)


# ----------------------------------------------------------------------
# The historical dict-path reporters (pre-kernel), as references
# ----------------------------------------------------------------------


def dict_report_scaled(sample, k: int, theta: int) -> HotListAnswer:
    """The old concise/traditional report: dict walk + full sort."""
    if sample.sample_size == 0:
        return HotListAnswer(k=k)
    counts = dict(sample.pairs())
    cutoff = max(kth_largest(counts.values(), k), theta)
    scale = sample.total_inserted / sample.sample_size
    estimates = {
        value: count * scale
        for value, count in counts.items()
        if count >= cutoff
    }
    return HotListAnswer(k=k, entries=order_entries(estimates))


def dict_report_counting(reporter, k: int) -> HotListAnswer:
    """The old counting report: dict walk + compensation."""
    sample = reporter.sample
    counts = sample.as_dict()
    if not counts:
        return HotListAnswer(k=k)
    threshold = sample.threshold
    if threshold <= 1.0:
        cutoff = float(kth_largest(counts.values(), k))
        compensation = 0.0
    else:
        cutoff = max(
            float(kth_largest(counts.values(), k)),
            counting_report_cutoff(threshold),
        )
        compensation = reporter.compensation()
    estimates = {
        value: count + compensation
        for value, count in counts.items()
        if count >= cutoff
    }
    return HotListAnswer(k=k, entries=order_entries(estimates))


def dict_join_cross(left_points, right_points) -> int:
    """The old sample-join cross product: two Counters + dict probe."""
    left_counts = Counter(left_points.tolist())
    right_counts = Counter(right_points.tolist())
    return sum(
        count * right_counts[value]
        for value, count in left_counts.items()
        if value in right_counts
    )


def sorted_top_k(counts: dict, k: int) -> list:
    """The old FrequencyTable.top_k: sort every distinct value."""
    ordered = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return ordered[:k]


def _timed_loop(calls: int, fn) -> dict:
    fn()  # warm (memoized views, JIT-ish dict caches)
    start = perf_counter()
    for _ in range(calls):
        fn()
    elapsed = perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "microseconds_per_call": round(1e6 * elapsed / calls, 2),
    }


def bench_reporters(stream) -> dict:
    results: dict = {}
    loaded = []
    for name, build, reference in (
        (
            "concise",
            lambda: ConciseHotList(FOOTPRINT, seed=2),
            lambda r: dict_report_scaled(r.sample, K, 3),
        ),
        (
            "counting",
            lambda: CountingHotList(FOOTPRINT, seed=3),
            lambda r: dict_report_counting(r, K),
        ),
        (
            "traditional",
            lambda: TraditionalHotList(FOOTPRINT, seed=4),
            lambda r: dict_report_scaled(r.sample, K, 3),
        ),
        (
            "sorted_concise",
            lambda: SortedConciseHotList(FOOTPRINT, seed=5),
            None,
        ),
    ):
        reporter = build()
        reporter.insert_array(stream)
        loaded.append(reporter)
        columnar = _timed_loop(REPORTS, lambda: reporter.report(K))
        entry = {"columnar": columnar}
        if reference is not None:
            dict_path = _timed_loop(REPORTS, lambda: reference(reporter))
            entry["dict_path"] = dict_path
            entry["speedup"] = round(
                dict_path["seconds"] / columnar["seconds"], 2
            )
        results[name] = entry
    return results


def bench_engine_cache(stream) -> dict:
    def build(with_cache: bool):
        warehouse = DataWarehouse()
        warehouse.create_relation("sales", ["item"])
        warehouse.create_relation("returns", ["item"])
        cache = QueryResultCache(capacity=64) if with_cache else None
        engine = ApproximateAnswerEngine(warehouse, cache=cache)
        engine.register_sample(
            "sales", "item", ConciseSample(FOOTPRINT, seed=6)
        )
        engine.register_hotlist(
            "sales", "item", ConciseHotList(FOOTPRINT, seed=7)
        )
        engine.register_hotlist(
            "returns", "item", ConciseHotList(FOOTPRINT, seed=8)
        )
        warehouse.load_batch("sales", {"item": stream})
        warehouse.load_batch(
            "returns", {"item": stream[: max(len(stream) // 4, 1)]}
        )
        return engine

    queries = {
        "count": CountQuery("sales", "item"),
        "hotlist": HotListQuery("sales", "item", k=K),
        "join_size": JoinSizeQuery("sales", "item", "returns", "item"),
    }
    uncached_engine = build(False)
    cached_engine = build(True)
    results: dict = {}
    for name, query in queries.items():
        uncached = _timed_loop(
            QUERIES, lambda: uncached_engine.answer(query)
        )
        cached = _timed_loop(QUERIES, lambda: cached_engine.answer(query))
        results[name] = {
            "uncached": uncached,
            "cache_hit": cached,
            "hit_speedup": round(
                uncached["seconds"] / cached["seconds"], 2
            ),
        }
    results["cache_stats"] = cached_engine.cache.stats
    return results


def bench_estimators(stream) -> dict:
    half = len(stream) // 2
    left, right = stream[:half], stream[half:]
    new_join = _timed_loop(
        max(REPORTS // 10, 5),
        lambda: join_size_from_samples(left, right, N, N),
    )
    old_join = _timed_loop(
        max(REPORTS // 10, 5), lambda: dict_join_cross(left, right)
    )
    table = FrequencyTable(stream)
    counts = dict(table.items())
    new_topk = _timed_loop(REPORTS, lambda: table.top_k(K))
    old_topk = _timed_loop(REPORTS, lambda: sorted_top_k(counts, K))
    return {
        "sample_join": {
            "dict_path": old_join,
            "vectorized": new_join,
            "speedup": round(
                old_join["seconds"] / new_join["seconds"], 2
            ),
        },
        "frequency_top_k": {
            "full_sort": old_topk,
            "argpartition": new_topk,
            "speedup": round(
                old_topk["seconds"] / new_topk["seconds"], 2
            ),
        },
    }


def main() -> dict:
    stream = zipf_stream(N, DOMAIN, SKEW, seed=1)
    results = {
        "config": {
            "inserts": N,
            "domain": DOMAIN,
            "zipf_skew": SKEW,
            "footprint_bound": FOOTPRINT,
            "k": K,
            "report_calls": REPORTS,
            "query_calls": QUERIES,
        },
        "reporters": bench_reporters(stream),
        "engine_cache": bench_engine_cache(stream),
        "estimators": bench_estimators(stream),
    }
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\nwritten to {RESULT_PATH}")
    return results


if __name__ == "__main__":
    main()
