"""Counting samples under deletions (paper Section 4.1).

Concise samples cannot be maintained under deletions; counting samples
can, with O(1) expected update time per delete.  This bench replays
mixed insert/delete streams at increasing delete fractions and
reports hot-list accuracy against the *live* data plus per-operation
overheads, asserting that accuracy holds up and the footprint bound is
never violated.
"""

from __future__ import annotations

from common import print_series, profile
from repro.hotlist import CountingHotList, evaluate_hotlist
from repro.randkit import spawn_seeds
from repro.stats.frequency import FrequencyTable
from repro.streams import insert_delete_stream, zipf_stream
from repro.streams.operations import Insert

FOOTPRINT = 500
DOMAIN = 5_000
SKEW = 1.25
K = 20
DELETE_FRACTIONS = [0.0, 0.2, 0.4]


def _measure(active):
    rows = []
    seed = spawn_seeds(7000, 1)[0]
    values = zipf_stream(active.inserts, DOMAIN, SKEW, seed)
    for fraction in DELETE_FRACTIONS:
        operations = insert_delete_stream(values, fraction, seed + 1)
        reporter = CountingHotList(FOOTPRINT, seed=seed + 2)
        live = FrequencyTable()
        for operation in operations:
            if isinstance(operation, Insert):
                reporter.insert(operation.value)
                live.insert(operation.value)
            else:
                reporter.delete(operation.value)
                live.delete(operation.value)
        assert reporter.footprint <= FOOTPRINT
        reporter.sample.check_invariants()
        evaluation = evaluate_hotlist(reporter.report(K), live, K)
        counters = reporter.counters
        total_ops = counters.inserts + counters.deletes
        rows.append(
            [
                fraction,
                total_ops,
                evaluation.true_positives,
                round(evaluation.mean_count_error, 4),
                round(counters.flips / total_ops, 4),
                round(counters.lookups / total_ops, 4),
            ]
        )
    return rows


def test_deletion_workloads(benchmark):
    active = profile()
    rows = benchmark.pedantic(_measure, args=(active,), rounds=1,
                              iterations=1)
    print_series(
        f"Counting samples under deletions: zipf {SKEW} over "
        f"[1,{DOMAIN}], footprint {FOOTPRINT}, top-{K} vs live data "
        f"({active.name} profile)",
        [
            "del frac",
            "ops",
            f"hits/{K}",
            "mean err",
            "flips/op",
            "lookups/op",
        ],
        rows,
        widths=[10, 12, 10, 12, 12, 13],
    )
    for fraction, _, hits, mean_error, flips, lookups in rows:
        assert hits >= K - 4, f"fraction {fraction}: too many misses"
        assert mean_error < 0.2
        assert flips < 0.5
        assert lookups == 1.0  # one per operation, insert or delete
