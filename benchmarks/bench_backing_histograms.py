"""Concise samples as backing samples for histograms (paper Section 2).

"A concise sample could be used as a backing sample, for more sample
points for the same footprint."  This bench quantifies that: build
equi-depth, Compressed, and V-optimal histograms from a traditional
reservoir backing sample and from a concise backing sample of the same
footprint, and compare range-selectivity errors against exact answers.
Concise backing should win on skewed data -- that is the claim.
"""

from __future__ import annotations

import numpy as np

from common import print_series, profile
from repro.core import ConciseSample, ReservoirSample
from repro.randkit import spawn_seeds
from repro.streams import zipf_stream
from repro.synopses import (
    CompressedHistogram,
    EquiDepthHistogram,
    VOptimalHistogram,
)

FOOTPRINT = 500
DOMAIN = 20_000
SKEW = 1.25
BUCKETS = 32

RANGES = [(1, 10), (1, 100), (50, 500), (500, 5_000), (5_000, 20_000)]

BUILDERS = {
    "equi-depth": EquiDepthHistogram.from_sample,
    "Compressed": CompressedHistogram.from_sample,
    "V-optimal": VOptimalHistogram.from_sample,
}


def _mean_error(points, stream, builder):
    histogram = builder(points, BUCKETS, len(stream))
    errors = []
    for low, high in RANGES:
        truth = float(np.count_nonzero((stream >= low) & (stream <= high)))
        estimate = histogram.estimate_range(low, high)
        errors.append(
            abs(estimate - truth) / truth if truth else abs(estimate)
        )
    return float(np.mean(errors))


def _measure(active):
    rows = {name: {"traditional": [], "concise": []} for name in BUILDERS}
    gains = []
    for seed in spawn_seeds(8000, active.trials):
        stream = zipf_stream(active.inserts, DOMAIN, SKEW, seed)
        traditional = ReservoirSample(FOOTPRINT, seed=seed + 1)
        concise = ConciseSample(FOOTPRINT, seed=seed + 2)
        traditional.insert_array(stream)
        concise.insert_array(stream)
        gains.append(concise.sample_size / traditional.sample_size)
        for name, builder in BUILDERS.items():
            rows[name]["traditional"].append(
                _mean_error(traditional.as_array(), stream, builder)
            )
            rows[name]["concise"].append(
                _mean_error(concise.sample_points(), stream, builder)
            )
    return rows, float(np.mean(gains))


def test_backing_sample_histograms(benchmark):
    active = profile()
    rows, gain = benchmark.pedantic(
        _measure, args=(active,), rounds=1, iterations=1
    )
    print_series(
        f"Backing-sample comparison: zipf {SKEW} over [1,{DOMAIN}], "
        f"footprint {FOOTPRINT}, {BUCKETS} buckets; concise backing "
        f"holds {gain:.1f}x the points ({active.name} profile)",
        ["histogram", "traditional err", "concise err"],
        [
            [
                name,
                round(float(np.mean(errors["traditional"])), 4),
                round(float(np.mean(errors["concise"])), 4),
            ]
            for name, errors in rows.items()
        ],
        widths=[14, 18, 14],
    )
    assert gain > 1.5
    for name, errors in rows.items():
        traditional_error = float(np.mean(errors["traditional"]))
        concise_error = float(np.mean(errors["concise"]))
        # The Section-2 claim: more backing points, better histograms.
        assert concise_error <= traditional_error * 1.05, (
            f"{name}: concise backing did not help"
        )
