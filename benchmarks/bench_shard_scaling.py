"""Shard-scaling: sustained mixed serving at 1 -> 2 -> 4 -> 8 shards.

Drives a :class:`~repro.cluster.ShardedWarehouse` fleet end to end --
worker processes, per-shard WALs, the CRC-framed scatter codec, the
gather estimator algebra -- under the workload a sharded warehouse
exists for: **serving queries while ingest continues**.  Every level
gets the same zipf stream, the same query mix, and the same *total*
synopsis footprint budget (the paper's fixed-memory framing, split
``total / shards`` per worker, matching ``merged_synopsis``'s default
bound and the statistical-equivalence tests).

The scaling mechanism is the partitioning itself: a routed frequency
query scans the owner shard's sample, which holds ``~1/shards`` of the
points a single-process sample holds at the same total budget, so the
per-query answer cost falls with the shard count while accuracy is
unchanged (each shard's sampling fraction equals the oracle's).  In
the sustained mix below that frees the serving loop to ingest -- both
throughput numbers are wall-clock measurements of the same loop.

A second section kills a worker mid-serving: the survivors keep
answering (degraded answers counted), the coordinator restarts the
victim from its WAL, and the rejoined fleet serves at full coverage;
``tests/test_cluster_statistical.py::TestRecoveredClusterMatchesOracle``
is the chi-square battery for exactly this recovered state.

Writes ``BENCH_shard_scaling.json`` at the repository root (the
committed baseline the CI trajectory tracks); ``REPRO_BENCH_SMOKE=1``
runs a seconds-scale configuration into ``bench_out/`` instead.

Run with ``PYTHONPATH=src python benchmarks/bench_shard_scaling.py``.
"""

from __future__ import annotations

import json
import os
import shutil
import statistics
import tempfile
from pathlib import Path

import numpy as np

from repro.cluster import ShardedWarehouse, shard_of_value
from repro.engine import CountQuery, FrequencyQuery
from repro.obs.clock import perf_counter
from repro.randkit import numpy_generator
from repro.streams import zipf_stream

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

PRELOAD = 20_000 if SMOKE else 2_000_000
DISTINCT = 2_000 if SMOKE else 100_000
SKEW = 1.25
TOTAL_BOUND = 2_000 if SMOKE else 64_000
SHARD_LEVELS = (1, 2) if SMOKE else (1, 2, 4, 8)
ROUNDS = 3 if SMOKE else 12
ROWS_PER_ROUND = 500 if SMOKE else 2_000
QUERIES_PER_ROUND = 32 if SMOKE else 256
SYNC_EVERY = 64
LOAD_BATCH = 5_000 if SMOKE else 50_000

RECOVERY_SHARDS = 2 if SMOKE else 8
RECOVERY_PRELOAD = 5_000 if SMOKE else 200_000
RECOVERY_ROUNDS = 2 if SMOKE else 6
RECOVERY_TIMEOUT = 120.0

ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = (
    ROOT / "bench_out" / "BENCH_shard_scaling.json"
    if SMOKE
    else ROOT / "BENCH_shard_scaling.json"
)

RELATION = "sales"
ATTRIBUTE = "item"


def build_stream() -> np.ndarray:
    return zipf_stream(
        PRELOAD + ROUNDS * ROWS_PER_ROUND, DISTINCT, SKEW, seed=9
    )


def build_queries(stream: np.ndarray) -> list[FrequencyQuery]:
    """Routed point queries over values drawn from the stream itself."""
    rng = numpy_generator(3)
    values = rng.choice(stream[:PRELOAD], size=QUERIES_PER_ROUND)
    return [
        FrequencyQuery(RELATION, ATTRIBUTE, value=int(v)) for v in values
    ]


def run_level(
    shards: int, stream: np.ndarray, queries: list[FrequencyQuery]
) -> dict:
    """One shard count: preload, then the sustained serving mix."""
    directory = tempfile.mkdtemp(prefix=f"bench-shards-{shards}-")
    try:
        with ShardedWarehouse(
            shards, directory, seed=5, sync_every=SYNC_EVERY
        ) as warehouse:
            warehouse.create_relation(RELATION, [ATTRIBUTE])
            warehouse.register_synopsis(
                RELATION,
                ATTRIBUTE,
                footprint_bound=TOTAL_BOUND // shards,
            )
            start = perf_counter()
            for offset in range(0, PRELOAD, LOAD_BATCH):
                warehouse.load_batch(
                    RELATION,
                    {ATTRIBUTE: stream[offset : offset + LOAD_BATCH]},
                )
            preload_seconds = perf_counter() - start

            warehouse.answer_batch(queries[:4])  # warm the fleet
            position = PRELOAD
            round_seconds = []
            for _ in range(ROUNDS):
                start = perf_counter()
                warehouse.load_batch(
                    RELATION,
                    {
                        ATTRIBUTE: stream[
                            position : position + ROWS_PER_ROUND
                        ]
                    },
                )
                warehouse.answer_batch(queries)
                round_seconds.append(perf_counter() - start)
                position += ROWS_PER_ROUND
            wall = sum(round_seconds)
            merged = warehouse.merged_synopsis(RELATION, ATTRIBUTE)
            return {
                "shards": shards,
                "per_shard_footprint_bound": TOTAL_BOUND // shards,
                "preload_seconds": round(preload_seconds, 3),
                "ingest_rows_per_s": round(
                    ROUNDS * ROWS_PER_ROUND / wall, 1
                ),
                "query_qps": round(
                    ROUNDS * QUERIES_PER_ROUND / wall, 1
                ),
                "round_p50_ms": round(
                    statistics.median(round_seconds) * 1e3, 2
                ),
                "wall_seconds": round(wall, 3),
                "merged_sample_size": merged.sample_size,
                "merged_footprint": merged.footprint,
            }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def run_recovery(stream: np.ndarray) -> dict:
    """Kill one shard under load; survivors answer, victim rejoins.

    ``sync_every=1`` makes every acknowledged batch durable, so the
    post-recovery count must equal the acknowledged rows exactly.
    """
    shards = RECOVERY_SHARDS
    queries = [
        FrequencyQuery(RELATION, ATTRIBUTE, value=int(v))
        for v in np.unique(stream[:256])[:16]
    ]
    # Queries the surviving shards own outright: these keep answering
    # at full coverage while shard 0 is down, without waiting on it.
    survivor_queries = [
        query
        for query in queries
        if shard_of_value(query.value, shards) != 0
    ]
    scatter_query = CountQuery(RELATION, ATTRIBUTE)
    directory = tempfile.mkdtemp(prefix="bench-shards-recovery-")
    try:
        with ShardedWarehouse(
            shards, directory, seed=6, sync_every=1
        ) as warehouse:
            warehouse.create_relation(RELATION, [ATTRIBUTE])
            warehouse.register_synopsis(
                RELATION,
                ATTRIBUTE,
                footprint_bound=TOTAL_BOUND // shards,
            )
            acked = 0
            for offset in range(0, RECOVERY_PRELOAD, LOAD_BATCH):
                acked += warehouse.load_batch(
                    RELATION,
                    {ATTRIBUTE: stream[offset : offset + LOAD_BATCH]},
                )

            def serve_round(position: int) -> tuple[float, int]:
                start = perf_counter()
                rows = warehouse.load_batch(
                    RELATION,
                    {
                        ATTRIBUTE: stream[
                            position : position + ROWS_PER_ROUND
                        ]
                    },
                )
                warehouse.answer_batch(queries)
                return perf_counter() - start, rows

            position = RECOVERY_PRELOAD
            healthy_rounds = []
            for _ in range(RECOVERY_ROUNDS):
                seconds, rows = serve_round(position)
                healthy_rounds.append(seconds)
                acked += rows
                position += ROWS_PER_ROUND

            warehouse.kill_shard(0)
            killed_at = perf_counter()
            degraded_answers = 0
            degraded_rounds = []
            while True:
                # Serve from the survivors: scatter answers come back
                # flagged degraded, survivor-routed ones at full
                # coverage.  At least one such round always runs
                # before the health poll.
                start = perf_counter()
                answer = warehouse.answer(scatter_query)
                warehouse.answer_batch(survivor_queries)
                degraded_rounds.append(perf_counter() - start)
                if answer.degraded:
                    degraded_answers += 1
                if warehouse.wait_until_healthy(timeout=0.05):
                    break
                if perf_counter() - killed_at > RECOVERY_TIMEOUT:
                    raise RuntimeError("shard never rejoined")
            recovery_seconds = perf_counter() - killed_at

            post_rounds = []
            for _ in range(RECOVERY_ROUNDS):
                seconds, rows = serve_round(position)
                post_rounds.append(seconds)
                acked += rows
                position += ROWS_PER_ROUND
            final = warehouse.answer(scatter_query)
            merged = warehouse.merged_synopsis(RELATION, ATTRIBUTE)
            merged.check_invariants()
            return {
                "shards": shards,
                "degraded_answers": degraded_answers,
                "recovery_seconds": round(recovery_seconds, 3),
                "healthy_round_p50_ms": round(
                    statistics.median(healthy_rounds) * 1e3, 2
                ),
                "degraded_round_p50_ms": round(
                    statistics.median(degraded_rounds) * 1e3, 2
                )
                if degraded_rounds
                else None,
                "post_recovery_round_p50_ms": round(
                    statistics.median(post_rounds) * 1e3, 2
                ),
                "post_recovery_degraded": final.degraded,
                "post_recovery_count": float(final.answer),
                "acknowledged_rows": acked,
                "exact_coverage": float(final.answer) == float(acked),
                "merged_sample_size": merged.sample_size,
                "equivalence_suite": (
                    "tests/test_cluster_statistical.py::"
                    "TestRecoveredClusterMatchesOracle"
                ),
            }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def main() -> dict:
    stream = build_stream()
    queries = build_queries(stream)
    levels = [
        run_level(shards, stream, queries) for shards in SHARD_LEVELS
    ]
    base, top = levels[0], levels[-1]
    results = {
        "config": {
            "cpu_cores": os.cpu_count(),
            "preload_rows": PRELOAD,
            "domain": DISTINCT,
            "zipf_skew": SKEW,
            "total_footprint_bound": TOTAL_BOUND,
            "shard_levels": list(SHARD_LEVELS),
            "rounds": ROUNDS,
            "rows_per_round": ROWS_PER_ROUND,
            "queries_per_round": QUERIES_PER_ROUND,
            "sync_every": SYNC_EVERY,
        },
        "levels": levels,
        "speedups": {
            "shards": f"{top['shards']}x_vs_{base['shards']}x",
            "ingest": round(
                top["ingest_rows_per_s"] / base["ingest_rows_per_s"], 2
            ),
            "query": round(top["query_qps"] / base["query_qps"], 2),
        },
        "recovery_while_serving": run_recovery(stream),
    }
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\nwritten to {RESULT_PATH}")
    return results


if __name__ == "__main__":
    main()
