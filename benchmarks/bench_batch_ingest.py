"""Ingest throughput: per-row vs vectorized batch vs sharded-parallel.

Measures the three ingestion paths introduced by the batch pipeline --
the per-element ``insert`` loop, the vectorized ``insert_array``, and
``ShardedSynopsis`` parallel ingest -- for concise and counting
samples, plus end-to-end ``DataWarehouse.load`` vs ``load_batch``
with an engine synopsis attached.  Writes the measured numbers to
``BENCH_batch_ingest.json`` at the repository root (the committed
baseline the CI trajectory tracks).

Run with ``PYTHONPATH=src python benchmarks/bench_batch_ingest.py``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.core import ConciseSample, CountingSample, ShardedSynopsis
from repro.engine import ApproximateAnswerEngine, DataWarehouse
from repro.obs.clock import perf_counter
from repro.streams import zipf_stream

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

# The acceptance configuration: zipf-1.25 stream, N=500K, footprint
# 1000 (paper-scale stream; the batch speedups only grow with N).
N = 2_000 if SMOKE else 500_000
DOMAIN = 200 if SMOKE else 50_000
SKEW = 1.25
FOOTPRINT = 64 if SMOKE else 1_000
SHARDS = 4
ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = (
    ROOT / "bench_out" / "BENCH_batch_ingest.json"
    if SMOKE
    else ROOT / "BENCH_batch_ingest.json"
)


def _timed(build, ingest, stream) -> dict:
    synopsis = build()
    start = perf_counter()
    ingest(synopsis, stream)
    elapsed = perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "rows_per_second": round(len(stream) / elapsed),
    }


def bench_core_sample(make, stream) -> dict:
    per_row = _timed(
        make,
        lambda s, values: s.insert_many(values.tolist()),
        stream,
    )
    batch = _timed(
        make, lambda s, values: s.insert_array(values), stream
    )
    return {
        "per_row": per_row,
        "batch": batch,
        "batch_speedup": round(
            per_row["seconds"] / batch["seconds"], 2
        ),
    }


def bench_sharded(factory, stream) -> dict:
    sharded = _timed(
        lambda: factory(SHARDS, FOOTPRINT, seed=4),
        lambda s, values: s.insert_array(values),
        stream,
    )
    return sharded


def bench_warehouse(stream) -> dict:
    stores = np.ones(len(stream), dtype=np.int64)

    def build(seed):
        warehouse = DataWarehouse()
        warehouse.create_relation("sales", ["store", "item"])
        engine = ApproximateAnswerEngine(warehouse)
        engine.register_sample(
            "sales", "item", ConciseSample(FOOTPRINT, seed=seed)
        )
        engine.register_sample(
            "sales", "store", CountingSample(FOOTPRINT, seed=seed + 1)
        )
        return warehouse

    warehouse = build(10)
    rows = list(zip(stores.tolist(), stream.tolist(), strict=True))
    start = perf_counter()
    warehouse.load("sales", rows)
    per_row_seconds = perf_counter() - start

    warehouse = build(20)
    start = perf_counter()
    warehouse.load_batch("sales", {"store": stores, "item": stream})
    batch_seconds = perf_counter() - start

    return {
        "per_row": {
            "seconds": round(per_row_seconds, 4),
            "rows_per_second": round(len(stream) / per_row_seconds),
        },
        "batch": {
            "seconds": round(batch_seconds, 4),
            "rows_per_second": round(len(stream) / batch_seconds),
        },
        "batch_speedup": round(per_row_seconds / batch_seconds, 2),
    }


def main() -> dict:
    stream = zipf_stream(N, DOMAIN, SKEW, seed=1)

    results = {
        "config": {
            "inserts": N,
            "domain": DOMAIN,
            "zipf_skew": SKEW,
            "footprint_bound": FOOTPRINT,
            "shards": SHARDS,
        },
        "concise": bench_core_sample(
            lambda: ConciseSample(FOOTPRINT, seed=2), stream
        ),
        "counting": bench_core_sample(
            lambda: CountingSample(FOOTPRINT, seed=3), stream
        ),
        "warehouse": bench_warehouse(stream),
    }
    results["concise"]["sharded"] = bench_sharded(
        ShardedSynopsis.concise, stream
    )
    results["counting"]["sharded"] = bench_sharded(
        ShardedSynopsis.counting, stream
    )

    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\nwritten to {RESULT_PATH}")
    return results


if __name__ == "__main__":
    main()
