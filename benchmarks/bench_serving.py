"""Serving-path latency and throughput: concurrent clients over TCP.

Drives the :mod:`repro.serving` stack end to end -- real sockets, the
CRC-framed wire codec, session dispatch, the engine answer path -- at
1, 8, and 32 concurrent clients, and reports per-request p50/p99
latency plus aggregate throughput for two cache temperatures:

* **cold** -- every request is a distinct predicate, so the
  epoch-invalidated :class:`QueryResultCache` misses and the engine
  recomputes from the synopsis;
* **hot** -- every request repeats one query, so after the first
  answer the server serves cache hits.

Writes ``BENCH_serving.json`` at the repository root (the committed
baseline the CI trajectory tracks); ``REPRO_BENCH_SMOKE=1`` runs a
seconds-scale configuration into ``bench_out/`` instead.

Run with ``PYTHONPATH=src python benchmarks/bench_serving.py``.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path

import numpy as np

from repro.core import ConciseSample
from repro.engine import (
    ApproximateAnswerEngine,
    CountQuery,
    DataWarehouse,
    HotListQuery,
    QueryResultCache,
)
from repro.estimators.selectivity import Predicate
from repro.hotlist.concise import ConciseHotList
from repro.obs.clock import perf_counter
from repro.obs.metrics import MetricsRegistry
from repro.serving import AQPClient, AQPServer
from repro.streams import zipf_stream

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

N = 5_000 if SMOKE else 200_000
DOMAIN = 500 if SMOKE else 20_000
SKEW = 1.1
FOOTPRINT = 100 if SMOKE else 2_000
CLIENT_LEVELS = (1, 4) if SMOKE else (1, 8, 32)
REQUESTS_PER_CLIENT = 8 if SMOKE else 250
K = 10
ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = (
    ROOT / "bench_out" / "BENCH_serving.json"
    if SMOKE
    else ROOT / "BENCH_serving.json"
)

RELATION = "sales"
ATTRIBUTE = "item"


def build_server() -> AQPServer:
    warehouse = DataWarehouse()
    warehouse.create_relation(RELATION, [ATTRIBUTE])
    engine = ApproximateAnswerEngine(
        warehouse,
        cache=QueryResultCache(
            capacity=256, registry=MetricsRegistry()
        ),
    )
    engine.register_sample(
        RELATION, ATTRIBUTE, ConciseSample(FOOTPRINT, seed=1)
    )
    engine.register_hotlist(
        RELATION, ATTRIBUTE, ConciseHotList(FOOTPRINT, seed=2)
    )
    warehouse.load_batch(
        RELATION, {ATTRIBUTE: zipf_stream(N, DOMAIN, SKEW, seed=3)}
    )
    return AQPServer(
        warehouse,
        engine,
        registry=MetricsRegistry(),
        max_in_flight=64,
        max_queue=128,
    )


def cold_query(sequence: int) -> CountQuery:
    """A distinct predicate per request: a guaranteed cache miss."""
    low = sequence % (DOMAIN // 2)
    return CountQuery(
        RELATION, ATTRIBUTE, Predicate(low=low, high=low + 50)
    )


HOT_QUERY = HotListQuery(RELATION, ATTRIBUTE, k=K)


async def run_level(
    address: tuple[str, int], clients: int, temperature: str
) -> dict:
    """One concurrency level: every client runs its request loop,
    latencies are pooled, throughput is wall-clock aggregate."""
    latencies: list[float] = []

    async def one_client(offset: int) -> None:
        client = await AQPClient.connect(*address)
        await client.hello()
        for index in range(REQUESTS_PER_CLIENT):
            sequence = offset * REQUESTS_PER_CLIENT + index
            query = (
                HOT_QUERY
                if temperature == "hot"
                else cold_query(sequence)
            )
            start = perf_counter()
            await client.query(query, mode="live")
            latencies.append(perf_counter() - start)
        await client.bye()

    start = perf_counter()
    await asyncio.gather(
        *(one_client(offset) for offset in range(clients))
    )
    wall = perf_counter() - start
    pooled = np.asarray(latencies)
    return {
        "requests": len(latencies),
        "p50_ms": round(float(np.percentile(pooled, 50)) * 1e3, 3),
        "p99_ms": round(float(np.percentile(pooled, 99)) * 1e3, 3),
        "throughput_rps": round(len(latencies) / wall, 1),
        "wall_seconds": round(wall, 3),
    }


async def run_all() -> list[dict]:
    levels = []
    for clients in CLIENT_LEVELS:
        server = build_server()
        address = await server.start()
        # Hot first so its single distinct query is primed exactly
        # once; a fresh server per level keeps levels independent.
        hot = await run_level(address, clients, "hot")
        cold = await run_level(address, clients, "cold")
        await server.shutdown()
        levels.append({"clients": clients, "hot": hot, "cold": cold})
    return levels


def main() -> dict:
    results = {
        "config": {
            "rows": N,
            "domain": DOMAIN,
            "zipf_skew": SKEW,
            "footprint_bound": FOOTPRINT,
            "client_levels": list(CLIENT_LEVELS),
            "requests_per_client": REQUESTS_PER_CLIENT,
            "k": K,
        },
        "levels": asyncio.run(run_all()),
    }
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\nwritten to {RESULT_PATH}")
    return results


if __name__ == "__main__":
    main()
