"""Theorem 4 validation: the expected concise-sample gain formula.

``E[gain] = sum_{k=2..m} (-1)^k C(m,k) F_k / n^k`` -- equivalently
``m - E[#distinct in an m-point sample]``.  This bench draws many
independent m-point samples from Zipf streams of varying skew,
measures the average gain of the concise representation, and compares
against the closed form evaluated on the stream's exact frequency
moments.
"""

from __future__ import annotations

import numpy as np

from common import print_series, profile
from repro.randkit import numpy_generator
from repro.stats.frequency import FrequencyTable
from repro.stats.theory import concise_gain_expected
from repro.streams import zipf_stream

SAMPLE_POINTS = 200
TRIALS = 300
SKEWS = [0.0, 0.5, 1.0, 1.5, 2.0]
DOMAIN = 2_000


def _measure(active):
    rows = []
    for skew in SKEWS:
        stream = zipf_stream(
            active.inserts, DOMAIN, skew, seed=int(skew * 100) + 7
        )
        frequencies = [
            count for _, count in FrequencyTable(stream).items()
        ]
        predicted = concise_gain_expected(frequencies, SAMPLE_POINTS)
        rng = numpy_generator(int(skew * 100) + 8)
        gains = []
        for _ in range(TRIALS):
            sample = rng.choice(stream, size=SAMPLE_POINTS, replace=True)
            gains.append(SAMPLE_POINTS - len(np.unique(sample)))
        measured = float(np.mean(gains))
        rows.append([skew, round(predicted, 2), round(measured, 2)])
    return rows


def test_theorem4(benchmark):
    active = profile()
    rows = benchmark.pedantic(_measure, args=(active,), rounds=1,
                              iterations=1)
    print_series(
        f"Theorem 4: expected gain of a {SAMPLE_POINTS}-point concise "
        f"sample, predicted vs measured over {TRIALS} trials "
        f"({active.name} profile)",
        ["zipf", "predicted gain", "measured gain"],
        rows,
        widths=[8, 16, 16],
    )
    for skew, predicted, measured in rows:
        tolerance = max(0.5, 0.1 * predicted)
        assert abs(measured - predicted) < tolerance, (
            f"zipf={skew}: measured {measured} vs predicted {predicted}"
        )
    # Gain increases with skew.
    predictions = [row[1] for row in rows]
    assert predictions == sorted(predictions)
