"""Hot k-itemsets from bounded-footprint synopses (paper Section 1.2).

Streams market baskets with planted frequent pairs through the
itemset hot list and measures (a) whether the planted pairs surface
in the top-k, (b) support-estimate accuracy, and (c) the newly-popular
detection scenario: an itemset planted only in the second half of the
stream must still be detected -- the precise difficulty the paper's
probabilistic counting scheme addresses.
"""

from __future__ import annotations

from itertools import chain

from common import print_series, profile
from repro.itemsets import BasketGenerator, ItemsetHotList

CATALOGUE = 2_000
FOOTPRINT = 2_000
PLANTED = [((11, 22), 0.15), ((33, 44), 0.08), ((55, 66), 0.05)]
LATE_PAIR = (77, 88)
LATE_SUPPORT = 0.20


def _measure(active):
    baskets_total = max(20_000, active.inserts // 5)
    first = BasketGenerator(
        CATALOGUE, planted=PLANTED, basket_size_mean=3.0, seed=31
    ).baskets(baskets_total // 2)
    second = BasketGenerator(
        CATALOGUE,
        planted=PLANTED + [(LATE_PAIR, LATE_SUPPORT)],
        basket_size_mean=3.0,
        seed=32,
    ).baskets(baskets_total - baskets_total // 2)

    hotlist = ItemsetHotList(2, FOOTPRINT, seed=33)
    hotlist.observe_many(chain(first, second))

    top = hotlist.report_itemsets(10)
    rows = []
    for itemset, probability in PLANTED:
        estimated = hotlist.support(itemset)
        rows.append(
            [str(itemset), probability, round(estimated, 4)]
        )
    rows.append(
        [
            f"{LATE_PAIR} (late)",
            LATE_SUPPORT / 2,  # planted in half the stream
            round(hotlist.support(LATE_PAIR), 4),
        ]
    )
    return hotlist, top, rows, baskets_total


def test_itemset_hotlist(benchmark):
    active = profile()
    hotlist, top, rows, baskets_total = benchmark.pedantic(
        _measure, args=(active,), rounds=1, iterations=1
    )
    print_series(
        f"Hot pairs over {baskets_total:,} baskets, footprint "
        f"{FOOTPRINT} words, {hotlist.itemsets_observed:,} pair "
        f"occurrences ({active.name} profile)",
        ["itemset", "planted support", "estimated support"],
        rows,
        widths=[18, 18, 20],
    )
    print("  top pairs:", [itemset for itemset, _ in top[:6]])

    top_itemsets = [itemset for itemset, _ in top]
    # The two strongest planted pairs must surface.
    assert (11, 22) in top_itemsets
    assert (33, 44) in top_itemsets
    # Newly-popular detection: the late pair must be found even though
    # it did not exist in the first half of the stream.
    assert LATE_PAIR in top_itemsets
    # Support estimates within a factor band (planted probability is a
    # lower bound; background co-occurrence adds a little).
    for label, planted, estimated in rows:
        assert estimated >= planted * 0.5, f"{label} under-estimated"
        assert estimated <= planted * 2.0 + 0.02, (
            f"{label} over-estimated"
        )
    # Footprint bounded throughout.
    assert hotlist.footprint <= FOOTPRINT
