"""Ablation: accuracy as a function of the footprint budget.

The paper evaluates synopses "as a function of its footprint"
(Section 1) and contrasts footprints 100 and 1000.  This bench sweeps
the footprint over a wider range on one fixed workload and reports,
per algorithm, the hot-list recall and head count error -- showing how
much memory each method needs for a given accuracy, the practical
question a deployment faces.
"""

from __future__ import annotations

from common import hotlist_scenario, print_series, profile

DOMAIN = 5_000
SKEW = 1.25
K = 20
FOOTPRINTS = [50, 100, 200, 400, 800, 1_600]


def _measure(active):
    rows = []
    per_algorithm: dict[str, list[float]] = {}
    for footprint in FOOTPRINTS:
        runs, _ = hotlist_scenario(
            footprint, DOMAIN, SKEW, K, active, 7000 + footprint
        )
        row = [footprint]
        for name in (
            "counting samples",
            "concise samples",
            "traditional samples",
        ):
            run = runs[name]
            row += [
                round(run.evaluation.recall, 3),
                round(run.head_error, 3),
            ]
            per_algorithm.setdefault(name, []).append(
                run.evaluation.recall
            )
        rows.append(row)
    return rows, per_algorithm


def test_footprint_sweep(benchmark):
    active = profile()
    rows, recalls = benchmark.pedantic(
        _measure, args=(active,), rounds=1, iterations=1
    )
    print_series(
        f"Accuracy vs footprint: zipf {SKEW} over [1,{DOMAIN}], "
        f"top-{K} ({active.name} profile)",
        [
            "footprint",
            "count recall",
            "head err",
            "conc recall",
            "head err",
            "trad recall",
            "head err",
        ],
        rows,
        widths=[10, 14, 10, 13, 10, 13, 10],
    )
    for name, series in recalls.items():
        # Recall must not systematically degrade with more memory:
        # the largest footprint should be at least as good as the
        # smallest one.
        assert series[-1] >= series[0] - 0.05, f"{name} regressed"
    # At every footprint the sampling-aware methods dominate
    # traditional sampling (up to single-run noise in the regime where
    # all methods are near-perfect).
    for row in rows:
        counting_recall, concise_recall, traditional_recall = (
            row[1],
            row[3],
            row[5],
        )
        assert counting_recall >= traditional_recall - 0.05
        assert concise_recall >= traditional_recall - 0.1
    # In the memory-starved regime the advantage is strict.
    small = rows[0]
    assert small[1] > small[5]
    assert small[3] > small[5]
    # Counting samples reach near-perfect recall within the sweep.
    assert max(recalls["counting samples"]) > 0.9
