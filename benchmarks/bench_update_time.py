"""Wall-clock update throughput of the maintenance algorithms.

The paper's claim is O(1) amortised expected update time per insert
"regardless of the data distribution".  These benchmarks time the real
per-insert maintenance paths (pytest-benchmark does the timing here --
no pedantic single-shot) and a final test asserts the amortised-O(1)
shape: per-insert cost does not grow with stream length.
"""

from __future__ import annotations


import pytest

from repro.core import ConciseSample, CountingSample, ReservoirSample
from repro.hotlist import FullHistogramHotList
from repro.obs.clock import perf_counter
from repro.streams import zipf_stream

N = 100_000
DOMAIN = 5_000
FOOTPRINT = 1_000


@pytest.fixture(scope="module")
def stream():
    return zipf_stream(N, DOMAIN, 1.25, seed=77)


def test_concise_insert_throughput(benchmark, stream):
    def run():
        sample = ConciseSample(FOOTPRINT, seed=1)
        sample.insert_array(stream)
        return sample.sample_size

    assert benchmark(run) > 0


def test_concise_per_op_throughput(benchmark, stream):
    values = stream[:20_000].tolist()

    def run():
        sample = ConciseSample(FOOTPRINT, seed=2)
        for value in values:
            sample.insert(value)
        return sample.sample_size

    assert benchmark(run) > 0


def test_counting_insert_throughput(benchmark, stream):
    def run():
        sample = CountingSample(FOOTPRINT, seed=3)
        sample.insert_array(stream)
        return sample.footprint

    assert benchmark(run) > 0


def test_reservoir_insert_throughput(benchmark, stream):
    def run():
        sample = ReservoirSample(FOOTPRINT, seed=4)
        sample.insert_array(stream)
        return sample.sample_size

    assert benchmark(run) > 0


def test_full_histogram_insert_throughput(benchmark, stream):
    def run():
        baseline = FullHistogramHotList(FOOTPRINT)
        baseline.insert_array(stream)
        return baseline.disk_footprint

    assert benchmark(run) > 0


def test_amortised_o1_updates(benchmark):
    """Per-insert time must stay flat as the stream grows 8x."""

    def measure(n: int) -> float:
        values = zipf_stream(n, DOMAIN, 1.0, seed=5)
        sample = ConciseSample(FOOTPRINT, seed=6)
        start = perf_counter()
        sample.insert_array(values)
        return (perf_counter() - start) / n

    def run():
        small = measure(50_000)
        large = measure(400_000)
        return small, large

    small, large = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nper-insert: {small * 1e9:.1f} ns at 50K vs "
        f"{large * 1e9:.1f} ns at 400K"
    )
    # Amortised O(1): larger streams are at least as cheap per insert
    # (skips grow with the threshold); allow 2x noise headroom.
    assert large < small * 2.0
