"""Benchmark-suite configuration."""

from __future__ import annotations

import sys
from pathlib import Path

# Make the sibling `common` module importable regardless of rootdir.
sys.path.insert(0, str(Path(__file__).resolve().parent))
