"""Observability overhead guard: no-op vs enabled instrumentation.

Measures concise/counting ingest throughput (per-row and vectorized
batch) in two modes:

* ``noop`` -- the shipped default: no registry, ``PROBE is None``, so
  every instrumentation site short-circuits on one pointer test.
* ``enabled`` -- full telemetry: registry + lifecycle probe installed,
  the synopsis watched by a scrape-time collector, and one Prometheus
  render after the ingest.

Each mode takes the best of ``REPEATS`` runs (best-of defeats
scheduler noise, which only ever slows a run down).  The JSON also
compares the no-op numbers against the committed pre-PR baseline in
``BENCH_batch_ingest.json`` (measured before the instrumentation
existed) -- the acceptance bar is no-op throughput within 5% of that
baseline.  Writes ``BENCH_obs_overhead.json`` at the repository root.

Run with ``PYTHONPATH=src python benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import obs
from repro.core import ConciseSample, CountingSample
from repro.obs.clock import perf_counter
from repro.streams import zipf_stream

# Same acceptance configuration as bench_batch_ingest.py so the two
# result files are directly comparable.
N = 500_000
DOMAIN = 50_000
SKEW = 1.25
FOOTPRINT = 1_000
REPEATS = 3
ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = ROOT / "BENCH_obs_overhead.json"
BASELINE_PATH = ROOT / "BENCH_batch_ingest.json"


def _best_seconds(build, ingest, stream, enabled: bool) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        if enabled:
            registry = obs.enable()
        synopsis = build()
        if enabled:
            obs.watch_synopsis(registry, synopsis, "bench.item")
        start = perf_counter()
        ingest(synopsis, stream)
        elapsed = perf_counter() - start
        if enabled:
            obs.render_prometheus(registry)
            obs.disable()
        best = min(best, elapsed)
    return best


def _mode(build, ingest, stream, enabled: bool) -> dict:
    seconds = _best_seconds(build, ingest, stream, enabled)
    return {
        "seconds": round(seconds, 4),
        "rows_per_second": round(len(stream) / seconds),
    }


def bench_paths(make, stream) -> dict:
    paths = {}
    for path_name, ingest in (
        ("per_row", lambda s, v: s.insert_many(v.tolist())),
        ("batch", lambda s, v: s.insert_array(v)),
    ):
        noop = _mode(make, ingest, stream, enabled=False)
        enabled = _mode(make, ingest, stream, enabled=True)
        paths[path_name] = {
            "noop": noop,
            "enabled": enabled,
            "enabled_overhead_percent": round(
                100.0 * (enabled["seconds"] / noop["seconds"] - 1.0), 2
            ),
        }
    return paths


def compare_to_baseline(results: dict) -> dict:
    """No-op throughput vs the committed pre-instrumentation numbers.

    Negative percentages mean the instrumented no-op path is *faster*
    than the recorded pre-PR run.
    """
    if not BASELINE_PATH.exists():
        return {"available": False}
    baseline = json.loads(BASELINE_PATH.read_text())
    comparison: dict = {"available": True}
    for sample_kind in ("concise", "counting"):
        for path_name in ("per_row", "batch"):
            before = baseline[sample_kind][path_name]["rows_per_second"]
            after = results[sample_kind][path_name]["noop"][
                "rows_per_second"
            ]
            key = f"{sample_kind}_{path_name}_slowdown_percent"
            comparison[key] = round(100.0 * (before / after - 1.0), 2)
    return comparison


def main() -> dict:
    stream = zipf_stream(N, DOMAIN, SKEW, seed=1)

    results = {
        "config": {
            "inserts": N,
            "domain": DOMAIN,
            "zipf_skew": SKEW,
            "footprint_bound": FOOTPRINT,
            "repeats": REPEATS,
        },
        "concise": bench_paths(
            lambda: ConciseSample(FOOTPRINT, seed=2), stream
        ),
        "counting": bench_paths(
            lambda: CountingSample(FOOTPRINT, seed=3), stream
        ),
    }
    results["vs_pre_pr_baseline"] = compare_to_baseline(results)

    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\nwritten to {RESULT_PATH}")
    return results


if __name__ == "__main__":
    main()
