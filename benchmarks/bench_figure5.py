"""Figure 5: counting vs traditional samples at moderate skew.

Scenario: 500K values in [1, 5000], zipf 1.0, footprint 1000.  The
paper highlights the quantisation artifact of traditional samples --
"there are only a handful of possible counts that can be reported,
with each increment ... adding 500 to the reported count" -- and the
clear accuracy win of counting samples.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import hotlist_scenario, print_series, profile

FOOTPRINT = 1_000
DOMAIN = 5_000
SKEW = 1.0
K = 100


def test_figure5(benchmark):
    active = profile()
    runs, truth = benchmark.pedantic(
        hotlist_scenario,
        args=(FOOTPRINT, DOMAIN, SKEW, K, active, 5000),
        rounds=1,
        iterations=1,
    )

    counting = dict(runs["counting samples"].reported)
    traditional = dict(runs["traditional samples"].reported)
    exact_top = truth.top_k(30)
    print_series(
        f"Figure 5: {active.inserts:,} values in [1,{DOMAIN}], zipf "
        f"{SKEW}, footprint {FOOTPRINT} ({active.name} profile) -- "
        "estimates by true rank (nan = not reported)",
        ["rank", "value", "exact", "counting", "traditional"],
        [
            [
                rank,
                value,
                count,
                round(counting.get(value, float("nan")), 1),
                round(traditional.get(value, float("nan")), 1),
            ]
            for rank, (value, count) in enumerate(exact_top, start=1)
        ],
        widths=[6, 8, 10, 12, 14],
    )
    for name, run in runs.items():
        e = run.evaluation
        print(
            f"  {name:<22} reported={e.reported:>4} "
            f"recall={e.recall:.2f} mean_err={e.mean_count_error:.2%}"
        )

    # The traditional reporter's estimates are quantised to multiples
    # of n/m ("horizontal rows of reported counts").
    quantum = active.inserts / FOOTPRINT
    distinct_levels = {
        round(estimate / quantum) for estimate in traditional.values()
    }
    for estimate in traditional.values():
        assert estimate / quantum == pytest.approx(
            round(estimate / quantum)
        )
    assert len(distinct_levels) < len(traditional) or len(traditional) <= 1

    counting_eval = runs["counting samples"].evaluation
    traditional_eval = runs["traditional samples"].evaluation
    concise_eval = runs["concise samples"].evaluation
    # Counting performs "quite well"; traditional "significantly
    # worse"; concise in between (paper text for this figure).
    assert counting_eval.true_positives > traditional_eval.true_positives
    assert (
        runs["counting samples"].head_error
        < runs["traditional samples"].head_error
    )
    assert (
        counting_eval.true_positives
        >= concise_eval.true_positives
        >= traditional_eval.true_positives
    )
    # Counting reports far more of the hot list than traditional.
    assert counting_eval.reported > 1.3 * traditional_eval.reported
