"""Table 1: coin flips and lookups per insert for the Figure-3 runs.

The paper's cost model: "the number of instructions executed by the
algorithm is directly proportional to the number of coin flips and
lookups".  This benchmark regenerates the three columns of Table 1
(the Figure 3(a), 3(b)/(d), and 3(c) scenarios) and asserts the
paper's observations:

* overheads are smallest for small zipf parameters,
* an order-of-magnitude smaller footprint gives roughly an order of
  magnitude smaller overheads (below zipf ~2), and
* once every value fits in the footprint, flips drop to zero and
  lookups rise to exactly one per insert.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import figure3_scenario, print_series, profile


def _sweep(footprint: int, domain: int, zipfs, master_seed: int):
    active = profile()
    flips, lookups = [], []
    for skew in zipfs:
        point = figure3_scenario(
            footprint, domain, skew, active, master_seed
        )["concise online"]
        flips.append(point.flips_per_insert)
        lookups.append(point.lookups_per_insert)
    return flips, lookups


def test_table1(benchmark):
    active = profile()
    zipfs = [
        round(z, 2)
        for z in np.arange(0.0, 3.0 + 1e-9, active.zipf_step)
    ]
    scenarios = {
        "Fig. 3(a)": (100, 5_000),
        "Figs. 3(b)(d)": (1_000, 5_000),
        "Fig. 3(c)": (1_000, 50_000),
    }

    def run():
        return {
            name: _sweep(footprint, domain, zipfs, 2000)
            for name, (footprint, domain) in scenarios.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    header = ["zipf"]
    for name in scenarios:
        header += [f"{name} flips", "lookups"]
    rows = []
    for i, z in enumerate(zipfs):
        row = [z]
        for name in scenarios:
            flips, lookups = results[name]
            row += [round(flips[i], 4), round(lookups[i], 4)]
        rows.append(row)
    print_series(
        f"Table 1: concise-sample overheads per insert "
        f"({active.name} profile)",
        header,
        rows,
        widths=[8] + [21, 10] * len(scenarios),
    )

    flips_a, lookups_a = results["Fig. 3(a)"]
    flips_b, lookups_b = results["Figs. 3(b)(d)"]
    flips_c, lookups_c = results["Fig. 3(c)"]

    # Overheads smallest at low skew.
    assert flips_b[0] == min(flips_b[: len(flips_b) // 2])
    # Footprint 100 costs ~10x less than footprint 1000 at low skew.
    assert flips_a[0] < flips_b[0] / 3
    # Little dependence on D/m at low skew (paper: "very little
    # dependence on the D/m ratio").
    assert flips_b[0] == pytest.approx(flips_c[0], rel=0.5)
    # All-fits regime at zipf >= 2.5 for footprint 1000, D=5000:
    # zero flips, exactly one lookup per insert.
    high = next(i for i, z in enumerate(zipfs) if z >= 2.5)
    assert flips_b[high] == 0.0
    assert lookups_b[high] == 1.0
    # Everything stays far below one flip per insert before that.
    assert max(flips_b[:high]) < 1.0
