"""Figure 6: the three approximation algorithms at an intermediate
skew and a large D/m ratio.

Scenario: 500K values in [1, 50000], zipf 1.25, footprint 1000.  The
paper: "using counting samples is more accurate than using concise
samples which is more accurate than using traditional samples", with
the concise sample-size nearly 3.5x the traditional one.
"""

from __future__ import annotations

from common import hotlist_scenario, print_series, profile

FOOTPRINT = 1_000
DOMAIN = 50_000
SKEW = 1.25
K = 120


def test_figure6(benchmark):
    active = profile()
    runs, truth = benchmark.pedantic(
        hotlist_scenario,
        args=(FOOTPRINT, DOMAIN, SKEW, K, active, 6000),
        rounds=1,
        iterations=1,
    )

    estimates = {
        name: dict(run.reported)
        for name, run in runs.items()
        if name != "full histogram"
    }
    exact_top = truth.top_k(25)
    print_series(
        f"Figure 6: {active.inserts:,} values in [1,{DOMAIN}], zipf "
        f"{SKEW}, footprint {FOOTPRINT} ({active.name} profile) -- "
        "estimates by true rank, first 25 shown (nan = not reported)",
        ["rank", "value", "exact", "counting", "concise", "traditional"],
        [
            [
                rank,
                value,
                count,
                round(
                    estimates["counting samples"].get(value, float("nan")),
                    1,
                ),
                round(
                    estimates["concise samples"].get(value, float("nan")),
                    1,
                ),
                round(
                    estimates["traditional samples"].get(
                        value, float("nan")
                    ),
                    1,
                ),
            ]
            for rank, (value, count) in enumerate(exact_top, start=1)
        ],
        widths=[6, 8, 10, 12, 12, 14],
    )
    for name, run in runs.items():
        e = run.evaluation
        print(
            f"  {name:<22} reported={e.reported:>4} "
            f"recall={e.recall:.2f} mean_err={e.mean_count_error:.2%}"
            + (
                f" sample_size={run.sample_size}"
                if run.sample_size
                else ""
            )
        )

    counting = runs["counting samples"].evaluation
    concise = runs["concise samples"].evaluation
    traditional = runs["traditional samples"].evaluation
    # Accuracy ordering (the figure's central claim), judged over the
    # head of the exact ranking.
    assert counting.true_positives >= concise.true_positives
    assert concise.true_positives > traditional.true_positives
    assert (
        runs["counting samples"].head_error
        <= runs["concise samples"].head_error
    )
    assert (
        runs["concise samples"].head_error
        < runs["traditional samples"].head_error
    )
    # Concise sample-size multiple of the traditional one (paper ~3.5x
    # at the full profile).
    multiplier = runs["concise samples"].sample_size / FOOTPRINT
    assert 2.0 < multiplier < 8.0
    # Far more values reported by the sampling-aware methods.
    assert counting.reported > 1.5 * traditional.reported
    assert concise.reported > 1.5 * traditional.reported
