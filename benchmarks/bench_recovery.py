"""Recovery-cost sweep: checkpoint interval vs restart time.

The durability layer trades runtime overhead for restart speed: a
checkpoint every ``k`` operations bounds the WAL suffix a recovery
must replay to at most ``k`` records.  This benchmark ingests a fixed
stream under several checkpoint intervals (plus a no-checkpoint
baseline that replays the whole log), crashes by abandoning the live
side, and times recovery -- snapshot load plus suffix replay.

Recovery is read-only, so its timing takes the best of ``REPEATS``
runs (best-of defeats scheduler noise); ingest and checkpoint costs
are measured once per interval.  Writes ``BENCH_recovery.json`` at the
repository root.

Run with ``PYTHONPATH=src python benchmarks/bench_recovery.py``.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path

from repro.core import CountingSample
from repro.engine import DataWarehouse
from repro.obs.clock import perf_counter
from repro.persist import CheckpointStore, RecoveryManager
from repro.streams import zipf_stream

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

N = 300 if SMOKE else 10_000
DOMAIN = 100 if SMOKE else 2_000
SKEW = 1.0
FOOTPRINT = 32 if SMOKE else 500
SYNC_EVERY = 8  # group commit: one fsync per 8 appends
# Chosen so the crash leaves a growing WAL suffix to replay (N mod
# interval = 16, 784, 1000, 3000); None = never checkpoint (full log).
INTERVALS = (100, None) if SMOKE else (256, 1_024, 3_000, 7_000, None)
REPEATS = 1 if SMOKE else 3
ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = (
    ROOT / "bench_out" / "BENCH_recovery.json"
    if SMOKE
    else ROOT / "BENCH_recovery.json"
)


def ingest(root: Path, stream, interval: int | None) -> dict:
    """Run the durable pipeline once; return ingest-side costs."""
    store = CheckpointStore(root, sync_every=SYNC_EVERY)
    manager = RecoveryManager(store)
    warehouse = DataWarehouse()
    warehouse.create_relation("sales", ["item"])
    manager.attach(warehouse)
    sample = CountingSample(FOOTPRINT, seed=2)
    manager.bind("sales", "item", sample)
    warehouse.add_observer(
        lambda rel, row, ins: sample.insert(row[0])
    )

    checkpoint_seconds = 0.0
    checkpoints = 0
    start = perf_counter()
    for position, value in enumerate(stream.tolist(), start=1):
        warehouse.insert("sales", (value,))
        if interval is not None and position % interval == 0:
            checkpoint_start = perf_counter()
            manager.checkpoint()
            checkpoint_seconds += perf_counter() - checkpoint_start
            checkpoints += 1
    elapsed = perf_counter() - start
    # Crash: abandon without detaching.  Every acknowledged group is
    # already at its fsync point; recovery picks up from disk.
    return {
        "ingest_seconds": round(elapsed, 4),
        "ops_per_second": round(N / elapsed),
        "checkpoints": checkpoints,
        "checkpoint_seconds_total": round(checkpoint_seconds, 4),
    }


def time_recovery(root: Path) -> tuple[float, object]:
    best = float("inf")
    state = None
    for _ in range(REPEATS):
        manager = RecoveryManager(CheckpointStore(root))
        start = perf_counter()
        state = manager.recover(seed=3)
        best = min(best, perf_counter() - start)
    return best, state


def bench_interval(stream, interval: int | None) -> dict:
    root = Path(tempfile.mkdtemp(prefix="bench-recovery-"))
    try:
        costs = ingest(root / "state", stream, interval)
        recovery_seconds, state = time_recovery(root / "state")
        assert state.sequence == N
        return {
            "checkpoint_interval": interval,
            **costs,
            "recovery_seconds": round(recovery_seconds, 4),
            "replayed_operations": state.replayed,
            "replayed_per_second": round(
                state.replayed / recovery_seconds
            )
            if state.replayed
            else 0,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def main() -> dict:
    stream = zipf_stream(N, DOMAIN, SKEW, seed=1)
    results = {
        "config": {
            "operations": N,
            "domain": DOMAIN,
            "zipf_skew": SKEW,
            "footprint_bound": FOOTPRINT,
            "sync_every": SYNC_EVERY,
            "repeats": REPEATS,
        },
        "intervals": [
            bench_interval(stream, interval) for interval in INTERVALS
        ],
    }
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    return results


if __name__ == "__main__":
    main()
