"""Theorem 3 validation: exponential distributions give exponential
sample-size gains.

For the family ``Pr(v = i) = alpha^-i (alpha - 1)``, the expected
sample-size of a concise sample with footprint ``m`` is at least
``alpha^(m/2)``.  This bench sweeps alpha, measures the offline and
online sample-sizes at a small footprint (so the bound is checkable
within a finite stream), and prints measured-vs-bound.
"""

from __future__ import annotations

import numpy as np

from common import print_series, profile
from repro.core import ConciseSample
from repro.core.offline import offline_concise_sample
from repro.randkit import spawn_seeds
from repro.stats.theory import exponential_sample_size_bound
from repro.streams import exponential_stream

FOOTPRINT = 20
ALPHAS = [1.2, 1.4, 1.6, 1.8, 2.0]


def _measure(active):
    rows = []
    for alpha in ALPHAS:
        bound = exponential_sample_size_bound(alpha, FOOTPRINT)
        online_sizes, offline_sizes = [], []
        for seed in spawn_seeds(int(alpha * 1000), active.trials):
            stream = exponential_stream(active.inserts, alpha, seed)
            online = ConciseSample(FOOTPRINT, seed=seed + 1)
            online.insert_array(stream)
            online_sizes.append(online.sample_size)
            offline_sizes.append(
                offline_concise_sample(
                    stream, FOOTPRINT, seed + 2
                ).sample_size
            )
        rows.append(
            [
                alpha,
                round(bound, 1),
                round(float(np.mean(offline_sizes)), 1),
                round(float(np.mean(online_sizes)), 1),
            ]
        )
    return rows


def test_theorem3(benchmark):
    active = profile()
    rows = benchmark.pedantic(_measure, args=(active,), rounds=1,
                              iterations=1)
    print_series(
        f"Theorem 3: exponential distributions, footprint {FOOTPRINT} "
        f"({active.name} profile; bound = alpha^(m/2))",
        ["alpha", "bound", "offline size", "online size"],
        rows,
        widths=[8, 12, 14, 13],
    )
    for alpha, bound, offline_size, online_size in rows:
        # The theorem bounds the expectation; at finite n and with a
        # finite stream the offline measurement should meet the bound
        # up to sampling noise, and should certainly be within 2x.
        assert offline_size >= bound * 0.5, (
            f"alpha={alpha}: offline {offline_size} far below bound "
            f"{bound}"
        )
    # The gain is exponential in alpha: size at alpha=2.0 dwarfs 1.2.
    assert rows[-1][2] > 5 * rows[0][2]
