"""The update-time vs response-time trade-off (paper Section 5.1).

"The response time for reporting is O(m).  Alternatively, we can
trade-off update time vs response time by keeping the concise sample
sorted by counts.  This allows for reporting in O(k) time."

This bench measures both sides of the trade: report latency of the
plain O(m) reporter vs the sorted O(k) reporter, and the (slightly
higher) ingestion cost the sorted index incurs.
"""

from __future__ import annotations


import pytest

from repro.hotlist import ConciseHotList, SortedConciseHotList
from repro.obs.clock import perf_counter
from repro.streams import zipf_stream

FOOTPRINT = 2_000
DOMAIN = 20_000
SKEW = 1.2
K = 10
N = 100_000


@pytest.fixture(scope="module")
def loaded_reporters():
    stream = zipf_stream(N, DOMAIN, SKEW, seed=42)
    plain = ConciseHotList(FOOTPRINT, seed=1)
    sorted_reporter = SortedConciseHotList(FOOTPRINT, seed=1)
    plain.insert_array(stream)
    for value in stream.tolist():
        sorted_reporter.insert(value)
    # Same seed, same sample: the comparison isolates reporting.
    assert plain.sample.as_dict() == sorted_reporter.sample.as_dict()
    return plain, sorted_reporter


def test_plain_report_latency(benchmark, loaded_reporters):
    plain, _ = loaded_reporters
    result = benchmark(plain.report, K)
    assert len(result) <= K


def test_sorted_report_latency(benchmark, loaded_reporters):
    _, sorted_reporter = loaded_reporters
    result = benchmark(sorted_reporter.report, K)
    assert len(result) <= K


def test_sorted_reporting_wins_at_large_m(benchmark, loaded_reporters):
    """The O(k) reporter must beat the O(m) reporter at this m/k
    ratio (m ~ 2000 entries, k = 10)."""
    plain, sorted_reporter = loaded_reporters

    def measure(reporter, repetitions=200):
        start = perf_counter()
        for _ in range(repetitions):
            reporter.report(K)
        return (perf_counter() - start) / repetitions

    def run():
        return measure(plain), measure(sorted_reporter)

    plain_latency, sorted_latency = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print(
        f"\nreport({K}) latency: plain {plain_latency * 1e6:.1f} us, "
        f"sorted {sorted_latency * 1e6:.1f} us "
        f"({plain_latency / sorted_latency:.1f}x)"
    )
    assert sorted_latency < plain_latency
