"""Figure 4: hot-list algorithms on a small footprint, high skew.

Scenario: 500K values in [1, 500], zipf 1.5, footprint 100 (quick
profile scales the stream).  The paper's headline observations, all
asserted here:

* counting samples accurately report the most frequent values with at
  most a few false positives/negatives;
* concise samples do almost as well;
* traditional samples are far worse (false negatives high in the
  ranking);
* the count of the most frequent value is estimated to a fraction of a
  percent by counting samples.
"""

from __future__ import annotations

import pytest

from common import hotlist_scenario, print_series, profile

FOOTPRINT = 100
DOMAIN = 500
SKEW = 1.5
K = 20


def test_figure4(benchmark):
    active = profile()
    runs, truth = benchmark.pedantic(
        hotlist_scenario,
        args=(FOOTPRINT, DOMAIN, SKEW, K, active, 4000),
        rounds=1,
        iterations=1,
    )

    exact_top = truth.top_k(K)
    rows = []
    answers = {
        name: dict(run.reported)
        for name, run in runs.items()
    }
    for rank, (value, count) in enumerate(exact_top, start=1):
        rows.append(
            [
                rank,
                value,
                count,
                round(answers["counting samples"].get(value, float("nan")), 1),
                round(answers["concise samples"].get(value, float("nan")), 1),
                round(
                    answers["traditional samples"].get(value, float("nan")),
                    1,
                ),
            ]
        )
    print_series(
        f"Figure 4: {active.inserts:,} values in [1,{DOMAIN}], zipf "
        f"{SKEW}, footprint {FOOTPRINT} ({active.name} profile) -- "
        "exact count and per-algorithm estimates by true rank "
        "(nan = false negative)",
        ["rank", "value", "exact", "counting", "concise", "traditional"],
        rows,
        widths=[6, 8, 10, 12, 12, 14],
    )
    for name, run in runs.items():
        e = run.evaluation
        print(
            f"  {name:<22} reported={e.reported:>3} "
            f"prefix={e.top_prefix_correct:>3} false+={e.false_positives}"
            f" false-={e.false_negatives} mean_err={e.mean_count_error:.2%}"
        )

    counting = runs["counting samples"].evaluation
    concise = runs["concise samples"].evaluation
    traditional = runs["traditional samples"].evaluation
    exact = runs["full histogram"].evaluation

    # Full histogram is exact.
    assert exact.recall == 1.0 and exact.mean_count_error == 0.0
    # Paper: counting accurately reported the ~15 most frequent and 18
    # of the first 20; demand a strong prefix and recall.
    assert counting.top_prefix_correct >= 10
    assert counting.true_positives >= 15
    # Counting's most-frequent-value estimate within 2% (paper: .14%).
    top_value, top_count = truth.top_k(1)[0]
    counting_estimate = dict(runs["counting samples"].reported)[top_value]
    assert counting_estimate == pytest.approx(top_count, rel=0.02)
    # Ordering: counting ~ concise (the paper: "concise ... did almost
    # as well as counting" at this stressed footprint) and both far
    # better than traditional, judged over the head of the ranking.
    # A 30% band absorbs single-run noise in which of the deep top-20
    # values each sample happens to hold.
    assert counting.true_positives >= concise.true_positives - 2
    assert concise.true_positives > traditional.true_positives
    assert (
        runs["counting samples"].head_error
        <= runs["concise samples"].head_error * 1.3
    )
    assert (
        runs["concise samples"].head_error
        < runs["traditional samples"].head_error
    )
    assert (
        runs["counting samples"].head_error
        < runs["traditional samples"].head_error
    )
    # Paper: concise sample-size over 3.8x the traditional one.
    assert runs["concise samples"].sample_size > 2.5 * FOOTPRINT
