"""Table 2: measured overheads of the hot-list algorithms.

Regenerates the paper's Table 2 -- flips and lookups per insert,
threshold raises, final sample-size, final threshold, and the number
of values reported -- for the three scenarios of Figures 4-6, and
asserts the paper's conclusions:

* traditional < concise < counting in update overheads;
* counting lookups are exactly 1.000 per insert, traditional 0;
* counting samples raise the threshold more often and end with a
  higher threshold than concise samples.
"""

from __future__ import annotations

from common import hotlist_scenario, print_series, profile

SCENARIOS = {
    "Figure 4": (100, 500, 1.5, 20, 4000),
    "Figure 5": (1_000, 5_000, 1.0, 100, 5000),
    "Figure 6": (1_000, 50_000, 1.25, 120, 6000),
}


def test_table2(benchmark):
    active = profile()

    def run():
        return {
            name: hotlist_scenario(
                footprint, domain, skew, k, active, seed
            )[0]
            for name, (footprint, domain, skew, k, seed) in (
                SCENARIOS.items()
            )
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for scenario, runs in results.items():
        rows = []
        for name in (
            "concise samples",
            "counting samples",
            "traditional samples",
        ):
            run_stats = runs[name]
            rows.append(
                [
                    name,
                    round(run_stats.flips_per_insert, 3),
                    round(run_stats.lookups_per_insert, 3),
                    run_stats.threshold_raises or "n/a",
                    run_stats.sample_size
                    if name != "counting samples"
                    else "n/a",
                    round(run_stats.final_threshold or 0, 0)
                    if name != "traditional samples"
                    else "n/a",
                    run_stats.evaluation.reported,
                ]
            )
        print_series(
            f"Table 2 -- {scenario} scenario ({active.name} profile)",
            [
                "algorithm",
                "flips",
                "lookups",
                "raises",
                "sample-size",
                "threshold",
                "reported",
            ],
            rows,
            widths=[22, 9, 9, 8, 13, 11, 10],
        )

    for scenario, runs in results.items():
        concise = runs["concise samples"]
        counting = runs["counting samples"]
        traditional = runs["traditional samples"]
        # Lookup structure: traditional never looks up, counting looks
        # up every insert, concise in between.
        assert traditional.lookups_per_insert == 0.0
        assert counting.lookups_per_insert == 1.0
        assert 0.0 < concise.lookups_per_insert < 1.0
        # Total overhead ordering (flips + lookups).
        assert (
            traditional.flips_per_insert + traditional.lookups_per_insert
            < concise.flips_per_insert + concise.lookups_per_insert
            < counting.flips_per_insert + counting.lookups_per_insert
        )
        # Counting ends with more raises and a higher threshold
        # (its counts grow deterministically, so it holds fewer
        # values and must evict more).
        assert counting.threshold_raises >= concise.threshold_raises
        assert counting.final_threshold > concise.final_threshold
        # Reporting volume: the sampling-aware methods report more
        # values than the traditional sample.
        assert (
            counting.evaluation.reported
            >= traditional.evaluation.reported
        )
        assert (
            concise.evaluation.reported
            >= traditional.evaluation.reported
        )
