"""Durable ingest throughput: per-row WAL appends vs group commit.

The durable batch fast path collapses a whole ``load_batch`` into one
columnar WAL record -- one frame-encode buffer, one retried write, one
fsync point -- where the per-row path pays all three per row.  This
benchmark ingests the same stream three ways under ``sync_every=1``
durability (an operation/batch is acknowledged only after its fsync
point):

* **durable per-row** -- ``warehouse.insert`` under an attached
  :class:`~repro.persist.recovery.RecoveryManager`: one ``op`` record,
  one write, one fsync per row;
* **durable batch** -- ``warehouse.load_batch``: one ``batch`` record
  and one fsync per batch, same acknowledged-durability per batch;
* **non-durable batch** -- ``load_batch`` with no manager attached,
  as the ceiling.

It then crashes each durable tree (abandon without detaching) and
times recovery, so the vectorized batch replay (columnar decode +
``insert_batch`` + synopsis ``insert_array``) is measured against the
row-loop replay of an equivalent per-row WAL.

Writes ``BENCH_durable_ingest.json`` at the repository root.  With
``REPRO_BENCH_SMOKE=1`` runs tiny sizes and writes under
``bench_out/`` instead (the CI smoke job).

Run with ``PYTHONPATH=src python benchmarks/bench_durable_ingest.py``.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.core import CountingSample
from repro.engine import DataWarehouse
from repro.obs.clock import perf_counter
from repro.persist import CheckpointStore, RecoveryManager
from repro.streams import zipf_stream

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

N = 400 if SMOKE else 20_000
BATCH = 50 if SMOKE else 1_000
DOMAIN = 100 if SMOKE else 2_000
SKEW = 1.0
FOOTPRINT = 32 if SMOKE else 500
REPEATS = 1 if SMOKE else 3
ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = (
    ROOT / "bench_out" / "BENCH_durable_ingest.json"
    if SMOKE
    else ROOT / "BENCH_durable_ingest.json"
)


class _SampleTap:
    """A live synopsis observer with both row and batch entry points."""

    def __init__(self, sample: CountingSample) -> None:
        self.sample = sample

    def __call__(self, relation: str, row: tuple, is_insert: bool) -> None:
        self.sample.insert(row[0])

    def observe_batch(self, relation: str, columns) -> None:
        self.sample.insert_array(columns["item"])


def _pipeline(root: Path, *, durable: bool):
    """Build warehouse + synopsis, optionally under a recovery manager."""
    warehouse = DataWarehouse()
    warehouse.create_relation("sales", ["item"])
    manager = None
    if durable:
        store = CheckpointStore(root, sync_every=1)
        manager = RecoveryManager(store)
        manager.attach(warehouse)
        manager.bind("sales", "item", CountingSample(FOOTPRINT, seed=2))
        # Checkpoint the empty state so recovery replays the whole WAL.
        manager.checkpoint()
    warehouse.add_observer(_SampleTap(CountingSample(FOOTPRINT, seed=3)))
    return warehouse, manager


def _wal_bytes(root: Path) -> int:
    directory = root / "wal"
    if not directory.is_dir():
        return 0
    return sum(path.stat().st_size for path in directory.iterdir())


def ingest_per_row(root: Path, stream, *, durable: bool) -> dict:
    warehouse, _ = _pipeline(root, durable=durable)
    start = perf_counter()
    for value in stream.tolist():
        warehouse.insert("sales", (value,))
    elapsed = perf_counter() - start
    # Crash: abandon without detaching; acked rows are fsynced.
    return {
        "ingest_seconds": round(elapsed, 4),
        "rows_per_second": round(N / elapsed),
        "fsync_points": N if durable else 0,
        "wal_bytes": _wal_bytes(root),
    }


def ingest_batched(root: Path, stream, *, durable: bool) -> dict:
    warehouse, _ = _pipeline(root, durable=durable)
    batches = N // BATCH
    start = perf_counter()
    for index in range(batches):
        warehouse.load_batch(
            "sales",
            {"item": stream[index * BATCH : (index + 1) * BATCH]},
        )
    elapsed = perf_counter() - start
    return {
        "ingest_seconds": round(elapsed, 4),
        "rows_per_second": round(N / elapsed),
        "batches": batches,
        "rows_per_batch": BATCH,
        "fsync_points": batches if durable else 0,
        "wal_bytes": _wal_bytes(root),
    }


def time_recovery(root: Path) -> dict:
    best = float("inf")
    state = None
    for _ in range(REPEATS):
        manager = RecoveryManager(CheckpointStore(root))
        start = perf_counter()
        state = manager.recover(seed=9)
        best = min(best, perf_counter() - start)
    assert state is not None and state.sequence == N
    return {
        "recovery_seconds": round(best, 4),
        "replayed_rows": state.replayed,
        "replayed_rows_per_second": round(state.replayed / best),
    }


def main() -> dict:
    stream = zipf_stream(N, DOMAIN, SKEW, seed=1)
    scratch = Path(tempfile.mkdtemp(prefix="bench-durable-"))
    try:
        per_row_root = scratch / "per-row"
        batch_root = scratch / "batch"
        durable_per_row = ingest_per_row(
            per_row_root, stream, durable=True
        )
        durable_batch = ingest_batched(batch_root, stream, durable=True)
        non_durable = ingest_batched(
            scratch / "plain", stream, durable=False
        )
        durable_per_row.update(time_recovery(per_row_root))
        durable_batch.update(time_recovery(batch_root))
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    results = {
        "config": {
            "rows": N,
            "rows_per_batch": BATCH,
            "domain": DOMAIN,
            "zipf_skew": SKEW,
            "footprint_bound": FOOTPRINT,
            "sync_every": 1,
            "repeats": REPEATS,
            "smoke": SMOKE,
        },
        "durable_per_row": durable_per_row,
        "durable_batch": durable_batch,
        "non_durable_batch": non_durable,
        "summary": {
            "durable_batch_speedup": round(
                durable_per_row["ingest_seconds"]
                / durable_batch["ingest_seconds"],
                2,
            ),
            "durability_overhead_vs_non_durable": round(
                durable_batch["ingest_seconds"]
                / non_durable["ingest_seconds"],
                2,
            ),
            "wal_bytes_ratio": round(
                durable_per_row["wal_bytes"]
                / durable_batch["wal_bytes"],
                2,
            ),
            "replay_speedup": round(
                durable_per_row["recovery_seconds"]
                / durable_batch["recovery_seconds"],
                2,
            ),
        },
    }
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\nwritten to {RESULT_PATH}")
    return results


if __name__ == "__main__":
    main()
