"""Figure 3: sample-size of concise vs traditional samples vs skew.

Regenerates the four panels of the paper's Figure 3:

* (a) footprint 100,  D = 5,000  (D/m = 50), zipf 0..3
* (b) footprint 1000, D = 5,000  (D/m = 5),  zipf 0..3
* (c) footprint 1000, D = 50,000 (D/m = 50), zipf 0..1.5
* (d) footprint 1000, D = 5,000  (D/m = 5),  zipf 0..1.5 (detail of b)

Each benchmark prints the (zipf -> sample-size) series for the three
algorithms and asserts the paper's qualitative claims: concise >=
traditional everywhere, gains grow with skew (orders of magnitude at
high skew), online within the paper's band of offline, and the
D/m-dependent onset of the gains.
"""

from __future__ import annotations

import numpy as np
import pytest

from common import figure3_scenario, print_series, profile


def _sweep(footprint: int, domain: int, zipf_values: list[float],
           master_seed: int):
    active = profile()
    series = {
        "traditional": [],
        "concise online": [],
        "concise offline": [],
    }
    for skew in zipf_values:
        point = figure3_scenario(
            footprint, domain, skew, active, master_seed
        )
        for name in series:
            series[name].append(point[name].sample_size)
    return series


def _zipf_range(stop: float) -> list[float]:
    step = profile().zipf_step
    return [round(z, 2) for z in np.arange(0.0, stop + 1e-9, step)]


def _report(panel: str, footprint: int, domain: int, series, zipfs):
    active = profile()
    print_series(
        f"Figure 3({panel}): {active.inserts:,} values in [1,{domain}], "
        f"footprint {footprint} ({active.name} profile)",
        ["zipf", "traditional", "concise online", "concise offline"],
        [
            [
                zipfs[i],
                series["traditional"][i],
                series["concise online"][i],
                series["concise offline"][i],
            ]
            for i in range(len(zipfs))
        ],
    )


def _assert_shapes(series, zipfs, footprint):
    online = np.array(series["concise online"])
    offline = np.array(series["concise offline"])
    traditional = np.array(series["traditional"])
    # Concise is never (meaningfully) worse than traditional.
    assert np.all(online >= traditional * 0.85)
    # Sample-size grows with skew.
    assert online[-1] > online[0]
    # Online never beats offline by more than noise.
    assert np.all(online <= offline * 1.1 + footprint)


@pytest.mark.parametrize(
    "panel,footprint,domain,z_stop",
    [
        ("a", 100, 5_000, 3.0),
        ("b", 1_000, 5_000, 3.0),
        ("c", 1_000, 50_000, 1.5),
        ("d", 1_000, 5_000, 1.5),
    ],
    ids=["fig3a", "fig3b", "fig3c", "fig3d"],
)
def test_figure3(benchmark, panel, footprint, domain, z_stop):
    zipfs = _zipf_range(z_stop)
    series = benchmark.pedantic(
        _sweep,
        args=(footprint, domain, zipfs, 1000 + ord(panel)),
        rounds=1,
        iterations=1,
    )
    _report(panel, footprint, domain, series, zipfs)
    _assert_shapes(series, zipfs, footprint)

    online = np.array(series["concise online"])
    traditional = np.array(series["traditional"])
    if z_stop >= 3.0:
        # Paper: "for high skew the sample-size for concise samples
        # grows up to 3 orders of magnitude larger than traditional".
        assert online[-1] > 50 * traditional[-1]
    if panel == "d":
        # D/m = 5: noticeable gains appear beyond zipf ~0.5.
        half = online[np.isclose(zipfs, 0.5)][0]
        assert half < 3 * footprint
    if panel == "c":
        # D/m = 50: no noticeable gains until zipf ~0.75.
        half = online[np.isclose(zipfs, 0.5)][0]
        assert half < 2 * footprint
