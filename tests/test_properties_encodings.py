"""Property-based tests for the integer encodings and sorted index."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.composite import decode_composite, encode_composite
from repro.hotlist.sorted_concise import _CountIndex
from repro.itemsets.encoding import MAX_ITEM, decode_itemset, encode_itemset

itemsets = st.lists(
    st.integers(min_value=1, max_value=MAX_ITEM),
    min_size=1,
    max_size=6,
    unique=True,
).map(lambda items: tuple(sorted(items)))

composites = st.lists(
    st.integers(min_value=0, max_value=(1 << 24) - 1),
    min_size=2,
    max_size=5,
).map(tuple)


class TestItemsetEncoding:
    @given(itemset=itemsets)
    @settings(max_examples=300, deadline=None)
    def test_roundtrip(self, itemset):
        assert decode_itemset(encode_itemset(itemset)) == itemset

    @given(a=itemsets, b=itemsets)
    @settings(max_examples=300, deadline=None)
    def test_injective(self, a, b):
        if a != b:
            assert encode_itemset(a) != encode_itemset(b)

    @given(itemset=itemsets)
    @settings(max_examples=100, deadline=None)
    def test_codes_positive(self, itemset):
        assert encode_itemset(itemset) >= 1


class TestCompositeEncoding:
    @given(values=composites)
    @settings(max_examples=300, deadline=None)
    def test_roundtrip(self, values):
        assert decode_composite(
            encode_composite(values), len(values)
        ) == values

    @given(a=composites, b=composites)
    @settings(max_examples=300, deadline=None)
    def test_injective_same_arity(self, a, b):
        if len(a) == len(b) and a != b:
            assert encode_composite(a) != encode_composite(b)


class TestCountIndexProperties:
    @given(
        operations=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=20),  # value
                st.integers(min_value=1, max_value=8),   # final count
            ),
            min_size=0,
            max_size=40,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_incremental_moves_match_rebuild(self, operations):
        """Applying moves one increment at a time must agree with a
        wholesale rebuild from the final counts."""
        incremental = _CountIndex()
        final_counts: dict[int, int] = {}
        for value, target in operations:
            current = final_counts.get(value, 0)
            # Move the value up one count at a time to the new target
            # (only upward moves, as in the sample's insert path).
            target = max(current, target)
            for count in range(current + 1, target + 1):
                incremental.move(value, count - 1, count)
            final_counts[value] = target if target else current
        rebuilt = _CountIndex()
        rebuilt.rebuild(
            {v: c for v, c in final_counts.items() if c > 0}
        )
        assert list(incremental.top(10**6, 1)) == list(
            rebuilt.top(10**6, 1)
        )
