"""Unit tests for exact frequency statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.frequency import (
    FrequencyTable,
    distinct_count,
    frequency_moment,
    mode_frequency,
    top_k,
)


class TestFrequencyTable:
    def test_empty(self):
        table = FrequencyTable()
        assert len(table) == 0
        assert table.total == 0
        assert table.count(1) == 0
        assert 1 not in table

    def test_insert_and_count(self):
        table = FrequencyTable()
        table.insert(5)
        table.insert(5)
        table.insert(7)
        assert table.count(5) == 2
        assert table.count(7) == 1
        assert table.total == 3
        assert len(table) == 2

    def test_bulk_numpy_update(self):
        table = FrequencyTable(np.array([1, 1, 2, 3, 3, 3]))
        assert table.count(1) == 2
        assert table.count(3) == 3
        assert table.total == 6

    def test_bulk_iterable_update(self):
        table = FrequencyTable([4, 4, 9])
        assert table.count(4) == 2
        assert table.total == 3

    def test_empty_numpy_update(self):
        table = FrequencyTable()
        table.update(np.empty(0, dtype=np.int64))
        assert table.total == 0

    def test_delete(self):
        table = FrequencyTable([1, 1, 2])
        table.delete(1)
        assert table.count(1) == 1
        table.delete(1)
        assert table.count(1) == 0
        assert 1 not in table
        assert table.total == 1

    def test_delete_absent_raises(self):
        table = FrequencyTable([1])
        with pytest.raises(KeyError):
            table.delete(99)
        table.delete(1)
        with pytest.raises(KeyError):
            table.delete(1)

    def test_moments(self):
        table = FrequencyTable([1, 1, 1, 2, 2, 3])  # counts 3, 2, 1
        assert table.moment(0) == pytest.approx(3.0)  # distinct
        assert table.moment(1) == pytest.approx(6.0)  # total
        assert table.moment(2) == pytest.approx(9 + 4 + 1)

    def test_moment_empty(self):
        assert FrequencyTable().moment(2) == 0.0

    def test_mode(self):
        table = FrequencyTable([5, 5, 5, 2, 2])
        assert table.mode() == (5, 3)

    def test_mode_tie_breaks_to_smaller_value(self):
        table = FrequencyTable([9, 9, 4, 4])
        assert table.mode() == (4, 2)

    def test_mode_empty_raises(self):
        with pytest.raises(ValueError):
            FrequencyTable().mode()

    def test_top_k_ordering_and_ties(self):
        table = FrequencyTable([1, 1, 1, 2, 2, 3, 3, 4])
        assert table.top_k(3) == [(1, 3), (2, 2), (3, 2)]

    def test_top_k_larger_than_distinct(self):
        table = FrequencyTable([1, 2])
        assert len(table.top_k(10)) == 2

    def test_top_k_zero(self):
        assert FrequencyTable([1]).top_k(0) == []

    def test_top_k_rejects_negative(self):
        with pytest.raises(ValueError):
            FrequencyTable().top_k(-1)

    def test_as_dict_is_copy(self):
        table = FrequencyTable([1])
        snapshot = table.as_dict()
        snapshot[1] = 99
        assert table.count(1) == 1

    def test_items_iterates_pairs(self):
        table = FrequencyTable([1, 1, 2])
        assert dict(table.items()) == {1: 2, 2: 1}


class TestModuleFunctions:
    def test_frequency_moment(self):
        assert frequency_moment([1, 1, 2], 2) == pytest.approx(5.0)

    def test_distinct_count(self):
        assert distinct_count(np.array([1, 1, 2, 9])) == 3

    def test_mode_frequency(self):
        assert mode_frequency([7, 7, 7, 1]) == 3

    def test_top_k_function(self):
        assert top_k([1, 1, 2], 1) == [(1, 2)]
