"""Unit tests for error metrics."""

from __future__ import annotations

import pytest

from repro.stats.metrics import (
    mean_absolute_error,
    mean_relative_error,
    precision_recall,
    rank_displacement,
)


class TestMeanAbsoluteError:
    def test_perfect(self):
        assert mean_absolute_error({1: 5.0}, {1: 5.0}) == 0.0

    def test_empty(self):
        assert mean_absolute_error({}, {}) == 0.0

    def test_missing_estimate_counts_full_truth(self):
        assert mean_absolute_error({}, {1: 10.0}) == pytest.approx(10.0)

    def test_spurious_estimate_counts_fully(self):
        assert mean_absolute_error({1: 4.0}, {}) == pytest.approx(4.0)

    def test_union_averaging(self):
        estimates = {1: 8.0, 2: 3.0}
        truth = {1: 10.0, 3: 4.0}
        # errors: |8-10|=2, |3-0|=3, |0-4|=4 over 3 keys.
        assert mean_absolute_error(estimates, truth) == pytest.approx(3.0)


class TestMeanRelativeError:
    def test_perfect(self):
        assert mean_relative_error({1: 5.0}, {1: 5.0}) == 0.0

    def test_unreported_value_is_full_error(self):
        assert mean_relative_error({}, {1: 10.0}) == pytest.approx(1.0)

    def test_false_positives_ignored(self):
        assert mean_relative_error({2: 100.0}, {1: 10.0, 2: 0}) == (
            pytest.approx(1.0)
        )

    def test_typical(self):
        estimates = {1: 12.0, 2: 8.0}
        truth = {1: 10.0, 2: 10.0}
        assert mean_relative_error(estimates, truth) == pytest.approx(0.2)

    def test_empty_truth(self):
        assert mean_relative_error({1: 5.0}, {}) == 0.0


class TestPrecisionRecall:
    def test_perfect(self):
        assert precision_recall([1, 2], [1, 2]) == (1.0, 1.0)

    def test_empty_report(self):
        precision, recall = precision_recall([], [1, 2])
        assert precision == 1.0
        assert recall == 0.0

    def test_empty_relevant(self):
        precision, recall = precision_recall([1], [])
        assert precision == 0.0
        assert recall == 1.0

    def test_partial(self):
        precision, recall = precision_recall([1, 2, 3, 4], [3, 4, 5])
        assert precision == pytest.approx(0.5)
        assert recall == pytest.approx(2 / 3)


class TestRankDisplacement:
    def test_identical_ranking(self):
        assert rank_displacement([1, 2, 3], [1, 2, 3]) == 0.0

    def test_swap(self):
        assert rank_displacement([2, 1], [1, 2]) == pytest.approx(1.0)

    def test_unranked_values_ignored(self):
        assert rank_displacement([9, 1], [1]) == pytest.approx(1.0)

    def test_no_overlap(self):
        assert rank_displacement([9], [1]) == 0.0
