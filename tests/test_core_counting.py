"""Unit tests for counting samples and insert/delete maintenance."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.base import SynopsisError
from repro.core.counting import CountingSample
from repro.streams import insert_delete_stream, replay, zipf_stream


class TestConstruction:
    def test_rejects_tiny_footprint(self):
        with pytest.raises(SynopsisError):
            CountingSample(1)

    def test_initial_state(self):
        sample = CountingSample(10, seed=1)
        assert sample.footprint == 0
        assert sample.threshold == 1.0
        assert sample.distinct_in_sample == 0


class TestExactCountingOnceAdmitted:
    def test_counts_exact_at_threshold_one(self):
        """Until the footprint overflows, the counting sample IS the
        exact histogram."""
        sample = CountingSample(100, seed=2)
        stream = [1, 1, 2, 3, 3, 3, 3]
        for value in stream:
            sample.insert(value)
        assert sample.as_dict() == dict(Counter(stream))

    def test_subsequent_occurrences_always_counted(self):
        """Once a value is in the sample, every later insert increments
        its count deterministically."""
        sample = CountingSample(100, seed=3)
        sample.insert(5)
        before = sample.count_of(5)
        for _ in range(10):
            sample.insert(5)
        assert sample.count_of(5) == before + 10

    def test_footprint_accounting(self):
        sample = CountingSample(100, seed=4)
        sample.insert(1)
        assert sample.footprint == 1  # singleton
        sample.insert(1)
        assert sample.footprint == 2  # pair
        sample.insert(1)
        assert sample.footprint == 2
        sample.check_invariants()


class TestDeletions:
    def test_delete_decrements(self):
        sample = CountingSample(100, seed=5)
        sample.insert_many([7, 7, 7])
        sample.delete(7)
        assert sample.count_of(7) == 2

    def test_delete_to_zero_removes(self):
        sample = CountingSample(100, seed=6)
        sample.insert(9)
        sample.delete(9)
        assert 9 not in sample
        assert sample.footprint == 0

    def test_delete_absent_is_noop(self):
        sample = CountingSample(100, seed=7)
        sample.insert(1)
        sample.delete(42)  # not in sample: nothing happens
        assert sample.count_of(1) == 1
        sample.check_invariants()

    def test_delete_pair_to_singleton_footprint(self):
        sample = CountingSample(100, seed=8)
        sample.insert_many([3, 3])
        assert sample.footprint == 2
        sample.delete(3)
        assert sample.footprint == 1
        sample.check_invariants()

    def test_mixed_stream_never_negative(self):
        values = zipf_stream(5000, 100, 1.0, seed=9)
        operations = insert_delete_stream(values, 0.3, seed=10)
        sample = CountingSample(50, seed=11)
        replay(operations, sample)
        assert all(count > 0 for _, count in sample.pairs())
        sample.check_invariants()

    def test_count_never_exceeds_true_frequency(self):
        """Property 1 of Definition 3: the observed count is a suffix
        of the value's occurrences, so it never exceeds the live
        frequency -- even under deletions."""
        values = zipf_stream(8000, 50, 1.2, seed=12)
        operations = insert_delete_stream(values, 0.25, seed=13)
        sample = CountingSample(40, seed=14)
        live: Counter[int] = Counter()
        from repro.streams.operations import Insert

        for operation in operations:
            if isinstance(operation, Insert):
                sample.insert(operation.value)
                live[operation.value] += 1
            else:
                sample.delete(operation.value)
                live[operation.value] -= 1
            assert sample.count_of(operation.value) <= max(
                live[operation.value], 0
            )


class TestFootprintBound:
    @pytest.mark.parametrize("bound", [2, 20, 200])
    def test_bound_always_respected(self, bound):
        sample = CountingSample(bound, seed=15)
        for value in zipf_stream(20_000, 1000, 0.8, seed=16).tolist():
            sample.insert(value)
            assert sample.footprint <= bound
        sample.check_invariants()

    def test_small_domain_stays_exact(self):
        stream = zipf_stream(30_000, 40, 1.0, seed=17)
        sample = CountingSample(100, seed=18)
        sample.insert_array(stream)
        assert sample.threshold == 1.0
        assert sample.as_dict() == dict(Counter(stream.tolist()))

    def test_threshold_nondecreasing(self):
        sample = CountingSample(20, seed=19)
        last = 1.0
        for value in zipf_stream(10_000, 1000, 0.5, seed=20).tolist():
            sample.insert(value)
            assert sample.threshold >= last
            last = sample.threshold


class TestStatisticalGuarantees:
    def test_inclusion_probability_theorem6(self):
        """Theorem 6(ii): Pr[v in S] = 1 - (1 - 1/tau)^f_v, validated
        by simulation on a fixed final threshold."""
        # Build a stream where value 1 appears f times among filler
        # values that force threshold raises.
        f = 60
        filler = zipf_stream(6000, 3000, 0.0, seed=21) + 100
        stream = np.concatenate([filler[:3000], np.full(f, 1), filler[3000:]])
        included = 0
        thresholds = []
        trials = 300
        for trial in range(trials):
            sample = CountingSample(64, seed=60_000 + trial)
            sample.insert_array(stream)
            thresholds.append(sample.threshold)
            if 1 in sample:
                included += 1
        # Use the mean final threshold for the analytic prediction.
        mean_tau = float(np.mean(thresholds))
        predicted = 1.0 - (1.0 - 1.0 / mean_tau) ** f
        assert included / trials == pytest.approx(predicted, abs=0.1)

    def test_hot_values_present_with_high_probability(self):
        """Values with f_v >> tau must essentially always be present
        (Theorem 6(i))."""
        stream = zipf_stream(50_000, 5000, 1.5, seed=22)
        misses = 0
        for trial in range(20):
            sample = CountingSample(100, seed=70_000 + trial)
            sample.insert_array(stream)
            if sample.threshold * 10 < 15_000 and 1 not in sample:
                misses += 1
        assert misses == 0

    def test_count_error_is_prefix_only(self):
        """The error of an in-sample count is only the pre-admission
        prefix: count >= f_v - (admission position)."""
        sample = CountingSample(100, seed=23)
        # Single hot value; no evictions (domain of 1 value + footprint
        # large): count must equal f exactly.
        for _ in range(500):
            sample.insert(4)
        assert sample.count_of(4) == 500


class TestCostModel:
    def test_one_lookup_per_insert(self):
        """Per-element counting samples look up EVERY insert
        (Table 2: 1.000)."""
        sample = CountingSample(50, seed=24)
        n = 20_000
        sample.insert_many(zipf_stream(n, 2000, 1.0, seed=25))
        assert sample.counters.lookups == n
        assert sample.counters.lookups_per_insert() == 1.0

    def test_batch_amortises_lookups(self):
        """The bulk path probes once per distinct value per chunk, so
        lookups per insert drop well below the per-element 1.000."""
        sample = CountingSample(50, seed=24)
        n = 20_000
        sample.insert_array(zipf_stream(n, 2000, 1.0, seed=25))
        assert sample.counters.lookups < n
        assert sample.counters.lookups_per_insert() < 1.0

    def test_deletes_also_cost_lookups(self):
        sample = CountingSample(50, seed=26)
        sample.insert(1)
        sample.delete(1)
        assert sample.counters.lookups == 2
        assert sample.counters.deletes == 1

    def test_flips_stay_small(self):
        """Flips per insert stay an order of magnitude below one; the
        paper-profile comparison (Table 2) runs in the benchmarks."""
        sample = CountingSample(1000, seed=27)
        sample.insert_array(zipf_stream(200_000, 5000, 1.0, seed=28))
        assert sample.counters.flips_per_insert() < 0.2


class TestEvictionSemantics:
    def test_eviction_reduces_counts_not_just_values(self):
        """A raise decrements counts; survivors keep reduced counts."""
        sample = CountingSample(2000, seed=29)
        sample.insert_array(zipf_stream(20_000, 900, 1.0, seed=30))
        before = dict(sample.pairs())
        sample._evict_to(sample.threshold * 4)
        after = dict(sample.pairs())
        assert set(after) <= set(before)
        assert all(after[v] <= before[v] for v in after)
        sample.check_invariants()

    def test_total_count_shrinks_on_raise(self):
        sample = CountingSample(2000, seed=31)
        sample.insert_array(zipf_stream(30_000, 900, 0.5, seed=32))
        before = sample.total_count
        sample._evict_to(sample.threshold * 8)
        assert sample.total_count < before
