"""Unit tests for predicates and selectivity estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.randkit import numpy_generator
from repro.estimators.selectivity import Predicate, estimate_selectivity
from repro.streams import zipf_stream


class TestPredicate:
    def test_equality_mask(self):
        predicate = Predicate(equals=3)
        mask = predicate.mask(np.array([1, 3, 3, 5]))
        assert mask.tolist() == [False, True, True, False]

    def test_range_mask_closed(self):
        predicate = Predicate(low=2, high=4)
        mask = predicate.mask(np.array([1, 2, 3, 4, 5]))
        assert mask.tolist() == [False, True, True, True, False]

    def test_open_ended_ranges(self):
        values = np.array([1, 5, 10])
        assert Predicate(low=5).mask(values).tolist() == [
            False,
            True,
            True,
        ]
        assert Predicate(high=5).mask(values).tolist() == [
            True,
            True,
            False,
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            Predicate()
        with pytest.raises(ValueError):
            Predicate(equals=1, low=0)
        with pytest.raises(ValueError):
            Predicate(low=10, high=5)

    def test_str(self):
        assert str(Predicate(equals=7)) == "= 7"
        assert "[2, 9]" in str(Predicate(low=2, high=9))
        assert "-inf" in str(Predicate(high=9))


class TestEstimateSelectivity:
    def test_full_match(self):
        points = np.arange(10)
        estimate = estimate_selectivity(points, Predicate(low=0))
        assert estimate.selectivity == 1.0

    def test_no_match(self):
        points = np.arange(10)
        estimate = estimate_selectivity(points, Predicate(equals=99))
        assert estimate.selectivity == 0.0

    def test_interval_clipped_to_unit(self):
        points = np.array([1, 1, 2])
        estimate = estimate_selectivity(points, Predicate(equals=1))
        assert 0.0 <= estimate.interval.low
        assert estimate.interval.high <= 1.0

    def test_accuracy_on_real_stream(self):
        stream = zipf_stream(50_000, 1000, 1.0, seed=1)
        truth = float((stream <= 50).mean())
        rng = numpy_generator(2)
        points = rng.choice(stream, size=1000, replace=False)
        estimate = estimate_selectivity(points, Predicate(high=50))
        assert estimate.selectivity == pytest.approx(truth, abs=0.05)
        assert truth in estimate.interval or abs(
            truth - estimate.selectivity
        ) < 0.05

    def test_rejects_empty_sample(self):
        with pytest.raises(ValueError):
            estimate_selectivity(np.empty(0), Predicate(equals=1))
