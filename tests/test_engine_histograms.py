"""Tests for histogram registration and routing in the engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConciseSample
from repro.engine import (
    ApproximateAnswerEngine,
    CountQuery,
    DataWarehouse,
    SelectivityQuery,
)
from repro.estimators.selectivity import Predicate
from repro.streams import zipf_stream
from repro.synopses import EquiDepthHistogram


def _build(with_sample=False):
    warehouse = DataWarehouse()
    warehouse.create_relation("r", ["a"])
    engine = ApproximateAnswerEngine(warehouse)
    stream = zipf_stream(20_000, 1000, 1.0, seed=1)
    if with_sample:
        engine.register_sample("r", "a", ConciseSample(500, seed=2))
    warehouse.load("r", ((int(v),) for v in stream))
    histogram = EquiDepthHistogram.from_sample(stream, 32, len(stream))
    engine.register_histogram("r", "a", histogram)
    return warehouse, engine, stream


class TestHistogramRouting:
    def test_count_range_from_histogram(self):
        _, engine, stream = _build()
        response = engine.answer(
            CountQuery("r", "a", Predicate(low=1, high=50))
        )
        truth = float(np.count_nonzero(stream <= 50))
        assert response.method == "EquiDepthHistogram"
        assert response.answer == pytest.approx(truth, rel=0.2)

    def test_count_open_range(self):
        _, engine, stream = _build()
        response = engine.answer(
            CountQuery("r", "a", Predicate(high=100))
        )
        truth = float(np.count_nonzero(stream <= 100))
        assert response.answer == pytest.approx(truth, rel=0.2)

    def test_count_no_predicate_uses_population(self):
        _, engine, stream = _build()
        response = engine.answer(CountQuery("r", "a"))
        assert response.answer == float(len(stream))

    def test_equality_from_histogram(self):
        _, engine, stream = _build()
        response = engine.answer(
            CountQuery("r", "a", Predicate(equals=1))
        )
        assert response.answer > 0

    def test_selectivity_from_histogram(self):
        _, engine, stream = _build()
        response = engine.answer(
            SelectivityQuery("r", "a", Predicate(high=50))
        )
        truth = float((stream <= 50).mean())
        assert response.answer == pytest.approx(truth, abs=0.1)

    def test_sample_preferred_over_histogram(self):
        """When both are registered the sample wins (it carries a
        confidence interval)."""
        _, engine, stream = _build(with_sample=True)
        response = engine.answer(
            CountQuery("r", "a", Predicate(high=50))
        )
        assert response.method == "sample"
        assert response.interval is not None

    def test_histogram_not_fed_by_load_stream(self):
        """Histograms are static: loading more rows must not crash the
        observer (histograms have no insert)."""
        warehouse, engine, _ = _build()
        warehouse.insert("r", (5,))  # would crash without the skip

    def test_refresh_histogram(self):
        warehouse, engine, stream = _build()
        new_stream = zipf_stream(10_000, 1000, 1.0, seed=3)
        replacement = EquiDepthHistogram.from_sample(
            new_stream, 32, len(new_stream)
        )
        engine.refresh_histogram("r", "a", replacement)
        response = engine.answer(
            CountQuery("r", "a", Predicate(low=1, high=1000))
        )
        assert response.answer == pytest.approx(10_000, rel=0.05)
