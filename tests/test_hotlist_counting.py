"""Unit tests for the counting-sample hot-list algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hotlist.concise import ConciseHotList
from repro.hotlist.counting import CountingHotList
from repro.stats.frequency import FrequencyTable
from repro.stats.theory import compensation_constant
from repro.streams import insert_delete_stream, replay, zipf_stream


class TestReporting:
    def test_rejects_bad_k(self):
        reporter = CountingHotList(100, seed=1)
        with pytest.raises(ValueError):
            reporter.report(0)

    def test_empty_stream_reports_nothing(self):
        assert len(CountingHotList(100, seed=2).report(5)) == 0

    def test_exact_mode_at_threshold_one(self):
        """While everything fits, answers are exact with no
        compensation."""
        stream = zipf_stream(20_000, 40, 1.2, seed=3)
        reporter = CountingHotList(100, seed=4)
        reporter.insert_array(stream)
        assert reporter.sample.threshold == 1.0
        truth = FrequencyTable(stream)
        for entry in reporter.report(5):
            assert entry.estimated_count == pytest.approx(
                truth.count(entry.value)
            )

    def test_compensation_clamped_nonnegative(self):
        reporter = CountingHotList(100, seed=5)
        reporter.insert(1)
        assert reporter.compensation() == 0.0

    def test_compensation_tracks_threshold(self):
        stream = zipf_stream(100_000, 5000, 1.0, seed=6)
        reporter = CountingHotList(500, seed=7)
        reporter.insert_array(stream)
        tau = reporter.sample.threshold
        assert tau > 1.0
        assert reporter.compensation() == pytest.approx(
            compensation_constant(tau)
        )

    def test_estimates_augmented_by_compensation(self):
        stream = zipf_stream(100_000, 5000, 1.25, seed=8)
        reporter = CountingHotList(1000, seed=9)
        reporter.insert_array(stream)
        compensation = reporter.compensation()
        answer = reporter.report(10)
        raw = reporter.sample.as_dict()
        for entry in answer:
            assert entry.estimated_count == pytest.approx(
                raw[entry.value] + compensation
            )

    def test_most_accurate_of_the_three(self):
        """Counting beats concise on count accuracy (paper Figures
        4-6): the error is only the pre-admission prefix."""
        stream = zipf_stream(100_000, 5000, 1.25, seed=10)
        truth = FrequencyTable(stream)

        def mean_error(reporter) -> float:
            reporter.insert_array(stream)
            answer = reporter.report(10)
            errors = [
                abs(entry.estimated_count - truth.count(entry.value))
                / truth.count(entry.value)
                for entry in answer
                if truth.count(entry.value)
            ]
            return float(np.mean(errors)) if errors else 1.0

        counting_errors = [
            mean_error(CountingHotList(1000, seed=300 + trial))
            for trial in range(3)
        ]
        concise_errors = [
            mean_error(ConciseHotList(1000, seed=400 + trial))
            for trial in range(3)
        ]
        assert np.mean(counting_errors) < np.mean(concise_errors)

    def test_at_most_k(self):
        stream = zipf_stream(50_000, 500, 1.5, seed=11)
        reporter = CountingHotList(300, seed=12)
        reporter.insert_array(stream)
        assert len(reporter.report(6)) <= 6

    def test_infrequent_values_never_reported(self):
        """Theorem 8(i): values below 0.582 tau cannot be reported."""
        stream = zipf_stream(100_000, 10_000, 1.0, seed=13)
        reporter = CountingHotList(500, seed=14)
        reporter.insert_array(stream)
        truth = FrequencyTable(stream)
        cutoff = 0.582 * reporter.sample.threshold
        for entry in reporter.report(50):
            assert truth.count(entry.value) >= cutoff * 0.999


class TestDeletions:
    def test_hotlist_correct_after_deletions(self):
        """Deleting most of a hot value's occurrences must demote it."""
        reporter = CountingHotList(50, seed=15)
        for _ in range(100):
            reporter.insert(1)
        for _ in range(50):
            reporter.insert(2)
        for _ in range(95):
            reporter.delete(1)
        answer = reporter.report(1)
        assert answer.values() == [2]

    def test_mixed_stream_bound_respected(self):
        values = zipf_stream(20_000, 2000, 1.0, seed=16)
        operations = insert_delete_stream(values, 0.3, seed=17)
        reporter = CountingHotList(100, seed=18)
        replay(operations, reporter.sample)
        assert reporter.footprint <= 100
        reporter.sample.check_invariants()
        reporter.report(10)  # must not raise

    def test_footprint_delegation(self):
        reporter = CountingHotList(64, seed=19)
        reporter.insert_array(zipf_stream(10_000, 1000, 1.0, seed=20))
        assert reporter.footprint <= 64
        assert reporter.footprint_bound == 64
