"""Unit tests for the concise-sample hot-list algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hotlist.concise import ConciseHotList
from repro.hotlist.traditional import TraditionalHotList
from repro.stats.frequency import FrequencyTable
from repro.streams import zipf_stream


class TestReporting:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ConciseHotList(100, confidence_threshold=0)
        reporter = ConciseHotList(100, seed=1)
        with pytest.raises(ValueError):
            reporter.report(0)

    def test_empty_stream_reports_nothing(self):
        assert len(ConciseHotList(100, seed=2).report(5)) == 0

    def test_reports_hot_values_in_order(self):
        stream = zipf_stream(50_000, 500, 1.5, seed=3)
        reporter = ConciseHotList(1000, seed=4)
        reporter.insert_array(stream)
        answer = reporter.report(10)
        estimates = [entry.estimated_count for entry in answer]
        assert estimates == sorted(estimates, reverse=True)
        assert answer.values()[0] == 1  # the true mode leads

    def test_exact_mode_when_domain_fits(self):
        """Domain <= m/2: the sample holds exact counts and estimates
        equal truth."""
        stream = zipf_stream(20_000, 40, 1.0, seed=5)
        reporter = ConciseHotList(100, confidence_threshold=1, seed=6)
        reporter.insert_array(stream)
        truth = FrequencyTable(stream)
        answer = reporter.report(5)
        for entry in answer:
            assert entry.estimated_count == pytest.approx(
                truth.count(entry.value)
            )

    def test_count_estimates_close_on_skewed_data(self):
        stream = zipf_stream(100_000, 5000, 1.5, seed=7)
        reporter = ConciseHotList(1000, seed=8)
        reporter.insert_array(stream)
        truth = FrequencyTable(stream)
        answer = reporter.report(10)
        assert len(answer) >= 8
        for entry in list(answer)[:5]:
            true_count = truth.count(entry.value)
            assert entry.estimated_count == pytest.approx(
                true_count, rel=0.25
            )

    def test_at_most_k(self):
        stream = zipf_stream(50_000, 200, 1.2, seed=9)
        reporter = ConciseHotList(400, seed=10)
        reporter.insert_array(stream)
        assert len(reporter.report(7)) <= 7

    def test_more_accurate_than_traditional_on_average(self):
        """The headline claim: at equal footprint, concise beats
        traditional on skewed data (more true top-k values found)."""
        stream = zipf_stream(100_000, 5000, 1.25, seed=11)
        truth = set(v for v, _ in FrequencyTable(stream).top_k(20))
        concise_hits = 0
        traditional_hits = 0
        for trial in range(5):
            concise = ConciseHotList(500, seed=100 + trial)
            concise.insert_array(stream)
            concise_hits += len(
                set(concise.report(20).values()) & truth
            )
            traditional = TraditionalHotList(500, seed=200 + trial)
            traditional.insert_array(stream)
            traditional_hits += len(
                set(traditional.report(20).values()) & truth
            )
        assert concise_hits > traditional_hits

    def test_footprint_delegation(self):
        reporter = ConciseHotList(64, seed=12)
        reporter.insert_array(zipf_stream(10_000, 1000, 1.0, seed=13))
        assert reporter.footprint <= 64
        assert reporter.footprint_bound == 64

    def test_sample_size_advantage_visible(self):
        stream = zipf_stream(100_000, 5000, 1.5, seed=14)
        reporter = ConciseHotList(1000, seed=15)
        reporter.insert_array(stream)
        # Figure-4-style check: sample-size well above footprint.
        assert reporter.sample.sample_size > 3 * 1000
