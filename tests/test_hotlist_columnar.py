"""Columnar report kernels vs the historical dict path.

The kernels in :mod:`repro.hotlist.kernels` replaced per-query dict
walks with array ops; the refactor is only sound if every reporter's
answer is *byte-identical* to what the dict path produced -- same
values, same float estimates, same order, ties included.  The
reference implementations below are the dict path, kept verbatim in
test code (where RL012 does not apply) as the oracle.

Also covered: the samples' ``columnar_view`` contract (memoized until
the next mutation, read-only arrays) and the bulk-ingest audit of
every concrete reporter.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.concise import ConciseSample
from repro.core.counting import CountingSample
from repro.core.reservoir import ReservoirSample
from repro.hotlist.base import (
    HotListAnswer,
    HotListReporter,
    kth_largest,
    order_entries,
)
from repro.hotlist.concise import ConciseHotList
from repro.hotlist.counting import CountingHotList
from repro.hotlist.exact import FullHistogramHotList
from repro.hotlist.kernels import (
    confident_from_columns,
    rank_cutoff,
    report_from_columns,
)
from repro.hotlist.sorted_concise import SortedConciseHotList
from repro.hotlist.traditional import TraditionalHotList
from repro.stats.frequency import FrequencyTable
from repro.stats.theory import counting_report_cutoff

value_streams = st.lists(
    st.integers(min_value=1, max_value=50), min_size=0, max_size=400
)
footprints = st.integers(min_value=4, max_value=64)
seeds = st.integers(min_value=0, max_value=2**32 - 1)
ks = st.integers(min_value=1, max_value=12)
count_dicts = st.dictionaries(
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=1, max_value=40),
    min_size=0,
    max_size=50,
)
cutoffs = st.one_of(
    st.integers(min_value=0, max_value=20),
    st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
)
scales = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
offsets = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)


# ----------------------------------------------------------------------
# The dict-path oracle (the historical reporter implementation)
# ----------------------------------------------------------------------


def dict_report(counts, k, *, confidence_cutoff=0.0, scale=1.0, offset=0.0):
    """The pre-kernel report: cut-off and estimates via a dict walk."""
    if not counts:
        return HotListAnswer(k=k)
    cutoff = max(kth_largest(counts.values(), k), confidence_cutoff)
    estimates = {
        value: count * scale + offset
        for value, count in counts.items()
        if count >= cutoff
    }
    if not estimates:
        return HotListAnswer(k=k)
    return HotListAnswer(k=k, entries=order_entries(estimates))


def dict_confident(counts, *, confidence_cutoff=0.0, scale=1.0, offset=0.0):
    """The pre-kernel all-confident report."""
    estimates = {
        value: count * scale + offset
        for value, count in counts.items()
        if count >= confidence_cutoff
    }
    entries = order_entries(estimates)
    return HotListAnswer(k=len(entries), entries=entries)


def columns(counts: dict) -> tuple[np.ndarray, np.ndarray]:
    values = np.fromiter(counts.keys(), np.int64, len(counts))
    tallies = np.fromiter(counts.values(), np.int64, len(counts))
    return values, tallies


# ----------------------------------------------------------------------
# Kernel-level identity over arbitrary (values, counts) columns
# ----------------------------------------------------------------------


class TestKernelMatchesDictPath:
    @given(counts=count_dicts, k=ks)
    @settings(max_examples=200, deadline=None)
    def test_rank_cutoff_is_kth_largest(self, counts, k):
        values, tallies = columns(counts)
        assert rank_cutoff(tallies, k) == kth_largest(
            counts.values(), k
        )

    @given(
        counts=count_dicts,
        k=ks,
        cutoff=cutoffs,
        scale=scales,
        offset=offsets,
    )
    @settings(max_examples=300, deadline=None)
    def test_report_identical(self, counts, k, cutoff, scale, offset):
        values, tallies = columns(counts)
        expected = dict_report(
            counts, k, confidence_cutoff=cutoff, scale=scale, offset=offset
        )
        actual = report_from_columns(
            values,
            tallies,
            k,
            confidence_cutoff=cutoff,
            scale=scale,
            offset=offset,
        )
        assert actual == expected

    @given(counts=count_dicts, cutoff=cutoffs, scale=scales, offset=offsets)
    @settings(max_examples=300, deadline=None)
    def test_confident_identical(self, counts, cutoff, scale, offset):
        values, tallies = columns(counts)
        expected = dict_confident(
            counts, confidence_cutoff=cutoff, scale=scale, offset=offset
        )
        actual = confident_from_columns(
            values,
            tallies,
            confidence_cutoff=cutoff,
            scale=scale,
            offset=offset,
        )
        assert actual == expected

    def test_ties_at_rank_boundary_all_reported(self):
        # Four values tied at the c_2 boundary: the dict path reported
        # every one of them (more than k entries); the kernel must too.
        counts = {1: 5, 2: 5, 3: 5, 4: 5, 5: 1}
        values, tallies = columns(counts)
        answer = report_from_columns(values, tallies, 2)
        assert answer == dict_report(counts, 2)
        assert len(answer) == 4

    def test_rejects_nonpositive_k(self):
        values, tallies = columns({1: 2})
        with pytest.raises(ValueError):
            report_from_columns(values, tallies, 0)
        with pytest.raises(ValueError):
            rank_cutoff(tallies, 0)


# ----------------------------------------------------------------------
# Reporter-level identity over maintained samples
# ----------------------------------------------------------------------


class TestReportersMatchDictPath:
    @given(stream=value_streams, bound=footprints, seed=seeds, k=ks)
    @settings(max_examples=100, deadline=None)
    def test_concise(self, stream, bound, seed, k):
        reporter = ConciseHotList(bound, confidence_threshold=2, seed=seed)
        reporter.insert_array(np.asarray(stream, dtype=np.int64))
        sample = reporter.sample
        if sample.sample_size == 0:
            expected = HotListAnswer(k=k)
            expected_confident = HotListAnswer(k=0)
        else:
            scale = sample.total_inserted / sample.sample_size
            expected = dict_report(
                sample.as_dict(), k, confidence_cutoff=2, scale=scale
            )
            expected_confident = dict_confident(
                sample.as_dict(), confidence_cutoff=2, scale=scale
            )
        assert reporter.report(k) == expected
        assert reporter.report_all_confident() == expected_confident

    @given(stream=value_streams, bound=footprints, seed=seeds, k=ks)
    @settings(max_examples=100, deadline=None)
    def test_traditional(self, stream, bound, seed, k):
        reporter = TraditionalHotList(
            bound, confidence_threshold=2, seed=seed
        )
        reporter.insert_array(np.asarray(stream, dtype=np.int64))
        sample = reporter.sample
        if sample.sample_size == 0:
            expected = HotListAnswer(k=k)
        else:
            expected = dict_report(
                dict(sample.pairs()),
                k,
                confidence_cutoff=2,
                scale=sample.total_inserted / sample.sample_size,
            )
        assert reporter.report(k) == expected

    @given(stream=value_streams, bound=footprints, seed=seeds, k=ks)
    @settings(max_examples=100, deadline=None)
    def test_counting(self, stream, bound, seed, k):
        reporter = CountingHotList(bound, seed=seed)
        reporter.insert_array(np.asarray(stream, dtype=np.int64))
        sample = reporter.sample
        counts = sample.as_dict()
        threshold = sample.threshold
        if threshold <= 1.0:
            expected = dict_report(counts, k)
            expected_confident = dict_confident(counts)
        else:
            cutoff = counting_report_cutoff(threshold)
            offset = reporter.compensation()
            expected = dict_report(
                counts, k, confidence_cutoff=cutoff, offset=offset
            )
            expected_confident = dict_confident(
                counts, confidence_cutoff=cutoff, offset=offset
            )
        if not counts:
            expected = HotListAnswer(k=k)
            expected_confident = HotListAnswer(k=0)
        assert reporter.report(k) == expected
        assert reporter.report_all_confident() == expected_confident

    @given(stream=value_streams, bound=footprints, seed=seeds, k=ks)
    @settings(max_examples=100, deadline=None)
    def test_sorted_concise_is_dict_path_prefix(
        self, stream, bound, seed, k
    ):
        reporter = SortedConciseHotList(
            bound, confidence_threshold=2, seed=seed
        )
        reporter.insert_array(np.asarray(stream, dtype=np.int64))
        sample = reporter.sample
        answer = reporter.report(k)
        if sample.sample_size == 0:
            assert answer == HotListAnswer(k=k)
            return
        reference = dict_report(
            sample.as_dict(),
            k,
            confidence_cutoff=2,
            scale=sample.total_inserted / sample.sample_size,
        )
        # The sorted index truncates at exactly k where the dict path
        # reported every boundary tie; within that truncation the
        # entries (values, estimates, order) must match exactly.
        assert len(answer) == min(k, len(reference.entries))
        assert answer.entries == reference.entries[: len(answer)]

    @given(stream=value_streams, k=ks)
    @settings(max_examples=100, deadline=None)
    def test_exact_top_k(self, stream, k):
        reporter = FullHistogramHotList(1000)
        reporter.insert_array(np.asarray(stream, dtype=np.int64))
        table = FrequencyTable()
        table.update(np.asarray(stream, dtype=np.int64))
        expected = sorted(
            table.items(), key=lambda item: (-item[1], item[0])
        )[:k]
        answer = reporter.report(k)
        assert [
            (entry.value, entry.estimated_count) for entry in answer
        ] == [(value, float(count)) for value, count in expected]


# ----------------------------------------------------------------------
# columnar_view contract: memoized, read-only, invalidated on mutation
# ----------------------------------------------------------------------


class TestColumnarView:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: ConciseSample(32, seed=1),
            lambda: CountingSample(32, seed=1),
            lambda: ReservoirSample(32, seed=1),
        ],
        ids=["concise", "counting", "reservoir"],
    )
    def test_memoized_and_read_only(self, make):
        sample = make()
        sample.insert_array(np.asarray([1, 2, 2, 3, 3, 3], np.int64))
        values, counts = sample.columnar_view()
        again_values, again_counts = sample.columnar_view()
        assert values is again_values and counts is again_counts
        with pytest.raises(ValueError):
            values[0] = 99
        with pytest.raises(ValueError):
            counts[0] = 99

    @pytest.mark.parametrize(
        "make",
        [
            lambda: ConciseSample(32, seed=1),
            lambda: CountingSample(32, seed=1),
            lambda: ReservoirSample(32, seed=1),
        ],
        ids=["concise", "counting", "reservoir"],
    )
    def test_invalidated_by_mutation(self, make):
        sample = make()
        sample.insert_array(np.asarray([1, 2, 2], np.int64))
        values, counts = sample.columnar_view()
        sample.insert(7)
        fresh_values, fresh_counts = sample.columnar_view()
        assert fresh_values is not values
        pairs = dict(
            zip(fresh_values.tolist(), fresh_counts.tolist(), strict=True)
        )
        assert pairs.get(7, 0) >= 0  # well-formed view
        assert all(count >= 1 for count in pairs.values())

    def test_view_matches_pairs(self):
        sample = ConciseSample(64, seed=3)
        sample.insert_array(
            np.asarray([5, 5, 5, 1, 1, 9, 9, 9, 9], np.int64)
        )
        values, counts = sample.columnar_view()
        assert dict(
            zip(values.tolist(), counts.tolist(), strict=True)
        ) == sample.as_dict()

    def test_counting_delete_invalidates(self):
        sample = CountingSample(32, seed=4)
        sample.insert_array(np.asarray([1, 1, 2], np.int64))
        values, _ = sample.columnar_view()
        sample.delete(1)
        fresh_values, fresh_counts = sample.columnar_view()
        assert fresh_values is not values
        assert dict(
            zip(fresh_values.tolist(), fresh_counts.tolist(), strict=True)
        ) == sample.as_dict()


# ----------------------------------------------------------------------
# Bulk-ingest audit: every concrete reporter takes the vectorized path
# ----------------------------------------------------------------------


def _concrete_reporters(cls=HotListReporter):
    for subclass in cls.__subclasses__():
        if not getattr(subclass, "__abstractmethods__", None):
            yield subclass
        yield from _concrete_reporters(subclass)


class TestBulkIngestAudit:
    def test_every_concrete_reporter_has_a_bulk_path(self):
        found = list(_concrete_reporters())
        names = {cls.__name__ for cls in found}
        assert {
            "ConciseHotList",
            "CountingHotList",
            "TraditionalHotList",
            "SortedConciseHotList",
            "FullHistogramHotList",
        } <= names
        for cls in found:
            overrides = any(
                "insert_array" in ancestor.__dict__
                for ancestor in cls.__mro__
                if ancestor is not HotListReporter
            )
            assert overrides, (
                f"{cls.__name__} relies on the base insert_array; "
                "its synopsis must expose a vectorized bulk path"
            )

    def test_base_fallback_routes_through_sample(self):
        class Recorder:
            def __init__(self):
                self.batches = []

            def insert_array(self, values):
                self.batches.append(np.asarray(values))

        class ViaSample(HotListReporter):
            def __init__(self):
                self.sample = Recorder()

            def insert(self, value):  # pragma: no cover - not used
                raise AssertionError("bulk path should be used")

            def report(self, k):  # pragma: no cover - not used
                return HotListAnswer(k=k)

        reporter = ViaSample()
        reporter.insert_array(np.asarray([1, 2, 3], np.int64))
        assert len(reporter.sample.batches) == 1
        assert reporter.sample.batches[0].tolist() == [1, 2, 3]

    def test_base_fallback_without_sample_uses_per_element(self):
        class PerElement(HotListReporter):
            def __init__(self):
                self.seen = []

            def insert(self, value):
                self.seen.append(value)

            def report(self, k):  # pragma: no cover - not used
                return HotListAnswer(k=k)

        reporter = PerElement()
        reporter.insert_array(np.asarray([4, 5, 6], np.int64))
        assert reporter.seen == [4, 5, 6]
