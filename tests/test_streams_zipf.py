"""Unit tests for the bounded Zipf generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.zipf import ZipfDistribution, zipf_stream


class TestZipfDistribution:
    def test_probabilities_sum_to_one(self):
        for skew in (0.0, 0.5, 1.0, 2.0, 3.0):
            dist = ZipfDistribution(1000, skew)
            assert dist.probabilities.sum() == pytest.approx(1.0)

    def test_zero_skew_is_uniform(self):
        dist = ZipfDistribution(100, 0.0)
        assert np.allclose(dist.probabilities, 0.01)

    def test_probabilities_nonincreasing(self):
        dist = ZipfDistribution(500, 1.5)
        probabilities = dist.probabilities
        assert np.all(np.diff(probabilities) <= 0)

    def test_probability_ratio_follows_power_law(self):
        skew = 2.0
        dist = ZipfDistribution(100, skew)
        ratio = dist.probability(1) / dist.probability(2)
        assert ratio == pytest.approx(2.0**skew)

    def test_probability_out_of_domain(self):
        dist = ZipfDistribution(10, 1.0)
        assert dist.probability(0) == 0.0
        assert dist.probability(11) == 0.0

    def test_probabilities_read_only(self):
        dist = ZipfDistribution(10, 1.0)
        with pytest.raises(ValueError):
            dist.probabilities[0] = 0.5

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ZipfDistribution(0, 1.0)
        with pytest.raises(ValueError):
            ZipfDistribution(10, -0.5)

    def test_sample_in_domain(self):
        dist = ZipfDistribution(50, 1.2)
        values = dist.sample(10_000, seed=1)
        assert values.min() >= 1
        assert values.max() <= 50

    def test_sample_reproducible(self):
        dist = ZipfDistribution(100, 1.0)
        assert np.array_equal(dist.sample(1000, 7), dist.sample(1000, 7))

    def test_sample_length_and_dtype(self):
        values = ZipfDistribution(10, 1.0).sample(123, seed=2)
        assert len(values) == 123
        assert values.dtype == np.int64

    def test_sample_zero_length(self):
        assert len(ZipfDistribution(10, 1.0).sample(0, seed=3)) == 0

    def test_sample_rejects_negative_n(self):
        with pytest.raises(ValueError):
            ZipfDistribution(10, 1.0).sample(-1, seed=4)

    def test_empirical_frequencies_match(self):
        dist = ZipfDistribution(20, 1.5)
        n = 100_000
        values = dist.sample(n, seed=5)
        counts = np.bincount(values, minlength=21)[1:]
        expected = dist.expected_frequencies(n)
        # Top values have enough mass for a tight relative check.
        for rank in range(3):
            assert counts[rank] == pytest.approx(
                expected[rank], rel=0.05
            )

    def test_high_skew_concentrates_on_top_value(self):
        values = ZipfDistribution(1000, 3.0).sample(10_000, seed=6)
        assert (values == 1).mean() > 0.7

    def test_expected_frequency_moment_f1_is_n(self):
        dist = ZipfDistribution(100, 1.0)
        assert dist.frequency_moment(1.0, 5000) == pytest.approx(5000.0)

    def test_domain_of_one(self):
        values = ZipfDistribution(1, 2.0).sample(100, seed=7)
        assert np.all(values == 1)


class TestZipfStream:
    def test_wrapper_equals_class(self):
        direct = ZipfDistribution(100, 1.1).sample(500, seed=9)
        wrapped = zipf_stream(500, 100, 1.1, seed=9)
        assert np.array_equal(direct, wrapped)
