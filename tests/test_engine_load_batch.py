"""Tests for the columnar load path: ``Relation.insert_batch``,
``DataWarehouse.load_batch``, and the engine's batch observer."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.concise import ConciseSample
from repro.core.counting import CountingSample
from repro.engine import ApproximateAnswerEngine, DataWarehouse
from repro.engine.composite import decode_composite_answer
from repro.engine.oplog import OperationLog
from repro.engine.queries import FrequencyQuery, HotListQuery
from repro.engine.relation import Relation, RelationError
from repro.streams import zipf_stream


class TestRelationInsertBatch:
    def test_matches_per_row_multiset(self):
        per_row = Relation("r", ["a", "b"])
        batch = Relation("r", ["a", "b"])
        a = np.array([1, 2, 1, 3, 1], dtype=np.int64)
        b = np.array([9, 8, 9, 7, 9], dtype=np.int64)
        for row in zip(a.tolist(), b.tolist(), strict=True):
            per_row.insert(row)
        batch.insert_batch({"a": a, "b": b})
        assert batch.size == per_row.size == 5
        assert Counter(batch.rows()) == Counter(per_row.rows())
        assert np.array_equal(
            np.sort(batch.column("a")), np.sort(per_row.column("a"))
        )

    def test_float_columns_keep_native_types(self):
        relation = Relation("r", ["a", "b"])
        relation.insert_batch(
            {
                "a": np.array([1, 1], dtype=np.int64),
                "b": np.array([0.5, 0.5]),
            }
        )
        assert relation.size == 2
        ((row, count),) = Counter(relation.rows()).most_common(1)
        assert row == (1, 0.5)
        assert count == 2

    def test_rejects_bad_batches(self):
        relation = Relation("r", ["a", "b"])
        with pytest.raises(RelationError):
            relation.insert_batch({"a": np.array([1])})
        with pytest.raises(RelationError):
            relation.insert_batch(
                {
                    "a": np.array([1]),
                    "b": np.array([1, 2]),
                }
            )
        with pytest.raises(RelationError):
            relation.insert_batch(
                {
                    "a": np.array([1]),
                    "b": np.array([2]),
                    "c": np.array([3]),
                }
            )

    def test_empty_batch_is_noop(self):
        relation = Relation("r", ["a"])
        relation.insert_batch({"a": np.empty(0, dtype=np.int64)})
        assert relation.size == 0


class TestWarehouseLoadBatch:
    def test_loads_rows_and_counts_inserts(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        loaded = warehouse.load_batch(
            "r", {"a": np.arange(100, dtype=np.int64)}
        )
        assert loaded == 100
        assert warehouse.relation("r").size == 100
        assert warehouse.counters.inserts == 100

    def test_row_observers_get_per_row_fallback(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a", "b"])
        log = OperationLog()
        warehouse.add_observer(log.observe)
        warehouse.load_batch(
            "r",
            {
                "a": np.array([1, 2], dtype=np.int64),
                "b": np.array([3, 4], dtype=np.int64),
            },
        )
        assert len(log) == 2
        rows = [entry.row for entry in log.entries_since(0)]
        assert rows == [(1, 3), (2, 4)]
        assert all(entry.is_insert for entry in log.entries_since(0))

    def test_batch_observer_called_once_with_columns(self):
        calls = []

        class BatchTap:
            def observe_batch(self, relation, columns):
                calls.append((relation, columns))

            def __call__(self, relation, row, is_insert):
                raise AssertionError(
                    "batch-capable observer got a per-row call"
                )

        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        warehouse.add_observer(BatchTap())
        warehouse.load_batch(
            "r", {"a": np.array([5, 6, 7], dtype=np.int64)}
        )
        assert len(calls) == 1
        relation, columns = calls[0]
        assert relation == "r"
        assert np.array_equal(columns["a"], [5, 6, 7])


class TestEngineBatchObservation:
    def _build(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("sales", ["store", "item"])
        engine = ApproximateAnswerEngine(warehouse)
        return warehouse, engine

    def test_load_batch_feeds_synopses_and_row_counts(self):
        warehouse, engine = self._build()
        sample = ConciseSample(400, seed=1)
        engine.register_sample("sales", "item", sample)
        items = zipf_stream(5000, 200, 1.0, seed=2)
        stores = np.zeros(len(items), dtype=np.int64)
        warehouse.load_batch(
            "sales", {"store": stores, "item": items}
        )
        assert engine.rows_loaded("sales") == len(items)
        assert sample.total_inserted == len(items)
        sample.check_invariants()
        response = engine.answer(
            FrequencyQuery("sales", "item", value=1)
        )
        exact = engine.answer(
            FrequencyQuery("sales", "item", value=1), exact=True
        )
        assert response.answer == pytest.approx(
            exact.answer, rel=0.5
        )

    def test_load_batch_equivalent_to_load_for_queries(self):
        items = zipf_stream(4000, 150, 1.0, seed=5)
        stores = np.ones(len(items), dtype=np.int64)

        warehouse_rows, engine_rows = self._build()
        engine_rows.register_sample(
            "sales", "item", ConciseSample(400, seed=6)
        )
        warehouse_rows.load(
            "sales", list(zip(stores.tolist(), items.tolist(), strict=True))
        )

        warehouse_batch, engine_batch = self._build()
        engine_batch.register_sample(
            "sales", "item", ConciseSample(400, seed=6)
        )
        warehouse_batch.load_batch(
            "sales", {"store": stores, "item": items}
        )

        assert (
            warehouse_batch.relation("sales").size
            == warehouse_rows.relation("sales").size
        )
        query = FrequencyQuery("sales", "item", value=1)
        exact_rows = engine_rows.answer(query, exact=True)
        exact_batch = engine_batch.answer(query, exact=True)
        assert exact_rows.answer == exact_batch.answer
        approx_rows = engine_rows.answer(query)
        approx_batch = engine_batch.answer(query)
        # Different random paths, same law: both land near the truth.
        assert approx_rows.answer == pytest.approx(
            exact_rows.answer, rel=0.6, abs=40
        )
        assert approx_batch.answer == pytest.approx(
            exact_rows.answer, rel=0.6, abs=40
        )

    def test_composite_pairs_take_vectorized_path(self):
        from repro.hotlist.counting import CountingHotList

        warehouse, engine = self._build()
        name = engine.register_composite_hotlist(
            "sales", ("store", "item"), CountingHotList(200, seed=9)
        )
        stores = np.array([1, 1, 1, 2], dtype=np.int64)
        items = np.array([7, 7, 7, 8], dtype=np.int64)
        warehouse.load_batch(
            "sales", {"store": stores, "item": items}
        )
        answer = engine.answer(HotListQuery("sales", name, k=2))
        decoded = decode_composite_answer(answer.answer, 2)
        assert decoded[0][0] == (1, 7)

    def test_deletes_still_flow_per_row(self):
        warehouse, engine = self._build()
        sample = CountingSample(100, seed=11)
        engine.register_sample("sales", "item", sample)
        warehouse.load_batch(
            "sales",
            {
                "store": np.array([1, 1], dtype=np.int64),
                "item": np.array([5, 5], dtype=np.int64),
            },
        )
        assert sample.count_of(5) == 2
        warehouse.delete("sales", (1, 5))
        assert sample.count_of(5) == 1
        assert engine.rows_loaded("sales") == 1

    def test_float_column_cast_matches_per_row_int_cast(self):
        warehouse, engine = self._build()
        sample = CountingSample(100, seed=12)
        engine.register_sample("sales", "store", sample)
        warehouse.load_batch(
            "sales",
            {
                "store": np.array([2.0, 2.0, 3.0]),
                "item": np.array([1, 1, 1], dtype=np.int64),
            },
        )
        assert sample.count_of(2) == 2
        assert sample.count_of(3) == 1
