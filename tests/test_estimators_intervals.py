"""Unit tests for confidence intervals."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.randkit import numpy_generator
from repro.estimators.intervals import (
    ConfidenceInterval,
    clt_interval,
    hoeffding_count_interval,
    normal_quantile,
)


class TestNormalQuantile:
    def test_median(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_standard_values(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert normal_quantile(0.995) == pytest.approx(2.575829, abs=1e-5)
        assert normal_quantile(0.841344746) == pytest.approx(1.0, abs=1e-5)

    def test_symmetry(self):
        for p in (0.6, 0.9, 0.99, 0.999):
            assert normal_quantile(p) == pytest.approx(
                -normal_quantile(1 - p), abs=1e-8
            )

    def test_tails(self):
        assert normal_quantile(1e-10) < -6
        assert normal_quantile(1 - 1e-10) > 6

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for p in (0.01, 0.2, 0.5, 0.77, 0.99, 0.9999):
            assert normal_quantile(p) == pytest.approx(
                float(scipy_stats.norm.ppf(p)), abs=1e-7
            )

    def test_rejects_endpoints(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)
        with pytest.raises(ValueError):
            normal_quantile(1.0)


class TestConfidenceInterval:
    def test_properties(self):
        interval = ConfidenceInterval(2.0, 6.0, 0.95)
        assert interval.width == pytest.approx(4.0)
        assert interval.midpoint == pytest.approx(4.0)
        assert 3.0 in interval
        assert 7.0 not in interval


class TestCltInterval:
    def test_centred_on_estimate(self):
        interval = clt_interval(10.0, 2.0, 0.95)
        assert interval.midpoint == pytest.approx(10.0)

    def test_width_scales_with_z(self):
        narrow = clt_interval(0.0, 1.0, 0.68)
        wide = clt_interval(0.0, 1.0, 0.999)
        assert wide.width > narrow.width

    def test_zero_error_degenerate(self):
        interval = clt_interval(5.0, 0.0, 0.95)
        assert interval.low == interval.high == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            clt_interval(0.0, -1.0)
        with pytest.raises(ValueError):
            clt_interval(0.0, 1.0, confidence=1.5)

    def test_coverage_simulation(self):
        """A 90% CLT interval for a sample mean covers the truth about
        90% of the time."""
        rng = numpy_generator(1)
        true_mean, n = 10.0, 200
        covered = 0
        trials = 600
        for _ in range(trials):
            sample = rng.normal(true_mean, 3.0, size=n)
            interval = clt_interval(
                float(sample.mean()),
                float(sample.std(ddof=1) / math.sqrt(n)),
                0.9,
            )
            covered += true_mean in interval
        assert covered / trials == pytest.approx(0.9, abs=0.04)


class TestHoeffdingInterval:
    def test_contains_estimate(self):
        interval = hoeffding_count_interval(30, 100, 1000, 0.95)
        assert 300.0 in interval

    def test_clipped_to_population_bounds(self):
        interval = hoeffding_count_interval(0, 10, 1000, 0.99)
        assert interval.low == 0.0
        interval = hoeffding_count_interval(10, 10, 1000, 0.99)
        assert interval.high == 1000.0

    def test_narrower_with_more_samples(self):
        small = hoeffding_count_interval(30, 100, 1000)
        large = hoeffding_count_interval(300, 1000, 1000)
        assert large.width < small.width

    def test_guaranteed_coverage(self):
        """Hoeffding is conservative: empirical coverage above the
        nominal level."""
        rng = numpy_generator(2)
        p, n, population = 0.3, 150, 10_000
        covered = 0
        trials = 500
        for _ in range(trials):
            matching = int(rng.binomial(n, p))
            interval = hoeffding_count_interval(
                matching, n, population, 0.9
            )
            covered += (p * population) in interval
        assert covered / trials >= 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            hoeffding_count_interval(1, 0, 10)
        with pytest.raises(ValueError):
            hoeffding_count_interval(11, 10, 100)
        with pytest.raises(ValueError):
            hoeffding_count_interval(5, 10, 100, confidence=0.0)


class TestWilsonInterval:
    def test_contains_proportion(self):
        from repro.estimators.intervals import wilson_interval

        interval = wilson_interval(30, 100, 0.95)
        assert 0.3 in interval

    def test_stays_in_unit_interval_at_extremes(self):
        from repro.estimators.intervals import wilson_interval

        zero = wilson_interval(0, 50, 0.99)
        assert zero.low == 0.0
        assert zero.high > 0.0  # still informative
        full = wilson_interval(50, 50, 0.99)
        assert full.high == 1.0
        assert full.low < 1.0

    def test_narrower_with_more_samples(self):
        from repro.estimators.intervals import wilson_interval

        small = wilson_interval(3, 10)
        large = wilson_interval(300, 1000)
        assert large.width < small.width

    def test_coverage_simulation(self):
        import numpy as np

        from repro.estimators.intervals import wilson_interval

        rng = numpy_generator(9)
        p, n, trials = 0.05, 80, 600  # rare predicate, small sample
        covered = 0
        for _ in range(trials):
            matching = int(rng.binomial(n, p))
            covered += p in wilson_interval(matching, n, 0.9)
        assert covered / trials >= 0.85

    def test_validation(self):
        import pytest

        from repro.estimators.intervals import wilson_interval

        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(5, 10, confidence=1.0)


class TestEmpiricalBernstein:
    def test_contains_mean_and_is_symmetric(self):
        from repro.estimators.intervals import empirical_bernstein_interval

        interval = empirical_bernstein_interval(
            10.0, variance=4.0, value_range=20.0, sample_size=100
        )
        assert interval.low < 10.0 < interval.high
        assert interval.midpoint == pytest.approx(10.0)
        assert interval.confidence == 0.95

    def test_margin_formula(self):
        from repro.estimators.intervals import empirical_bernstein_interval

        m, variance, value_range = 50, 2.0, 8.0
        log_term = math.log(3.0 / 0.05)
        expected = math.sqrt(
            2.0 * variance * log_term / m
        ) + 3.0 * value_range * log_term / m
        interval = empirical_bernstein_interval(
            0.0, variance, value_range, m
        )
        assert interval.high == pytest.approx(expected)

    def test_shrinks_with_sample_size(self):
        from repro.estimators.intervals import empirical_bernstein_interval

        widths = [
            empirical_bernstein_interval(0.0, 1.0, 4.0, m).width
            for m in (10, 100, 1000, 10_000)
        ]
        assert widths == sorted(widths, reverse=True)

    def test_zero_variance_keeps_range_term(self):
        from repro.estimators.intervals import empirical_bernstein_interval

        interval = empirical_bernstein_interval(5.0, 0.0, 10.0, 100)
        assert interval.width == pytest.approx(
            2 * 3.0 * 10.0 * math.log(3.0 / 0.05) / 100
        )

    def test_coverage_holds_at_small_samples(self):
        """The whole point: valid at finite m where the CLT can fail."""
        from repro.estimators.intervals import empirical_bernstein_interval

        rng = numpy_generator(123)
        misses = 0
        trials = 400
        for _ in range(trials):
            draws = rng.binomial(1, 0.05, size=30).astype(float)
            interval = empirical_bernstein_interval(
                float(draws.mean()),
                float(draws.var(ddof=1)),
                1.0,
                30,
                confidence=0.9,
            )
            misses += not (interval.low <= 0.05 <= interval.high)
        assert misses / trials <= 0.1
