"""ShardedSynopsis edge cases: degenerate k=1 and empty shards.

The degenerate single-shard instance must be *byte-identical* to the
unsharded synopsis built with the same seed -- running the Theorem-2/5
merge machinery over one shard would redraw admission coins for no
statistical benefit.  Empty shards (never fed, or emptied by deletes
that raised the threshold) must merge without error and contribute
nothing but their threshold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ConciseSample,
    CountingSample,
    ShardedSynopsis,
    merge_concise,
    merge_counting,
)
from repro.streams import zipf_stream

STREAM = zipf_stream(20_000, 500, 1.25, seed=99)
BOUND = 100


class TestDegenerateSingleShard:
    @pytest.mark.parametrize("kind", ["concise", "counting"])
    def test_k1_byte_identical_to_unsharded(self, kind):
        factory = getattr(ShardedSynopsis, kind)
        sharded = factory(1, BOUND, seed=1234, parallel=False)
        if kind == "concise":
            single = ConciseSample(BOUND, seed=1234)
        else:
            single = CountingSample(BOUND, seed=1234)
        sharded.insert_array(STREAM)
        single.insert_array(STREAM)
        assert sharded.merged().to_dict() == single.to_dict()

    def test_k1_identity_survives_continued_ingest(self):
        sharded = ShardedSynopsis.concise(1, BOUND, seed=7, parallel=False)
        single = ConciseSample(BOUND, seed=7)
        for start in range(0, len(STREAM), 4096):
            piece = STREAM[start : start + 4096]
            sharded.insert_array(piece)
            single.insert_array(piece)
            # merged() is the shard itself, so it tracks every batch
            # without a stale cache in between.
            assert sharded.merged().to_dict() == single.to_dict()

    def test_k1_merged_is_the_shard(self):
        sharded = ShardedSynopsis.counting(1, BOUND, seed=3)
        sharded.insert_array(STREAM)
        assert sharded.merged() is sharded.shards[0]
        sharded.check_invariants()

    def test_k1_custom_bound_still_merges(self):
        # A hand-built instance with a mismatched merge bound cannot
        # alias the shard -- the merge must actually shrink.
        shard = ConciseSample(BOUND, seed=5)
        shard.insert_array(STREAM)
        sharded = ShardedSynopsis(
            [shard], merge_concise, merge_seed=6,
            footprint_bound=BOUND // 2, policy=None,
        )
        merged = sharded.merged()
        assert merged is not shard
        assert merged.footprint <= BOUND // 2
        merged.check_invariants()

    def test_k1_seed_matches_unsharded_seed(self):
        # The factory must hand the master seed to the lone shard, not
        # a spawned child seed.
        sharded = ShardedSynopsis.concise(1, BOUND, seed=42)
        single = ConciseSample(BOUND, seed=42)
        assert sharded.shards[0].to_dict() == single.to_dict()


class TestEmptyShards:
    def test_merge_with_one_empty_shard(self):
        sharded = ShardedSynopsis.concise(3, BOUND, seed=11, parallel=False)
        # Feed shards 0 and 1 directly; shard 2 stays empty.
        sharded.shards[0].insert_array(STREAM[:5000])
        sharded.shards[1].insert_array(STREAM[5000:10000])
        merged = sharded.merged()
        merged.check_invariants()
        assert merged.total_inserted == 10_000

    def test_merge_all_empty_shards(self):
        for factory in (ShardedSynopsis.concise, ShardedSynopsis.counting):
            sharded = factory(4, BOUND, seed=13, parallel=False)
            merged = sharded.merged()
            merged.check_invariants()
            assert merged.total_inserted == 0
            assert merged.footprint == 0

    def test_empty_batch_is_a_noop(self):
        sharded = ShardedSynopsis.concise(2, BOUND, seed=17, parallel=False)
        sharded.insert_array(STREAM)
        before = sharded.merged().to_dict()
        sharded.insert_array(np.array([], dtype=np.int64))
        assert sharded.merged().to_dict() == before

    def test_fewer_values_than_shards(self):
        sharded = ShardedSynopsis.counting(8, BOUND, seed=19, parallel=False)
        sharded.insert_array(np.array([1, 2, 3], dtype=np.int64))
        merged = sharded.merged()
        merged.check_invariants()
        assert merged.total_inserted == 3

    def test_delete_emptied_shard_with_raised_threshold(self):
        # A counting shard emptied by deletions can carry a raised
        # threshold; the merge must honour it (the merged threshold is
        # the max) without trying to subsample the empty sample.
        emptied = CountingSample(8, seed=23)
        values = zipf_stream(4_000, 50, 1.3, seed=29)
        emptied.insert_array(values)
        for value in values.tolist():
            emptied.delete(value)
        assert emptied.footprint == 0
        full = CountingSample(8, seed=31)
        full.insert_array(zipf_stream(4_000, 50, 1.3, seed=37))
        merged = merge_counting([emptied, full], seed=41)
        merged.check_invariants()
        assert merged.threshold >= max(emptied.threshold, full.threshold)
        # total_inserted is net of deletes: 4000 survive.
        assert merged.total_inserted == 4_000

    def test_concise_merge_empty_with_full(self):
        empty = ConciseSample(BOUND, seed=43)
        full = ConciseSample(BOUND, seed=47)
        full.insert_array(STREAM)
        merged = merge_concise([empty, full], seed=53)
        merged.check_invariants()
        assert merged.total_inserted == len(STREAM)
