"""RecoveryManager end-to-end: checkpoint, replay, repair, typed errors.

The live-side tap (WAL per acknowledged op), the checkpoint cycle
(snapshot, rotate, truncate, prune), and recovery as snapshot +
log-suffix replay -- including the torn-tail repair path and the
never-partial-state guarantee.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.concise import ConciseSample
from repro.core.counting import CountingSample
from repro.engine.oplog import OperationLog
from repro.engine.warehouse import DataWarehouse
from repro.persist import (
    CheckpointStore,
    LogGapError,
    RecoveryManager,
    ReplayError,
    segment_name,
)


def build_live(tmp_path, *, synopsis=None, oplog=None):
    store = CheckpointStore(tmp_path / "state")
    manager = RecoveryManager(store, oplog=oplog)
    warehouse = DataWarehouse()
    warehouse.create_relation("sales", ["item", "qty"])
    manager.attach(warehouse)
    if synopsis is not None:
        manager.bind("sales", "item", synopsis)
    return store, manager, warehouse


def reopen(tmp_path, *, seed=17, **kwargs):
    store = CheckpointStore(tmp_path / "state")
    return RecoveryManager(store).recover(seed=seed, **kwargs)


class TestHappyPath:
    def test_checkpoint_plus_suffix_restores_rows(self, tmp_path):
        _, manager, warehouse = build_live(tmp_path)
        for i in range(10):
            warehouse.insert("sales", (i % 3, i))
        manager.checkpoint()
        for i in range(10, 16):
            warehouse.insert("sales", (i % 3, i))
        warehouse.delete("sales", (0, 0))
        manager.detach()

        state = reopen(tmp_path)
        assert state.checkpoint_sequence == 10
        assert state.replayed == 7
        assert state.sequence == 17
        assert state.torn_tail is None
        restored = state.warehouse.relation("sales")
        assert restored.size == 15
        assert Counter(restored.rows()) == Counter(
            [(i % 3, i) for i in range(16) if i != 0]
        )

    def test_synopsis_rides_the_checkpoint(self, tmp_path):
        sample = CountingSample(footprint_bound=64, seed=5)
        _, manager, warehouse = build_live(tmp_path, synopsis=sample)
        warehouse.add_observer(
            lambda rel, row, ins: (
                sample.insert(row[0]) if ins else sample.delete(row[0])
            )
        )
        for i in range(12):
            warehouse.insert("sales", (i % 4, i))
        manager.checkpoint()
        for i in range(12, 20):
            warehouse.insert("sales", (i % 4, i))
        manager.detach()

        state = reopen(tmp_path)
        restored = state.synopsis("sales", "item")
        assert isinstance(restored, CountingSample)
        restored.check_invariants()
        assert restored.total_inserted == sample.total_inserted
        assert restored.as_dict() == sample.as_dict()

    def test_recovered_manager_continues_the_stream(self, tmp_path):
        _, manager, warehouse = build_live(tmp_path)
        warehouse.insert("sales", (1, 1))
        manager.checkpoint()
        manager.detach()

        store = CheckpointStore(tmp_path / "state")
        survivor = RecoveryManager(store)
        state = survivor.recover(seed=3)
        survivor.attach(state.warehouse)
        state.warehouse.insert("sales", (2, 2))
        survivor.checkpoint()
        survivor.detach()

        again = reopen(tmp_path)
        assert again.sequence == 2
        assert again.warehouse.relation("sales").size == 2

    def test_empty_store_recovers_to_fresh_state(self, tmp_path):
        state = reopen(tmp_path)
        assert state.sequence == 0
        assert state.replayed == 0
        assert state.checkpoint_sequence == -1
        assert state.synopses == {}

    def test_checkpoint_rotates_and_prunes(self, tmp_path):
        store, manager, warehouse = build_live(tmp_path)
        for i in range(4):
            warehouse.insert("sales", (i, i))
        manager.checkpoint()
        for i in range(4, 8):
            warehouse.insert("sales", (i, i))
        manager.checkpoint()
        assert store.checkpoint_sequences() == [8]
        # Only the post-checkpoint segment survives truncation.
        assert store.wal.segment_bases() == [9]

    def test_oplog_mirror_tracks_the_wal(self, tmp_path):
        mirror = OperationLog()
        _, manager, warehouse = build_live(tmp_path, oplog=mirror)
        for i in range(5):
            warehouse.insert("sales", (i, i))
        assert len(mirror) == 5
        manager.checkpoint()
        assert len(mirror) == 0  # truncated with the WAL
        warehouse.insert("sales", (9, 9))
        assert [e.sequence for e in mirror.entries_since(0)] == [5]


class TestLateCreatedRelations:
    """Relations created after attach must be replayable from the WAL.

    Their schema record is appended lazily at the first logged op, so
    a crash before the next checkpoint never strands acknowledged
    operations behind a `ReplayError` (regression: previously schema
    was written only at attach and rotation, making the whole store
    unrecoverable).
    """

    def test_relation_created_after_attach_recovers(self, tmp_path):
        _, manager, warehouse = build_live(tmp_path)
        warehouse.insert("sales", (1, 1))
        warehouse.create_relation("returns", ["item"])
        warehouse.insert("returns", (2,))
        manager.detach()

        state = reopen(tmp_path)
        assert state.sequence == 2
        restored = state.warehouse.relation("returns")
        assert Counter(restored.rows()) == Counter([(2,)])

    def test_relation_created_after_checkpoint_recovers(self, tmp_path):
        _, manager, warehouse = build_live(tmp_path)
        warehouse.insert("sales", (1, 1))
        manager.checkpoint()
        warehouse.create_relation("returns", ["item"])
        warehouse.insert("returns", (2,))
        warehouse.insert("returns", (3,))
        manager.detach()

        state = reopen(tmp_path)
        assert state.checkpoint_sequence == 1
        assert state.sequence == 3
        restored = state.warehouse.relation("returns")
        assert Counter(restored.rows()) == Counter([(2,), (3,)])


class TestTornTailRepair:
    def tear_last_segment(self, store):
        base = store.wal.segment_bases()[-1]
        path = store.wal.directory / segment_name(base)
        data = path.read_bytes()
        path.write_bytes(data[:-7])
        return path, data

    def test_torn_tail_is_dropped_reported_and_repaired(self, tmp_path):
        store, manager, warehouse = build_live(tmp_path)
        for i in range(6):
            warehouse.insert("sales", (i, i))
        manager.detach()
        path, _ = self.tear_last_segment(store)

        state = reopen(tmp_path)
        assert state.torn_tail is not None
        assert state.sequence == 5  # the torn sixth record is dropped
        assert state.warehouse.relation("sales").size == 5

        # The damaged segment was truncated to its clean prefix: a
        # second recovery sees a clean WAL.
        again = reopen(tmp_path)
        assert again.torn_tail is None
        assert again.sequence == 5

    def test_transient_fault_during_repair_is_retried(self, tmp_path):
        from repro.faults import WRITE_ERROR, FaultPlan, FaultyFilesystem
        from repro.persist import LocalFileSystem

        store, manager, warehouse = build_live(tmp_path)
        for i in range(8):
            warehouse.insert("sales", (i, i))
        manager.detach()
        # The repair path is write-prefix, fsync, replace, dir-sync; a
        # transient fault at each step must be absorbed by the retry
        # policy, not abort recovery.  Each tear drops one record, so
        # the recovered sequence steps down by one per iteration.
        for index in range(4):
            self.tear_last_segment(store)
            fs = FaultyFilesystem(
                LocalFileSystem(), FaultPlan.single(index, WRITE_ERROR)
            )
            state = RecoveryManager(
                CheckpointStore(tmp_path / "state", fs)
            ).recover(seed=17)
            assert state.torn_tail is not None
            assert state.sequence == 7 - index

    def test_strict_mode_refuses_the_torn_tail(self, tmp_path):
        from repro.persist import TornWriteError

        store, manager, warehouse = build_live(tmp_path)
        warehouse.insert("sales", (1, 1))
        warehouse.insert("sales", (2, 2))
        manager.detach()
        self.tear_last_segment(store)
        with pytest.raises(TornWriteError):
            reopen(tmp_path, tolerate_torn_tail=False)


class TestTypedFailures:
    def test_gap_between_checkpoint_and_wal(self, tmp_path):
        store, manager, warehouse = build_live(tmp_path)
        for i in range(3):
            warehouse.insert("sales", (i, i))
        manager.checkpoint()
        for i in range(3, 6):
            warehouse.insert("sales", (i, i))
        manager.detach()
        # Losing the post-checkpoint segment leaves ops 4..6 unknown.
        base = store.wal.segment_bases()[-1]
        (store.wal.directory / segment_name(base)).unlink()
        state = reopen(tmp_path)
        # With the whole suffix gone recovery legitimately stops at
        # the checkpoint -- but acknowledged ops 4..6 are lost, which
        # the sequence number makes visible.
        assert state.sequence == 3

    def test_gap_inside_the_suffix_raises(self, tmp_path):
        store, manager, warehouse = build_live(tmp_path)
        warehouse.insert("sales", (1, 1))
        manager.checkpoint()
        for i in range(2, 6):
            warehouse.insert("sales", (i, i))
        manager.checkpoint()
        for i in range(6, 9):
            warehouse.insert("sales", (i, i))
        manager.detach()
        # Truncation left only the post-checkpoint segment (ops 6..8);
        # removing the newest checkpoint makes ops 1..5 unrecoverable,
        # which must surface as a typed gap -- never partial state.
        assert store.wal.segment_bases() == [6]
        newest = store.checkpoint_sequences()[-1]
        from repro.persist.checkpoint import _checkpoint_name

        (store.directory / _checkpoint_name(newest)).unlink()
        with pytest.raises(LogGapError):
            reopen(tmp_path)

    def test_delete_replay_needs_a_counting_sample(self, tmp_path):
        sample = ConciseSample(footprint_bound=64, seed=5)
        _, manager, warehouse = build_live(tmp_path, synopsis=sample)
        warehouse.insert("sales", (1, 1))
        manager.checkpoint()
        warehouse.delete("sales", (1, 1))
        manager.detach()
        with pytest.raises(ReplayError, match="cannot[\\s\\S]*replay"):
            reopen(tmp_path)

    def test_replay_against_wrong_relation_is_typed(self, tmp_path):
        store, manager, warehouse = build_live(tmp_path)
        warehouse.insert("sales", (1, 1))
        manager.checkpoint()
        warehouse.insert("sales", (2, 2))
        manager.detach()
        # Corrupt the checkpoint so "sales" claims a single attribute:
        # the replayed two-element row cannot apply to it.  (A missing
        # relation would be healed from the WAL's schema records, so
        # arity is the honest way to make replay impossible.)
        from repro.persist.framing import encode_frame
        from repro.persist.checkpoint import _checkpoint_name

        path = store.directory / _checkpoint_name(1)
        payload = store.load_checkpoint(1)
        payload["relations"] = {
            "sales": {
                **payload["relations"]["sales"],
                "attributes": ["item"],
                "rows": [],
            }
        }
        path.write_bytes(
            encode_frame(
                {
                    "kind": "checkpoint",
                    "format_version": 1,
                    "sequence": 1,
                    "state": payload,
                }
            )
        )
        with pytest.raises(ReplayError):
            reopen(tmp_path)

    def test_attach_twice_is_an_error(self, tmp_path):
        _, manager, warehouse = build_live(tmp_path)
        with pytest.raises(RuntimeError, match="already attached"):
            manager.attach(warehouse)

    def test_checkpoint_requires_attachment(self, tmp_path):
        store = CheckpointStore(tmp_path / "state")
        manager = RecoveryManager(store)
        with pytest.raises(RuntimeError, match="attach"):
            manager.checkpoint()
