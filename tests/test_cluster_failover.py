"""Crash failover: degraded answering, WAL-replay rejoin, fault plans."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ShardCrashed, ShardedWarehouse, ShardUnavailable
from repro.engine import CountQuery, FrequencyQuery
from repro.faults.plan import CRASH, FaultPlan
from repro.streams import zipf_stream

SHARDS = 2
STREAM = zipf_stream(8_000, 200, 1.25, seed=55)
HOT = int(np.bincount(STREAM).argmax())


@pytest.fixture
def cluster(tmp_path):
    with ShardedWarehouse(
        SHARDS, str(tmp_path), seed=31, sync_every=1
    ) as warehouse:
        warehouse.create_relation("s", ["v"])
        warehouse.register_synopsis("s", "v", footprint_bound=300)
        warehouse.load_batch("s", {"v": STREAM})
        yield warehouse


class TestFailoverAndRejoin:
    def test_survivors_answer_degraded_then_victim_rejoins(self, cluster):
        survivor_rows = cluster.stats()[1]["rows"]["s"]
        cluster.kill_shard(0)
        degraded = cluster.answer(CountQuery("s", "v"))
        assert degraded.degraded
        assert degraded.shards_responding == SHARDS - 1
        assert degraded.shards_total == SHARDS
        # The surviving shard's partition is all the answer covers.
        assert float(degraded.answer) == pytest.approx(survivor_rows)

        assert cluster.wait_until_healthy(timeout=60.0)
        assert cluster.shard_states() == ["up"] * SHARDS
        full = cluster.answer(CountQuery("s", "v"))
        assert not full.degraded
        assert float(full.answer) == pytest.approx(len(STREAM))

    def test_rejoined_shard_recovered_from_its_wal(self, cluster):
        before = cluster.stats()[0]["rows"]["s"]
        cluster.kill_shard(0)
        cluster.answer(CountQuery("s", "v"))  # trigger lazy detection
        assert cluster.wait_until_healthy(timeout=60.0)
        hello = cluster.hello_of(0)
        assert hello is not None
        # The respawned worker replayed its WAL rather than starting
        # empty: its recovered sequence covers the pre-kill ingest.
        assert hello["sequence"] > 0
        assert cluster.stats()[0]["rows"]["s"] == before
        merged = cluster.merged_synopsis("s", "v")
        merged.check_invariants()
        assert merged.total_inserted == len(STREAM)

    def test_routed_query_to_dead_owner_degrades(self, cluster):
        owner = 0 if cluster.stats()[0]["rows"]["s"] else 1
        # Find a value owned by the shard we are about to kill.
        from repro.cluster import shard_of_value

        value = next(
            int(v)
            for v in np.unique(STREAM)
            if shard_of_value(int(v), SHARDS) == owner
        )
        cluster.kill_shard(owner)
        answer = cluster.answer(FrequencyQuery("s", "v", value=value))
        # The owner is gone, so the routed path falls back to a
        # degraded scatter over the survivor -- which owns no rows
        # with this value.
        assert answer.degraded
        assert float(answer.answer) == 0.0

    def test_ingest_to_dead_owner_raises_until_rejoin(self, cluster):
        cluster.kill_shard(0)
        with pytest.raises((ShardCrashed, ShardUnavailable)):
            cluster.load_batch("s", {"v": STREAM})
        assert cluster.wait_until_healthy(timeout=60.0)
        assert cluster.load_batch("s", {"v": STREAM[:100]}) == 100


class TestNoAutoRestart:
    def test_dead_shard_stays_down(self, tmp_path):
        with ShardedWarehouse(
            SHARDS,
            str(tmp_path),
            seed=32,
            sync_every=1,
            auto_restart=False,
        ) as warehouse:
            warehouse.create_relation("s", ["v"])
            warehouse.register_synopsis("s", "v", footprint_bound=300)
            warehouse.load_batch("s", {"v": STREAM})
            warehouse.kill_shard(1)
            degraded = warehouse.answer(CountQuery("s", "v"))
            assert degraded.degraded
            assert not warehouse.wait_until_healthy(timeout=0.5)
            assert "down" in warehouse.shard_states()
            again = warehouse.answer(CountQuery("s", "v"))
            assert again.degraded


class TestFaultPlans:
    def test_boot_crash_fails_start(self, tmp_path):
        # Operation index 0 is the first filesystem touch of recovery,
        # so the worker dies before saying hello.
        warehouse = ShardedWarehouse(
            SHARDS,
            str(tmp_path),
            seed=33,
            fault_plans={0: FaultPlan.single(0, CRASH)},
            auto_restart=False,
        )
        try:
            with pytest.raises(ShardUnavailable):
                warehouse.start()
        finally:
            warehouse.close()

    def test_planned_crash_mid_ingest_then_recovery(self, tmp_path):
        """A deterministic fault plan kills shard 0 partway through
        the ingest sequence; the coordinator detects the crash on the
        failing batch, restarts the worker without the plan (first
        incarnation only), and the fleet serves at full fidelity."""
        with ShardedWarehouse(
            SHARDS,
            str(tmp_path),
            seed=34,
            sync_every=1,
            fault_plans={0: FaultPlan.single(30, CRASH)},
        ) as warehouse:
            warehouse.create_relation("s", ["v"])
            warehouse.register_synopsis("s", "v", footprint_bound=300)
            crashed = False
            for start in range(0, 4_000, 200):
                try:
                    warehouse.load_batch(
                        "s", {"v": STREAM[start : start + 200]}
                    )
                except (ShardCrashed, ShardUnavailable):
                    crashed = True
                    break
            assert crashed, "the planned crash never fired"
            assert warehouse.wait_until_healthy(timeout=60.0)
            assert warehouse.shard_states() == ["up"] * SHARDS
            answer = warehouse.answer(CountQuery("s", "v"))
            assert not answer.degraded
            # Whatever the torn batch lost, both partitions answer.
            assert warehouse.load_batch("s", {"v": STREAM[:100]}) == 100
