"""The fault injector itself: determinism, op counting, every kind.

The crash battery is only as trustworthy as the injector: the same
plan must produce byte-identical wreckage, the operation index must be
a pure function of the workload, and each fault kind must do exactly
what its name says.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    BIT_FLIP,
    CRASH,
    CRASH_KINDS,
    FAULT_KINDS,
    FSYNC_CRASH,
    FSYNC_ERROR,
    TORN_WRITE,
    TRANSIENT_KINDS,
    WRITE_ERROR,
    Fault,
    FaultPlan,
    FaultyFilesystem,
    SimulatedCrash,
)
from repro.persist import LocalFileSystem, TransientIOError
from repro.randkit.rng import ReproRandom


def run_workload(filesystem, root):
    """A tiny fixed workload touching every faultable op type."""
    filesystem.makedirs(root)
    path = root / "data.bin"
    handle = filesystem.open(path, "wb")
    try:
        handle.write(b"hello durable world")
        handle.write(b" -- second record")
        filesystem.fsync(handle)
    finally:
        handle.close()
    temporary = root / "data.tmp"
    other = filesystem.open(temporary, "wb")
    try:
        other.write(b"replacement")
        filesystem.fsync(other)
    finally:
        other.close()
    filesystem.replace(temporary, path)
    filesystem.sync_directory(root)
    return filesystem.read_bytes(path)


class TestPlan:
    def test_kind_taxonomy_is_partitioned(self):
        assert CRASH_KINDS | TRANSIENT_KINDS | {BIT_FLIP} == FAULT_KINDS
        assert CRASH_KINDS & TRANSIENT_KINDS == frozenset()

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError, match="one fault per"):
            FaultPlan(faults=(Fault(3, CRASH), Fault(3, BIT_FLIP)))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault(0, "meteor-strike")

    def test_random_plan_is_deterministic(self):
        plans = [
            FaultPlan.random(ReproRandom(42), 100) for _ in range(2)
        ]
        assert plans[0] == plans[1]
        fault = plans[0].faults[0]
        assert 0 <= fault.operation_index < 100
        assert fault.kind in CRASH_KINDS


class TestOperationCounting:
    def test_healthy_run_counts_faultable_ops(self, tmp_path):
        fs = FaultyFilesystem(LocalFileSystem(), FaultPlan.none())
        run_workload(fs, tmp_path)
        # 3 writes + 2 fsyncs + 1 replace + 1 directory sync; reads,
        # opens, and makedirs are not faultable.
        assert fs.operations == 7

    def test_count_is_workload_deterministic(self, tmp_path):
        counts = []
        for run in range(2):
            fs = FaultyFilesystem(LocalFileSystem(), FaultPlan.none())
            run_workload(fs, tmp_path / f"run{run}")
            counts.append(fs.operations)
        assert counts[0] == counts[1]


class TestEachKind:
    def sweep(self, tmp_path, kind):
        """Inject ``kind`` at every op index; return outcomes."""
        healthy = FaultyFilesystem(LocalFileSystem(), FaultPlan.none())
        run_workload(healthy, tmp_path / "healthy")
        outcomes = []
        for index in range(healthy.operations):
            fs = FaultyFilesystem(
                LocalFileSystem(), FaultPlan.single(index, kind, seed=index)
            )
            try:
                run_workload(fs, tmp_path / f"{kind}-{index}")
                outcomes.append("ok")
            except SimulatedCrash as crash:
                assert crash.operation_index == index
                assert crash.kind == kind
                outcomes.append("crash")
            except TransientIOError:
                outcomes.append("transient")
        return outcomes

    def test_crash_kills_every_index(self, tmp_path):
        assert set(self.sweep(tmp_path, CRASH)) == {"crash"}

    def test_fsync_crash_kills_every_index(self, tmp_path):
        assert set(self.sweep(tmp_path, FSYNC_CRASH)) == {"crash"}

    def test_torn_write_kills_every_index(self, tmp_path):
        assert set(self.sweep(tmp_path, TORN_WRITE)) == {"crash"}

    def test_transient_kinds_surface_as_transient(self, tmp_path):
        # The raw workload has no retry layer, so the error surfaces.
        for kind in (WRITE_ERROR, FSYNC_ERROR):
            assert set(self.sweep(tmp_path, kind)) == {"transient"}

    def test_bit_flip_corrupts_silently(self, tmp_path):
        clean = run_workload(
            FaultyFilesystem(LocalFileSystem(), FaultPlan.none()),
            tmp_path / "clean",
        )
        # Index 0 is the first write of data.bin; its flipped byte is
        # replaced later, so flip index 1 (the replacement's write
        # lands in the surviving file). Op order: w,w,fsync,w,fsync,...
        flipped = run_workload(
            FaultyFilesystem(
                LocalFileSystem(), FaultPlan.single(3, BIT_FLIP, seed=9)
            ),
            tmp_path / "flipped",
        )
        assert flipped != clean
        assert len(flipped) == len(clean)
        assert sum(a != b for a, b in zip(clean, flipped)) == 1

    def test_torn_write_leaves_a_strict_prefix(self, tmp_path):
        root = tmp_path / "torn"
        fs = FaultyFilesystem(
            LocalFileSystem(), FaultPlan.single(0, TORN_WRITE, seed=3)
        )
        fs.makedirs(root)
        handle = fs.open(root / "f.bin", "wb")
        payload = b"0123456789abcdef"
        with pytest.raises(SimulatedCrash):
            handle.write(payload)
        handle.close()
        survived = (root / "f.bin").read_bytes()
        assert len(survived) < len(payload)
        assert payload.startswith(survived)

    def test_same_plan_same_wreckage(self, tmp_path):
        contents = []
        for run in range(2):
            root = tmp_path / f"det{run}"
            fs = FaultyFilesystem(
                LocalFileSystem(), FaultPlan.single(0, TORN_WRITE, seed=77)
            )
            fs.makedirs(root)
            handle = fs.open(root / "f.bin", "wb")
            with pytest.raises(SimulatedCrash):
                handle.write(b"0123456789abcdef")
            handle.close()
            contents.append((root / "f.bin").read_bytes())
        assert contents[0] == contents[1]

    def test_crash_before_replace_preserves_target(self, tmp_path):
        fs = FaultyFilesystem(LocalFileSystem(), FaultPlan.none())
        root = tmp_path / "r"
        fs.makedirs(root)
        target = root / "t.bin"
        target.write_bytes(b"old")
        temporary = root / "t.tmp"
        temporary.write_bytes(b"new")
        crashing = FaultyFilesystem(
            LocalFileSystem(), FaultPlan.single(0, CRASH)
        )
        with pytest.raises(SimulatedCrash):
            crashing.replace(temporary, target)
        assert target.read_bytes() == b"old"
        assert temporary.exists()
