"""Unit tests for the paper's closed-form analysis (Theorems 3-8)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.randkit import numpy_generator
from repro.stats.theory import (
    compensation_constant,
    concise_gain_expected,
    concise_gain_via_moments,
    counting_count_error_bound,
    counting_false_negative_bound,
    counting_miss_quantile,
    counting_inclusion_probability,
    counting_report_cutoff,
    counting_report_probability,
    expected_distinct_in_sample,
    exponential_sample_size_bound,
    hotlist_false_positive_bound,
    hotlist_report_probability,
)


class TestTheorem3:
    def test_bound_value(self):
        assert exponential_sample_size_bound(2.0, 10) == pytest.approx(
            2.0**5
        )

    def test_bound_grows_with_footprint(self):
        assert exponential_sample_size_bound(
            1.5, 100
        ) > exponential_sample_size_bound(1.5, 50)

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_sample_size_bound(1.0, 10)
        with pytest.raises(ValueError):
            exponential_sample_size_bound(2.0, 1)


class TestTheorem4:
    def test_expected_distinct_single_value(self):
        # Only one value: any sample has exactly one distinct value.
        assert expected_distinct_in_sample([100], 10) == pytest.approx(1.0)

    def test_expected_distinct_uniform_all(self):
        # m=1 always yields exactly one distinct value.
        assert expected_distinct_in_sample([5, 5, 5], 1) == pytest.approx(
            1.0
        )

    def test_expected_distinct_empty(self):
        assert expected_distinct_in_sample([], 10) == 0.0

    def test_expected_distinct_bounded_by_support_and_m(self):
        frequencies = [10, 20, 30, 40]
        for m in (1, 3, 10, 100):
            expected = expected_distinct_in_sample(frequencies, m)
            assert expected <= min(len(frequencies), m) + 1e-9

    def test_gain_zero_for_distinct_heavy_small_sample(self):
        # With all frequencies equal to 1 (n values, all distinct),
        # a small sample rarely repeats: gain ~ m(m-1)/(2n).
        n = 10_000
        gain = concise_gain_expected([1] * n, 10)
        assert gain == pytest.approx(10 * 9 / (2 * n), rel=0.05)

    def test_gain_max_for_single_value(self):
        # One value: a concise sample of m points stores 1 pair.
        assert concise_gain_expected([50], 20) == pytest.approx(19.0)

    def test_moment_form_matches_direct_form(self):
        """Theorem 4's alternating-moment identity."""
        frequencies = [7, 3, 2, 1, 1]
        for m in (2, 3, 5, 8, 12):
            direct = concise_gain_expected(frequencies, m)
            via_moments = concise_gain_via_moments(frequencies, m)
            assert via_moments == pytest.approx(direct, rel=1e-9, abs=1e-9)

    def test_moment_form_skewed(self):
        frequencies = [100, 1, 1]
        direct = concise_gain_expected(frequencies, 6)
        via_moments = concise_gain_via_moments(frequencies, 6)
        assert via_moments == pytest.approx(direct, rel=1e-9)

    def test_gain_monte_carlo(self):
        """The closed form matches simulation of with-replacement
        sampling."""
        rng = numpy_generator(11)
        frequencies = [40, 30, 20, 10]
        population = np.repeat(np.arange(4), frequencies)
        m = 8
        trials = 4000
        distinct_counts = [
            len(np.unique(rng.choice(population, size=m, replace=True)))
            for _ in range(trials)
        ]
        simulated_gain = m - float(np.mean(distinct_counts))
        assert simulated_gain == pytest.approx(
            concise_gain_expected(frequencies, m), abs=0.1
        )

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            expected_distinct_in_sample([3, 0], 5)

    def test_rejects_negative_sample_size(self):
        with pytest.raises(ValueError):
            expected_distinct_in_sample([3], -1)


class TestCompensation:
    def test_value_at_large_threshold(self):
        # c-hat ~ 0.418 tau - 1.
        tau = 1000.0
        expected = tau * (math.e - 2) / (math.e - 1) - 1
        assert compensation_constant(tau) == pytest.approx(expected)
        assert compensation_constant(tau) == pytest.approx(
            0.418 * tau - 1, rel=0.01
        )

    def test_cutoff_complements_compensation(self):
        tau = 500.0
        assert counting_report_cutoff(tau) == pytest.approx(
            tau - compensation_constant(tau)
        )
        # ~ 0.582 tau + 1.
        assert counting_report_cutoff(tau) == pytest.approx(
            0.582 * tau + 1, rel=0.01
        )

    def test_rejects_threshold_below_one(self):
        with pytest.raises(ValueError):
            compensation_constant(0.5)


class TestTheorem6:
    def test_inclusion_probability_monotone_in_frequency(self):
        tau = 100.0
        p_small = counting_inclusion_probability(10, tau)
        p_large = counting_inclusion_probability(1000, tau)
        assert p_small < p_large

    def test_inclusion_probability_formula(self):
        assert counting_inclusion_probability(3, 2.0) == pytest.approx(
            1 - 0.5**3
        )

    def test_inclusion_zero_frequency(self):
        assert counting_inclusion_probability(0, 10.0) == 0.0

    def test_inclusion_expected_at_threshold(self):
        # Theorem 6(i): f_v = tau => included "in expectation";
        # the probability is 1 - (1-1/tau)^tau -> 1 - 1/e.
        probability = counting_inclusion_probability(10_000, 10_000.0)
        assert probability == pytest.approx(1 - 1 / math.e, abs=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            counting_inclusion_probability(-1, 10.0)
        with pytest.raises(ValueError):
            counting_inclusion_probability(1, 0.5)


class TestTheorem8:
    def test_below_cutoff_never_reported(self):
        tau = 100.0
        low_frequency = int(0.5 * tau)
        assert counting_report_probability(low_frequency, tau) == 0.0

    def test_report_probability_increases_with_frequency(self):
        tau = 100.0
        probabilities = [
            counting_report_probability(f, tau)
            for f in (70, 100, 200, 500)
        ]
        assert probabilities == sorted(probabilities)
        assert probabilities[-1] > 0.95

    def test_false_negative_bound_formula(self):
        beta = 2.0
        coefficient = 1 - (math.e - 2) / (math.e - 1)
        assert counting_false_negative_bound(beta) == pytest.approx(
            math.exp(-(beta - coefficient))
        )

    def test_false_negative_bound_dominates_exact(self):
        """Theorem 8(ii): the bound upper-bounds the exact failure
        probability for f_v = beta * tau (up to the integer rounding
        of the report cut-off, worth at most two tails factors)."""
        tau = 200.0
        for beta in (1.5, 2.0, 4.0):
            exact_failure = 1.0 - counting_report_probability(
                int(beta * tau), tau
            )
            rounding_slack = (1.0 - 1.0 / tau) ** -2
            assert exact_failure <= (
                counting_false_negative_bound(beta) * rounding_slack
            )

    def test_count_error_bound(self):
        assert counting_count_error_bound(1.0) == pytest.approx(
            math.exp(-(1.0 + (math.e - 2) / (math.e - 1)))
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            counting_false_negative_bound(1.0)
        with pytest.raises(ValueError):
            counting_count_error_bound(0.0)


class TestTheorem7:
    def test_report_probability_example(self):
        # Paper's example: delta = 1/2 gives 1 - e^{-theta/4}.
        theta = 3.0
        assert hotlist_report_probability(theta, 0.5) == pytest.approx(
            1 - math.exp(-theta / 4)
        )

    def test_false_positive_example(self):
        # Paper's example: delta = 1 is approached as delta -> 1 with
        # bound e^{-theta/6}.
        theta = 3.0
        assert hotlist_false_positive_bound(
            theta, 1.0
        ) == pytest.approx(math.exp(-theta / 6))

    def test_more_confidence_with_larger_theta(self):
        assert hotlist_report_probability(
            6.0, 0.5
        ) > hotlist_report_probability(3.0, 0.5)
        assert hotlist_false_positive_bound(
            6.0, 0.5
        ) < hotlist_false_positive_bound(3.0, 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            hotlist_report_probability(3.0, 0.0)
        with pytest.raises(ValueError):
            hotlist_report_probability(3.0, 1.0)
        with pytest.raises(ValueError):
            hotlist_report_probability(0.0, 0.5)
        with pytest.raises(ValueError):
            hotlist_false_positive_bound(3.0, 0.0)
        with pytest.raises(ValueError):
            hotlist_false_positive_bound(-1.0, 0.5)


class TestCountingMissQuantile:
    def test_threshold_at_most_one_never_misses(self):
        assert counting_miss_quantile(1) == 0.0

    def test_geometric_quantile_value(self):
        # Misses before admission ~ Geometric(1/2) at threshold 2:
        # P(X >= t) = (1/2)^t <= 0.05 first at t = 5.
        assert counting_miss_quantile(2, confidence=0.95) == 5.0

    def test_quantile_bounds_the_tail(self):
        for threshold in (2, 10, 100):
            for confidence in (0.5, 0.9, 0.99):
                t = counting_miss_quantile(threshold, confidence)
                p_admit = 1.0 / threshold
                # P(misses < t) >= confidence, and t is minimal.
                assert 1 - (1 - p_admit) ** t >= confidence - 1e-12
                if t >= 1:
                    assert 1 - (1 - p_admit) ** (t - 1) < confidence

    def test_grows_with_threshold_and_confidence(self):
        assert counting_miss_quantile(100) > counting_miss_quantile(10)
        assert counting_miss_quantile(10, 0.99) > counting_miss_quantile(
            10, 0.9
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            counting_miss_quantile(0)
        with pytest.raises(ValueError):
            counting_miss_quantile(10, confidence=1.0)
