"""Unit tests for counting-to-concise conversion (paper Section 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.concise import ConciseSample
from repro.core.convert import counting_to_concise
from repro.core.counting import CountingSample
from repro.streams import zipf_stream


def _build_counting(seed: int, footprint: int = 64) -> CountingSample:
    sample = CountingSample(footprint, seed=seed)
    sample.insert_array(zipf_stream(30_000, 2000, 1.2, seed=seed + 1))
    return sample


class TestConversion:
    def test_returns_concise_sample(self):
        counting = _build_counting(1)
        concise = counting_to_concise(counting, seed=2)
        assert isinstance(concise, ConciseSample)
        concise.check_invariants()

    def test_source_untouched(self):
        counting = _build_counting(3)
        before = counting.as_dict()
        counting_to_concise(counting, seed=4)
        assert counting.as_dict() == before

    def test_values_subset_and_counts_bounded(self):
        counting = _build_counting(5)
        concise = counting_to_concise(counting, seed=6)
        source = counting.as_dict()
        for value, count in concise.pairs():
            assert value in source
            assert 1 <= count <= source[value]

    def test_every_source_value_survives_with_count_at_least_one(self):
        """The admission point itself is always kept."""
        counting = _build_counting(7)
        concise = counting_to_concise(counting, seed=8)
        assert set(concise.as_dict()) == set(counting.as_dict())

    def test_footprint_never_grows(self):
        for trial in range(10):
            counting = _build_counting(100 + trial)
            concise = counting_to_concise(counting, seed=200 + trial)
            assert concise.footprint <= counting.footprint

    def test_threshold_and_size_carried_over(self):
        counting = _build_counting(9)
        concise = counting_to_concise(counting, seed=10)
        assert concise.threshold == counting.threshold
        assert concise.total_inserted == counting.total_inserted

    def test_threshold_one_is_identity(self):
        counting = CountingSample(1000, seed=11)
        counting.insert_array(zipf_stream(5000, 100, 1.0, seed=12))
        assert counting.threshold == 1.0
        concise = counting_to_concise(counting, seed=13)
        assert concise.as_dict() == counting.as_dict()

    def test_deterministic(self):
        counting = _build_counting(14)
        a = counting_to_concise(counting, seed=15)
        b = counting_to_concise(counting, seed=15)
        assert a.as_dict() == b.as_dict()

    def test_resampled_counts_match_binomial_mean(self):
        """E[concise count] = 1 + (c - 1)/tau for a pair of count c."""
        counting = CountingSample(10, seed=16)
        counting._counts = {1: 500}
        counting._footprint = 2
        counting._threshold = 10.0
        draws = [
            counting_to_concise(counting, seed=1000 + trial).count_of(1)
            for trial in range(300)
        ]
        expected = 1 + (500 - 1) / 10.0
        assert float(np.mean(draws)) == pytest.approx(expected, rel=0.1)
