"""Statistical equivalence of cluster-merged synopses (Theorems 2/5).

A :class:`~repro.cluster.ShardedWarehouse` splits the stream by value
hash across worker processes, each maintaining its own synopsis with
independent ``spawn_seeds``-derived coins, and merges the per-shard
states on demand.  The merge cannot be bitwise-identical to a
single-process build -- the coins differ -- but the paper's guarantee
is distributional: at equal *total* footprint (the merged bound
defaults to the sum of the shard bounds), the cluster-merged synopsis
must follow the same law as a single-process oracle over the same
stream.  These tests compare the two over ensembles of independent
registrations with KS / chi-square machinery, in the style of
``tests/test_batch_equivalence``.

The second half does the same across a crash: a worker is killed
mid-stream, the coordinator answers degraded from the survivor,
restarts the victim (WAL replay via ``RecoveryManager``), and the
rejoined fleet finishes the stream -- the recovered merge must remain
indistinguishable from the oracle, which is the paper's footnote-2
recovery contract lifted to the cluster.

Every trial is deterministic (all seeds derive from the coordinator's
master seed), so these cannot flake; the significance level only
calibrates the evidence for these seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

scipy_stats = pytest.importorskip("scipy.stats")

from repro.cluster import ShardedWarehouse
from repro.core import ConciseSample, CountingSample
from repro.engine import CountQuery
from repro.streams import zipf_stream

ALPHA = 1e-4  # reject only on overwhelming evidence
SHARDS = 2
BOUND = 60  # per-shard footprint bound
TOTAL_BOUND = SHARDS * BOUND  # the oracle's (and merged) bound
TRIALS = 50
RECOVERY_TRIALS = 24
STREAM = zipf_stream(4_000, 400, 1.25, seed=424242)
HOT_VALUE = int(np.bincount(STREAM).argmax())
MID_VALUE = int(np.argsort(np.bincount(STREAM))[-20])  # 20th-hottest
HALF = len(STREAM) // 2


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cluster-stats")
    with ShardedWarehouse(
        SHARDS, str(directory), seed=4242, sync_every=64
    ) as warehouse:
        yield warehouse


def _register_and_load(cluster, name, kind):
    cluster.create_relation(name, ["v"])
    cluster.register_synopsis(
        name, "v", kind=kind, footprint_bound=BOUND
    )
    cluster.load_batch(name, {"v": STREAM})
    return cluster.merged_synopsis(name, "v")


@pytest.fixture(scope="module")
def concise_ensemble(cluster):
    """(size, hot, mid-present) per trial, cluster vs oracle."""
    merged_rows, oracle_rows = [], []
    for trial in range(TRIALS):
        merged = _register_and_load(cluster, f"c{trial}", "concise-sample")
        merged.check_invariants()
        assert merged.total_inserted == len(STREAM)
        merged_rows.append(
            (
                merged.sample_size,
                merged.count_of(HOT_VALUE),
                int(MID_VALUE in merged),
            )
        )
        oracle = ConciseSample(TOTAL_BOUND, seed=8_000 + trial)
        oracle.insert_array(STREAM)
        oracle_rows.append(
            (
                oracle.sample_size,
                oracle.count_of(HOT_VALUE),
                int(MID_VALUE in oracle),
            )
        )
    return np.asarray(merged_rows), np.asarray(oracle_rows)


class TestConciseClusterMatchesOracle:
    def test_sample_size_distribution(self, concise_ensemble):
        merged, oracle = concise_ensemble
        result = scipy_stats.ks_2samp(merged[:, 0], oracle[:, 0])
        assert result.pvalue > ALPHA, (
            "cluster-merged sample sizes diverge from the "
            f"single-process oracle (KS={result.statistic:.3f})"
        )

    def test_hot_value_count_distribution(self, concise_ensemble):
        merged, oracle = concise_ensemble
        result = scipy_stats.ks_2samp(merged[:, 1], oracle[:, 1])
        assert result.pvalue > ALPHA, (
            "cluster-merged hot-value counts diverge from the oracle "
            f"(KS={result.statistic:.3f})"
        )

    def test_mid_value_inclusion_rate(self, concise_ensemble):
        """Chi-square: a mid-frequency value is present in the merged
        sample as often as in the oracle."""
        merged, oracle = concise_ensemble
        table = np.array(
            [
                [merged[:, 2].sum(), TRIALS - merged[:, 2].sum()],
                [oracle[:, 2].sum(), TRIALS - oracle[:, 2].sum()],
            ]
        )
        result = scipy_stats.chi2_contingency(table + 1)  # smoothed
        assert result.pvalue > ALPHA


@pytest.fixture(scope="module")
def counting_ensemble(cluster):
    merged_rows, oracle_rows = [], []
    for trial in range(TRIALS):
        merged = _register_and_load(
            cluster, f"k{trial}", "counting-sample"
        )
        merged.check_invariants()
        assert merged.total_inserted == len(STREAM)  # exact ledger
        merged_rows.append(
            (merged.total_count, merged.count_of(HOT_VALUE))
        )
        oracle = CountingSample(TOTAL_BOUND, seed=18_000 + trial)
        oracle.insert_array(STREAM)
        oracle_rows.append(
            (oracle.total_count, oracle.count_of(HOT_VALUE))
        )
    return np.asarray(merged_rows), np.asarray(oracle_rows)


class TestCountingClusterMatchesOracle:
    def test_total_count_distribution(self, counting_ensemble):
        merged, oracle = counting_ensemble
        result = scipy_stats.ks_2samp(merged[:, 0], oracle[:, 0])
        assert result.pvalue > ALPHA, (
            "cluster-merged total counts diverge from the oracle "
            f"(KS={result.statistic:.3f})"
        )

    def test_hot_value_counts_concentrate(self, counting_ensemble):
        """Hot values are admitted almost immediately on every shard,
        so their merged tail counts concentrate tightly around the
        oracle's (see repro.core.merge's admission-delay caveat)."""
        merged, oracle = counting_ensemble
        oracle_mean = oracle[:, 1].mean()
        assert abs(merged[:, 1].mean() - oracle_mean) < 0.05 * max(
            1.0, oracle_mean
        )


@pytest.fixture(scope="module")
def recovery_ensemble(cluster):
    """Kill a worker mid-stream each trial; compare the rejoined merge.

    The victim alternates, the survivor answers a degraded count while
    the coordinator respawns it, and the rejoined fleet (the victim's
    state rebuilt by WAL replay with a fresh incarnation seed) ingests
    the second half.  A checkpoint after every trial keeps each
    replay bounded to one trial's operations.
    """
    merged_rows, oracle_rows = [], []
    for trial in range(RECOVERY_TRIALS):
        name = f"r{trial}"
        cluster.create_relation(name, ["v"])
        cluster.register_synopsis(
            name, "v", kind="concise-sample", footprint_bound=BOUND
        )
        cluster.load_batch(name, {"v": STREAM[:HALF]})
        cluster.kill_shard(trial % SHARDS)
        degraded = cluster.answer(CountQuery(name, "v"))
        assert degraded.shards_responding == SHARDS - 1
        assert degraded.shards_total == SHARDS
        assert cluster.wait_until_healthy(timeout=60.0)
        cluster.load_batch(name, {"v": STREAM[HALF:]})
        merged = cluster.merged_synopsis(name, "v")
        merged.check_invariants()
        assert merged.total_inserted == len(STREAM)
        merged_rows.append(
            (
                merged.sample_size,
                merged.count_of(HOT_VALUE),
                int(MID_VALUE in merged),
            )
        )
        oracle = ConciseSample(TOTAL_BOUND, seed=28_000 + trial)
        oracle.insert_array(STREAM)
        oracle_rows.append(
            (
                oracle.sample_size,
                oracle.count_of(HOT_VALUE),
                int(MID_VALUE in oracle),
            )
        )
        cluster.checkpoint()
    return np.asarray(merged_rows), np.asarray(oracle_rows)


class TestRecoveredClusterMatchesOracle:
    def test_sample_size_distribution(self, recovery_ensemble):
        merged, oracle = recovery_ensemble
        result = scipy_stats.ks_2samp(merged[:, 0], oracle[:, 0])
        assert result.pvalue > ALPHA, (
            "post-failover merged sample sizes diverge from the "
            f"oracle (KS={result.statistic:.3f})"
        )

    def test_hot_value_count_distribution(self, recovery_ensemble):
        merged, oracle = recovery_ensemble
        result = scipy_stats.ks_2samp(merged[:, 1], oracle[:, 1])
        assert result.pvalue > ALPHA, (
            "post-failover hot-value counts diverge from the oracle "
            f"(KS={result.statistic:.3f})"
        )

    def test_mid_value_inclusion_rate(self, recovery_ensemble):
        merged, oracle = recovery_ensemble
        trials = len(merged)
        table = np.array(
            [
                [merged[:, 2].sum(), trials - merged[:, 2].sum()],
                [oracle[:, 2].sum(), trials - oracle[:, 2].sum()],
            ]
        )
        result = scipy_stats.chi2_contingency(table + 1)  # smoothed
        assert result.pvalue > ALPHA
