"""Unit tests for the operation log and snapshot+log recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CountingSample
from repro.engine import DataWarehouse
from repro.engine.oplog import LoggedBatch, OperationLog
from repro.engine.snapshots import restore_synopsis, snapshot_synopsis
from repro.streams import zipf_stream


class TestLogging:
    def test_observe_records_in_order(self):
        log = OperationLog()
        log.observe("r", (1,), True)
        log.observe("r", (2,), False)
        entries = list(log.entries_since(0))
        assert [e.sequence for e in entries] == [0, 1]
        assert entries[0].row == (1,)
        assert entries[1].is_insert is False

    def test_warehouse_integration(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        log = OperationLog()
        warehouse.add_observer(log.observe)
        warehouse.insert("r", {"a": 5})
        warehouse.insert("r", {"a": 6})
        warehouse.delete("r", {"a": 5})
        assert len(log) == 3
        assert log.next_sequence == 3

    def test_entries_since_midpoint(self):
        log = OperationLog()
        for i in range(10):
            log.observe("r", (i,), True)
        tail = list(log.entries_since(7))
        assert [e.row[0] for e in tail] == [7, 8, 9]

    def test_entries_since_rejects_negative(self):
        with pytest.raises(ValueError):
            OperationLog().entries_since(-1)


class TestJsonl:
    def test_roundtrip(self):
        log = OperationLog()
        log.observe("r", (1, 2), True)
        log.observe("s", (3,), False)
        restored = OperationLog.load_jsonl(log.dump_jsonl())
        assert list(restored.entries_since(0)) == list(
            log.entries_since(0)
        )

    def test_empty(self):
        assert len(OperationLog.load_jsonl("")) == 0


class TestTruncation:
    def test_truncate_preserves_sequences(self):
        log = OperationLog()
        for i in range(10):
            log.observe("r", (i,), True)
        dropped = log.truncate_before(6)
        assert dropped == 6
        assert [e.sequence for e in log.entries_since(0)] == [6, 7, 8, 9]
        assert log.next_sequence == 10
        # New entries continue the sequence.
        log.observe("r", (99,), True)
        assert list(log.entries_since(10))[0].sequence == 10

    def test_truncate_everything(self):
        log = OperationLog()
        log.observe("r", (1,), True)
        assert log.truncate_before(5) == 1
        assert len(log) == 0

    def test_entries_since_after_truncation(self):
        log = OperationLog()
        for i in range(6):
            log.observe("r", (i,), True)
        log.truncate_before(3)
        assert [e.row[0] for e in log.entries_since(4)] == [4, 5]


class TestRecovery:
    def test_snapshot_plus_replay_equals_continuous(self):
        """Recovering a counting sample from snapshot + log suffix must
        yield exactly the state of never having crashed (counting
        maintenance after the snapshot point is deterministic for
        values already in the sample; for full determinism we restore
        with the same seed and the same stream)."""
        stream = zipf_stream(8_000, 50, 1.0, seed=1)
        half = len(stream) // 2

        # Continuous run (footprint roomy: fully deterministic).
        continuous = CountingSample(200, seed=2)
        continuous.insert_array(stream)

        # Crash-recovery run: snapshot at the halfway point...
        crashed = CountingSample(200, seed=2)
        crashed.insert_array(stream[:half])
        log = OperationLog()
        for value in stream[half:].tolist():
            log.observe("r", (value,), True)
        checkpoint = snapshot_synopsis(crashed)
        checkpoint_sequence = 0

        # ... then restore and replay the suffix.
        recovered = restore_synopsis(checkpoint, seed=3)
        applied = log.replay_since(checkpoint_sequence, "r", 0, recovered)
        assert applied == len(stream) - half
        assert recovered.as_dict() == continuous.as_dict()

    def test_replay_filters_by_relation(self):
        log = OperationLog()
        log.observe("r", (1,), True)
        log.observe("other", (2,), True)
        log.observe("r", (3,), True)
        sample = CountingSample(100, seed=4)
        applied = log.replay_since(0, "r", 0, sample)
        assert applied == 2
        assert 1 in sample and 3 in sample and 2 not in sample

    def test_replay_applies_deletes(self):
        log = OperationLog()
        log.observe("r", (7,), True)
        log.observe("r", (7,), True)
        log.observe("r", (7,), False)
        sample = CountingSample(100, seed=5)
        log.replay_since(0, "r", 0, sample)
        assert sample.count_of(7) == 1


class TestSegments:
    def fill(self):
        log = OperationLog()
        log.observe("r", (1,), True)
        log.observe("r", (2,), True)
        log.observe("r", (1,), False)  # a delete event (Theorem 5)
        log.observe("s", (9,), True)
        return log

    def test_export_import_round_trips_with_deletes(self):
        source = self.fill()
        replica = OperationLog()
        assert replica.import_entries(source.export_segment(0, 4)) == 4
        entries = list(replica.entries_since(0))
        assert [e.sequence for e in entries] == [0, 1, 2, 3]
        assert entries[2].is_insert is False
        sample = CountingSample(100, seed=6)
        replica.replay_since(0, "r", 0, sample)
        assert sample.count_of(1) == 0 and sample.count_of(2) == 1

    def test_export_range_is_half_open(self):
        log = self.fill()
        lines = log.export_segment(1, 3).splitlines()
        assert len(lines) == 2
        replica = OperationLog()
        with pytest.raises(Exception):  # starts at 1, replica expects 0
            replica.import_entries(log.export_segment(1, 3))

    def test_export_empty_range(self):
        assert self.fill().export_segment(2, 2) == ""
        with pytest.raises(ValueError, match="start must not exceed"):
            self.fill().export_segment(3, 1)

    def test_import_gap_is_typed(self):
        from repro.persist.errors import LogGapError

        source = self.fill()
        replica = OperationLog()
        replica.import_entries(source.export_segment(0, 2))
        with pytest.raises(LogGapError) as excinfo:
            replica.import_entries(source.export_segment(3, 4))
        assert excinfo.value.expected == 2
        assert excinfo.value.found == 3
        # The failed import appended nothing: no partial splice.
        assert len(replica) == 2

    def test_import_continues_a_live_log(self):
        source = self.fill()
        replica = OperationLog()
        replica.observe("r", (1,), True)
        replica.observe("r", (2,), True)
        assert replica.import_entries(source.export_segment(2, 4)) == 2
        assert [e.sequence for e in replica.entries_since(0)] == [
            0,
            1,
            2,
            3,
        ]

    def test_import_skips_blank_lines(self):
        replica = OperationLog()
        payload = "\n" + self.fill().export_segment(0, 1) + "\n\n"
        assert replica.import_entries(payload) == 1


class TestBatchEntries:
    """Columnar batch entries: one log record per load_batch call."""

    def batch(self, values):
        return {"a": np.asarray(values, dtype=np.int64)}

    def test_observe_batch_occupies_a_range(self):
        log = OperationLog()
        log.observe("r", (0,), True)
        log.observe_batch("r", self.batch([1, 2, 3]))
        log.observe("r", (4,), True)
        entries = list(log.entries_since(0))
        assert [e.sequence for e in entries] == [0, 1, 4]
        assert isinstance(entries[1], LoggedBatch)
        assert entries[1].last_sequence == 3
        assert entries[1].length == 3
        assert log.next_sequence == 5

    def test_empty_batch_is_not_logged(self):
        log = OperationLog()
        log.observe_batch("r", self.batch([]))
        assert len(log) == 0
        assert log.next_sequence == 0

    def test_warehouse_load_batch_logs_one_entry(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a", "b"])
        log = OperationLog()
        warehouse.add_observer(log)
        warehouse.load_batch(
            "r",
            {
                "a": np.asarray([1, 2, 3]),
                "b": np.asarray([4, 5, 6]),
            },
        )
        warehouse.insert("r", {"a": 7, "b": 8})
        assert len(log) == 2
        assert log.next_sequence == 4
        entries = list(log.entries_since(0))
        assert isinstance(entries[0], LoggedBatch)
        assert entries[0].columns["b"].tolist() == [4, 5, 6]
        assert entries[1].sequence == 3

    def test_entries_since_keeps_straddling_batch_whole(self):
        log = OperationLog()
        log.observe_batch("r", self.batch([1, 2, 3, 4]))  # seq 0..3
        log.observe("r", (5,), True)  # seq 4
        tail = list(log.entries_since(2))
        assert len(tail) == 2
        assert isinstance(tail[0], LoggedBatch)
        assert tail[0].sequence == 0

    def test_replay_slices_straddling_batch(self):
        log = OperationLog()
        log.observe_batch("r", self.batch([10, 20, 30, 40]))
        sample = CountingSample(100, seed=7)
        applied = log.replay_since(2, "r", 0, sample)
        assert applied == 2
        assert 30 in sample and 40 in sample
        assert 10 not in sample and 20 not in sample

    def test_replay_batch_equals_per_row(self):
        values = zipf_stream(2_000, 30, 1.0, seed=11)
        batched = OperationLog()
        batched.observe_batch("r", {"a": values})
        per_row = OperationLog()
        for value in values.tolist():
            per_row.observe("r", (value,), True)

        from_batch = CountingSample(150, seed=12)
        from_rows = CountingSample(150, seed=12)
        assert batched.replay_since(0, "r", 0, from_batch) == len(values)
        assert per_row.replay_since(0, "r", 0, from_rows) == len(values)
        assert from_batch.as_dict() == from_rows.as_dict()

    def test_jsonl_round_trips_batches(self):
        log = OperationLog()
        log.observe("r", (1,), True)
        log.observe_batch(
            "r", {"a": np.asarray([2, 3]), "b": np.asarray([0.5, 1.5])}
        )
        restored = OperationLog.load_jsonl(log.dump_jsonl())
        assert restored.next_sequence == log.next_sequence == 3
        entries = list(restored.entries_since(0))
        assert isinstance(entries[1], LoggedBatch)
        assert entries[1].columns["a"].tolist() == [2, 3]
        assert entries[1].columns["b"].dtype == np.float64

    def test_export_import_batches_with_gap_check(self):
        from repro.persist.errors import LogGapError

        source = OperationLog()
        source.observe_batch("r", self.batch([1, 2]))  # seq 0..1
        source.observe("r", (3,), True)  # seq 2
        source.observe_batch("r", self.batch([4, 5]))  # seq 3..4

        replica = OperationLog()
        assert replica.import_entries(source.export_segment(0, 5)) == 3
        assert replica.next_sequence == 5

        # Importing past a missing batch is a typed gap.
        behind = OperationLog()
        behind.import_entries(source.export_segment(0, 2))
        with pytest.raises(LogGapError) as excinfo:
            behind.import_entries(source.export_segment(3, 5))
        assert excinfo.value.expected == 2
        assert excinfo.value.found == 3

    def test_truncate_keeps_overlapping_batch(self):
        log = OperationLog()
        log.observe("r", (0,), True)  # seq 0
        log.observe_batch("r", self.batch([1, 2, 3]))  # seq 1..3
        log.observe("r", (4,), True)  # seq 4
        dropped = log.truncate_before(2)
        assert dropped == 1  # only the per-row entry before the batch
        survivors = list(log.entries_since(0))
        assert isinstance(survivors[0], LoggedBatch)
        assert log.next_sequence == 5
