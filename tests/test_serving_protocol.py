"""Wire-codec triage for the serving protocol.

Mirrors ``test_crash_recovery``'s framing battery at the socket
boundary: every truncation cut point must read as *not yet arrived*
(clean reassembly once the rest shows up), every single-bit flip must
raise a typed protocol error, and neither may ever yield a silent
partial decode.  Plus oversized-frame and garbage-preamble rejection,
envelope validation, and bit-exact query/response codec round trips.
"""

from __future__ import annotations

import asyncio
import json
import math

import pytest

from repro.engine.queries import (
    AverageQuery,
    CountQuery,
    DistinctCountQuery,
    FrequencyQuery,
    HotListQuery,
    JoinSizeQuery,
    SelectivityQuery,
    SumQuery,
)
from repro.engine.responses import QueryResponse
from repro.estimators.intervals import ConfidenceInterval
from repro.estimators.selectivity import Predicate
from repro.hotlist.base import HotListAnswer, HotListEntry
from repro.persist.framing import HEADER_LENGTH, encode_frame
from repro.serving import codec
from repro.serving.protocol import (
    BAD_FRAME,
    BAD_REQUEST,
    FrameDecoder,
    ProtocolError,
    encode_error,
    encode_request,
    encode_result,
    parse_reply,
    parse_request,
)

SCENARIO_TIMEOUT = 30.0


def run_scenario(coro):
    """``asyncio.run`` with a hard deadline: a wedged server fails the
    test instead of hanging the shard."""
    return asyncio.run(asyncio.wait_for(coro, SCENARIO_TIMEOUT))


PAYLOADS = [
    {"id": 1, "op": "ping", "params": {}},
    {
        "id": 2,
        "op": "query",
        "params": {
            "query": {
                "type": "count",
                "relation": "sales",
                "attribute": "item",
                "predicate": {"low": 3, "high": 9},
            }
        },
    },
    {"id": "c3", "ok": True, "result": {"rows": 1000, "pi": 3.141592653589793}},
]
WIRE = b"".join(encode_frame(payload) for payload in PAYLOADS)


class TestTruncationSweep:
    def test_every_cut_point_reads_as_not_yet_arrived(self):
        """Truncation at any byte yields only the complete prefix of
        frames -- never an error, never an invented payload -- and the
        remainder completes the stream exactly."""
        for cut in range(len(WIRE) + 1):
            decoder = FrameDecoder()
            first = decoder.feed(WIRE[:cut])
            assert first == PAYLOADS[: len(first)], f"cut at {cut}"
            rest = decoder.feed(WIRE[cut:])
            assert first + rest == PAYLOADS, f"cut at {cut}"
            assert decoder.pending_bytes == 0

    def test_every_chunk_size_reassembles(self):
        """Byte-at-a-time through whole-buffer delivery all decode to
        the same frames in order."""
        for chunk in (1, 2, 3, 7, 26, 27, 28, 64, 255, len(WIRE)):
            decoder = FrameDecoder()
            received = []
            for start in range(0, len(WIRE), chunk):
                received.extend(
                    decoder.feed(WIRE[start : start + chunk])
                )
            assert received == PAYLOADS, f"chunk size {chunk}"


class TestBitFlipSweep:
    def test_every_single_bit_flip_is_rejected(self):
        """Flipping any one bit anywhere in the stream -- header,
        payload, terminator, any frame -- raises a typed bad-frame
        error; a silent partial decode never happens."""
        for byte_index in range(len(WIRE)):
            for bit in range(8):
                flipped = bytearray(WIRE)
                flipped[byte_index] ^= 1 << bit
                decoder = FrameDecoder()
                with pytest.raises(ProtocolError) as caught:
                    decoder.feed(bytes(flipped))
                assert caught.value.code == BAD_FRAME, (
                    f"flip at byte {byte_index} bit {bit} "
                    f"escaped with {caught.value.code}"
                )

    def test_flip_detected_even_when_drip_fed(self):
        """The same triage holds when the corrupt stream arrives one
        byte at a time: the error fires by end of stream and no frame
        after the flip point is ever surfaced."""
        flip_at = len(WIRE) // 2
        flipped = bytearray(WIRE)
        flipped[flip_at] ^= 0x10
        decoder = FrameDecoder()
        received = []
        with pytest.raises(ProtocolError):
            for index in range(len(flipped)):
                received.extend(
                    decoder.feed(bytes(flipped[index : index + 1]))
                )
        assert received == PAYLOADS[: len(received)]


class TestOversizedAndGarbage:
    def test_oversized_header_rejected_before_payload_arrives(self):
        big = encode_frame({"blob": "x" * 5000})
        decoder = FrameDecoder(max_frame_bytes=1024)
        with pytest.raises(ProtocolError) as caught:
            decoder.feed(big[:HEADER_LENGTH])
        assert caught.value.code == BAD_FRAME
        assert "exceeds" in caught.value.message

    def test_oversized_complete_frame_rejected_in_one_feed(self):
        """Even a frame that arrives whole in one read is refused --
        the limit is on the declared length, not on buffering luck."""
        big = encode_frame({"blob": "x" * 5000})
        decoder = FrameDecoder(max_frame_bytes=1024)
        with pytest.raises(ProtocolError):
            decoder.feed(big)

    def test_oversized_after_valid_frames_rejected(self):
        small = encode_frame({"ok": 1})
        big = encode_frame({"blob": "y" * 5000})
        decoder = FrameDecoder(max_frame_bytes=1024)
        with pytest.raises(ProtocolError):
            decoder.feed(small + big)

    def test_garbage_preamble_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError) as caught:
            decoder.feed(b"GET / HTTP/1.1\r\nHost: example\r\n\r\n")
        assert caught.value.code == BAD_FRAME

    def test_short_garbage_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(b"hello")

    def test_hex_shaped_garbage_waits_for_more(self):
        """Bytes that could still grow into a valid frame are torn,
        not corrupt -- the decoder must wait, matching the WAL triage."""
        decoder = FrameDecoder()
        assert decoder.feed(b"0000002a") == []
        assert decoder.pending_bytes == 8

    def test_hex_garbage_declaring_huge_length_rejected_early(self):
        """A 'torn' header whose length field already demands more
        than the limit is refused immediately -- the peer cannot make
        the server wait for gigabytes that will never checksum."""
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError) as caught:
            decoder.feed(b"deadbeef")
        assert caught.value.code == BAD_FRAME


class TestEnvelopes:
    def test_request_round_trip(self):
        frame = encode_request(7, "query", {"handle": "top"})
        (payload,) = FrameDecoder().feed(frame)
        assert parse_request(payload) == (7, "query", {"handle": "top"})

    def test_result_and_error_round_trip(self):
        ok_frame = encode_result("id-1", {"rows": 3})
        err_frame = encode_error("id-2", "server-busy", "queue full")
        decoder = FrameDecoder()
        ok_payload, err_payload = decoder.feed(ok_frame + err_frame)
        assert parse_reply(ok_payload) == ("id-1", {"rows": 3}, None)
        assert parse_reply(err_payload) == (
            "id-2",
            None,
            ("server-busy", "queue full"),
        )

    @pytest.mark.parametrize(
        "payload",
        [
            {"op": "ping", "params": {}},  # no id
            {"id": 1, "params": {}},  # no op
            {"id": 1, "op": ""},  # empty op
            {"id": 1, "op": "ping", "params": [1]},  # params not object
            [1, 2, 3],  # not an object at all
        ],
    )
    def test_malformed_requests_rejected(self, payload):
        with pytest.raises(ProtocolError) as caught:
            parse_request(payload)
        assert caught.value.code == BAD_REQUEST

    @pytest.mark.parametrize(
        "payload",
        [
            {"id": 1},  # no ok
            {"id": 1, "ok": True},  # ok without result
            {"id": 1, "ok": False, "error": {"code": "x"}},  # no message
            {"ok": True, "result": {}},  # no id
        ],
    )
    def test_malformed_replies_rejected(self, payload):
        with pytest.raises(ProtocolError):
            parse_reply(payload)


ALL_QUERIES = [
    HotListQuery("sales", "item", k=7),
    FrequencyQuery("sales", "item", value=42),
    CountQuery("sales", "item", Predicate(equals=3)),
    CountQuery("sales", "item", Predicate(low=1, high=9)),
    CountQuery("sales", "item", None),
    SumQuery("sales", "item", Predicate(low=2)),
    AverageQuery("sales", "item", Predicate(high=5)),
    SelectivityQuery("sales", "item", Predicate(equals=1)),
    DistinctCountQuery("sales", "item"),
    JoinSizeQuery("orders", "sku", "sales", "item"),
]


class TestQueryCodec:
    @pytest.mark.parametrize("query", ALL_QUERIES, ids=repr)
    def test_query_round_trip(self, query):
        encoded = codec.encode_query(query)
        json_round = json.loads(json.dumps(encoded, sort_keys=True))
        assert codec.decode_query(json_round) == query

    @pytest.mark.parametrize(
        "payload",
        [
            {"type": "nope", "relation": "r", "attribute": "a"},
            {"type": "count", "relation": "", "attribute": "a"},
            {"type": "count", "relation": "r"},
            {"type": "hotlist", "relation": "r", "attribute": "a", "k": 0},
            {"type": "frequency", "relation": "r", "attribute": "a", "value": "x"},
            {"type": "count", "relation": "r", "attribute": "a", "predicate": {}},
            "count",
        ],
    )
    def test_malformed_queries_rejected(self, payload):
        with pytest.raises(ValueError):
            codec.decode_query(payload)

    def test_response_round_trip_is_bit_exact(self):
        """Awkward floats survive the JSON wire bit-for-bit."""
        response = QueryResponse(
            answer=0.1 + 0.2,
            interval=ConfidenceInterval(
                low=1e-300, high=math.pi * 1e17, confidence=0.95
            ),
            method="sample",
            is_exact=False,
            exact_cost_estimate=12345,
        )
        over_wire = json.loads(
            json.dumps(codec.encode_response(response), sort_keys=True)
        )
        decoded = codec.decode_response(over_wire)
        assert decoded == response

    def test_hotlist_response_round_trip(self):
        answer = HotListAnswer(
            k=3,
            entries=(
                HotListEntry(5, 120.5),
                HotListEntry(2, 60.25),
                HotListEntry(9, 1.0),
            ),
        )
        response = QueryResponse(
            answer=answer,
            interval=None,
            method="CountingHotList",
            is_exact=False,
            exact_cost_estimate=2000,
        )
        over_wire = json.loads(json.dumps(codec.encode_response(response)))
        assert codec.decode_response(over_wire) == response


class TestServerWireTriage:
    """The server answers wire corruption with one typed error frame
    and a hangup -- asserted against a real listening socket."""

    def _serve(self):
        from repro.engine import ApproximateAnswerEngine, DataWarehouse
        from repro.serving import AQPServer

        warehouse = DataWarehouse()
        engine = ApproximateAnswerEngine(warehouse)
        return AQPServer(warehouse, engine, max_frame_bytes=1024)

    def test_corrupt_frame_gets_bad_frame_then_eof(self):
        async def scenario():
            server = self._serve()
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            frame = bytearray(encode_request(1, "ping", {}))
            frame[HEADER_LENGTH + 2] ^= 0x04
            writer.write(bytes(frame))
            await writer.drain()
            data = await reader.read()  # until EOF: server hung up
            writer.close()
            await writer.wait_closed()
            await server.shutdown()
            return FrameDecoder().feed(data)

        (reply,) = run_scenario(scenario())
        assert reply["ok"] is False
        assert reply["error"]["code"] == BAD_FRAME

    def test_oversized_frame_gets_bad_frame_then_eof(self):
        async def scenario():
            server = self._serve()
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            blob = "z" * 4096
            writer.write(
                encode_request(1, "ingest", {"columns": {"v": blob}})
            )
            await writer.drain()
            data = await reader.read()
            writer.close()
            await writer.wait_closed()
            await server.shutdown()
            return FrameDecoder().feed(data)

        (reply,) = run_scenario(scenario())
        assert reply["ok"] is False
        assert reply["error"]["code"] == BAD_FRAME

    def test_garbage_preamble_gets_bad_frame_then_eof(self):
        async def scenario():
            server = self._serve()
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"GET / HTTP/1.1\r\nHost: example\r\n\r\n")
            await writer.drain()
            data = await reader.read()
            writer.close()
            await writer.wait_closed()
            await server.shutdown()
            return FrameDecoder().feed(data)

        (reply,) = run_scenario(scenario())
        assert reply["ok"] is False
        assert reply["error"]["code"] == BAD_FRAME
