"""Unit tests for the experiment drivers and CLI."""

from __future__ import annotations

import pytest

from repro.experiments import (
    FULL_PROFILE,
    QUICK_PROFILE,
    Profile,
    active_profile,
    figure3_scenario,
    figure3_sweep,
    hotlist_scenario,
    print_series,
)
from repro.experiments.__main__ import main

TINY = Profile("tiny", 5_000, 2, 1.0)


class TestProfiles:
    def test_full_matches_paper(self):
        assert FULL_PROFILE.inserts == 500_000
        assert FULL_PROFILE.trials == 5
        assert FULL_PROFILE.zipf_step == 0.25

    def test_active_profile_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert active_profile() == QUICK_PROFILE
        monkeypatch.setenv("REPRO_FULL", "1")
        assert active_profile() == FULL_PROFILE


class TestFigure3Driver:
    def test_scenario_has_all_algorithms(self):
        point = figure3_scenario(64, 500, 1.0, TINY, master_seed=1)
        assert set(point) == {
            "traditional",
            "concise online",
            "concise offline",
        }
        assert point["traditional"].sample_size == 64
        assert point["concise online"].sample_size > 0

    def test_scenario_deterministic(self):
        a = figure3_scenario(64, 500, 1.0, TINY, master_seed=2)
        b = figure3_scenario(64, 500, 1.0, TINY, master_seed=2)
        assert a == b

    def test_sweep_shape(self):
        series = figure3_sweep(
            64, 500, [0.0, 1.0, 2.0], TINY, master_seed=3
        )
        assert len(series["concise online"]) == 3
        sizes = [s.sample_size for s in series["concise online"]]
        assert sizes[2] > sizes[0]


class TestHotlistDriver:
    def test_scenario_runs_all_four(self):
        runs, truth = hotlist_scenario(64, 200, 1.5, 10, TINY, 4)
        assert set(runs) == {
            "full histogram",
            "concise samples",
            "counting samples",
            "traditional samples",
        }
        assert runs["full histogram"].evaluation.recall == 1.0
        assert truth.total == TINY.inserts

    def test_head_error_populated(self):
        runs, _ = hotlist_scenario(64, 200, 1.5, 10, TINY, 5)
        for run in runs.values():
            assert 0.0 <= run.head_error <= 1.5


class TestPrintSeries:
    def test_prints_title_header_rows(self, capsys):
        print_series("demo", ["a", "b"], [[1, 2.5], ["x", 3]])
        output = capsys.readouterr().out
        assert "=== demo ===" in output
        assert "2.500" in output
        assert "x" in output


class TestCli:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_figure4_runs(self, capsys, monkeypatch):
        monkeypatch.setattr(
            "repro.experiments.__main__.QUICK_PROFILE", TINY
        )
        assert main(["figure4"]) == 0
        output = capsys.readouterr().out
        assert "figure4" in output
        assert "counting" in output

    def test_table2_runs(self, capsys, monkeypatch):
        monkeypatch.setattr(
            "repro.experiments.__main__.QUICK_PROFILE", TINY
        )
        assert main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "traditional samples" in output

    def test_figure3_panel_runs(self, capsys, monkeypatch):
        monkeypatch.setattr(
            "repro.experiments.__main__.QUICK_PROFILE",
            Profile("tiny", 3_000, 1, 1.5),
        )
        assert main(["figure3d"]) == 0
        output = capsys.readouterr().out
        assert "concise online" in output

    def test_table1_runs(self, capsys, monkeypatch):
        monkeypatch.setattr(
            "repro.experiments.__main__.QUICK_PROFILE",
            Profile("tiny", 3_000, 1, 3.0),
        )
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "lookups" in output
