"""Unit tests for join-size estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.randkit import numpy_generator
from repro.estimators.joins import (
    join_size_from_hotlists,
    join_size_from_samples,
)
from repro.hotlist import ConciseHotList, CountingHotList
from repro.stats.frequency import FrequencyTable
from repro.streams import zipf_stream


def _exact_join_size(left: np.ndarray, right: np.ndarray) -> float:
    left_table = FrequencyTable(left)
    right_table = FrequencyTable(right)
    return float(
        sum(
            count * right_table.count(value)
            for value, count in left_table.items()
        )
    )


class TestSampleEstimator:
    def test_identical_single_value_exact(self):
        left = np.full(10, 3)
        right = np.full(20, 3)
        estimate = join_size_from_samples(left, right, 100, 200)
        # Every pair matches: (100*200/(10*20)) * 200 = 20000.
        assert estimate == pytest.approx(100 * 200)

    def test_disjoint_values_zero(self):
        estimate = join_size_from_samples(
            np.array([1, 2]), np.array([3, 4]), 10, 10
        )
        assert estimate == 0.0

    def test_unbiased_on_average(self):
        left_stream = zipf_stream(30_000, 300, 1.0, seed=1)
        right_stream = zipf_stream(30_000, 300, 1.0, seed=2)
        truth = _exact_join_size(left_stream, right_stream)
        rng = numpy_generator(3)
        estimates = []
        for _ in range(40):
            left_points = rng.choice(left_stream, 800, replace=False)
            right_points = rng.choice(right_stream, 800, replace=False)
            estimates.append(
                join_size_from_samples(
                    left_points,
                    right_points,
                    len(left_stream),
                    len(right_stream),
                )
            )
        assert float(np.mean(estimates)) == pytest.approx(
            truth, rel=0.15
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            join_size_from_samples(np.empty(0), np.array([1]), 1, 1)
        with pytest.raises(ValueError):
            join_size_from_samples(
                np.array([1]), np.array([1]), -1, 1
            )


class TestHotlistEstimator:
    def test_skewed_self_join_accuracy(self):
        stream = zipf_stream(100_000, 5_000, 1.5, seed=4)
        truth = _exact_join_size(stream, stream)
        reporter = CountingHotList(1_000, seed=5)
        reporter.insert_array(stream)
        answer = reporter.report(200)
        distinct = float(len(np.unique(stream)))
        estimate = join_size_from_hotlists(
            answer, answer, len(stream), len(stream), distinct, distinct
        )
        assert estimate == pytest.approx(truth, rel=0.15)

    def test_cross_relation_join(self):
        left_stream = zipf_stream(50_000, 2_000, 1.4, seed=6)
        right_stream = zipf_stream(80_000, 2_000, 1.4, seed=7)
        truth = _exact_join_size(left_stream, right_stream)
        left_reporter = ConciseHotList(800, seed=8)
        right_reporter = ConciseHotList(800, seed=9)
        left_reporter.insert_array(left_stream)
        right_reporter.insert_array(right_stream)
        estimate = join_size_from_hotlists(
            left_reporter.report(100),
            right_reporter.report(100),
            len(left_stream),
            len(right_stream),
            float(len(np.unique(left_stream))),
            float(len(np.unique(right_stream))),
        )
        assert estimate == pytest.approx(truth, rel=0.3)

    def test_hotlist_beats_small_sample_on_skew(self):
        """The Section-1.2 rationale: hot values dominate the join
        size, so hot-list estimates beat plain small-sample estimates
        on skewed data."""
        left_stream = zipf_stream(50_000, 5_000, 1.5, seed=10)
        right_stream = zipf_stream(50_000, 5_000, 1.5, seed=11)
        truth = _exact_join_size(left_stream, right_stream)

        hotlist_errors, sample_errors = [], []
        rng = numpy_generator(12)
        for trial in range(5):
            left_reporter = CountingHotList(400, seed=100 + trial)
            right_reporter = CountingHotList(400, seed=200 + trial)
            left_reporter.insert_array(left_stream)
            right_reporter.insert_array(right_stream)
            hotlist_estimate = join_size_from_hotlists(
                left_reporter.report(100),
                right_reporter.report(100),
                len(left_stream),
                len(right_stream),
                float(len(np.unique(left_stream))),
                float(len(np.unique(right_stream))),
            )
            hotlist_errors.append(abs(hotlist_estimate - truth) / truth)
            left_points = rng.choice(left_stream, 400, replace=False)
            right_points = rng.choice(right_stream, 400, replace=False)
            sample_estimate = join_size_from_samples(
                left_points,
                right_points,
                len(left_stream),
                len(right_stream),
            )
            sample_errors.append(abs(sample_estimate - truth) / truth)
        assert np.mean(hotlist_errors) < np.mean(sample_errors)

    def test_validation(self):
        from repro.hotlist.base import HotListAnswer

        with pytest.raises(ValueError):
            join_size_from_hotlists(
                HotListAnswer(k=1), HotListAnswer(k=1), -1, 1, 0, 0
            )
