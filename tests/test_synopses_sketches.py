"""Unit tests for the counting sketches (Morris, FM, linear, AMS)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SynopsisError
from repro.stats.frequency import frequency_moment
from repro.synopses.ams import AmsF2Sketch
from repro.synopses.fm import FlajoletMartinSketch
from repro.synopses.linear_counting import LinearCounter
from repro.synopses.morris import MorrisCounter
from repro.streams import zipf_stream


class TestMorrisCounter:
    def test_rejects_base_at_most_one(self):
        with pytest.raises(SynopsisError):
            MorrisCounter(base=1.0)

    def test_estimate_zero_initially(self):
        assert MorrisCounter(seed=1).estimate() == 0.0

    def test_register_grows_logarithmically(self):
        counter = MorrisCounter(base=2.0, seed=2)
        for _ in range(10_000):
            counter.increment()
        assert counter.register < 20  # ~ lg(10000) + noise
        assert counter.register_bits <= 5

    def test_estimate_unbiased_across_trials(self):
        n = 2000
        estimates = []
        for trial in range(200):
            counter = MorrisCounter(base=2.0, seed=trial)
            for _ in range(n):
                counter.increment()
            estimates.append(counter.estimate())
        assert np.mean(estimates) == pytest.approx(n, rel=0.15)

    def test_smaller_base_more_accurate(self):
        n = 5000
        errors = {}
        for base in (1.05, 2.0):
            trial_errors = []
            for trial in range(60):
                counter = MorrisCounter(base=base, seed=1000 + trial)
                for _ in range(n):
                    counter.increment()
                trial_errors.append(abs(counter.estimate() - n) / n)
            errors[base] = np.mean(trial_errors)
        assert errors[1.05] < errors[2.0]

    def test_relative_standard_deviation_formula(self):
        assert MorrisCounter(base=2.0).relative_standard_deviation() == (
            pytest.approx(np.sqrt(0.5))
        )

    def test_stream_interface(self):
        counter = MorrisCounter(seed=3)
        counter.insert(42)
        assert counter.counters.inserts == 1
        assert counter.footprint == 1


class TestFlajoletMartin:
    def test_estimate_scales_with_distinct(self):
        sketch_small = FlajoletMartinSketch(64, seed=1)
        sketch_large = FlajoletMartinSketch(64, seed=1)
        for value in range(100):
            sketch_small.insert(value)
        for value in range(10_000):
            sketch_large.insert(value)
        assert sketch_large.estimate() > 5 * sketch_small.estimate()

    def test_duplicates_do_not_move_estimate(self):
        a = FlajoletMartinSketch(32, seed=2)
        b = FlajoletMartinSketch(32, seed=2)
        for value in range(500):
            a.insert(value)
            b.insert(value)
            b.insert(value)  # duplicate everything
            b.insert(value)
        assert a.estimate() == b.estimate()

    def test_accuracy_within_expected_error(self):
        distinct = 5000
        sketch = FlajoletMartinSketch(256, seed=3)
        for value in range(distinct):
            sketch.insert(value)
        assert sketch.estimate() == pytest.approx(distinct, rel=0.25)

    def test_merge_is_union(self):
        a = FlajoletMartinSketch(64, seed=4)
        b = FlajoletMartinSketch(64, seed=4)
        union = FlajoletMartinSketch(64, seed=4)
        for value in range(1000):
            a.insert(value)
            union.insert(value)
        for value in range(1000, 2000):
            b.insert(value)
            union.insert(value)
        a.merge(b)
        assert a.estimate() == union.estimate()

    def test_merge_rejects_shape_mismatch(self):
        with pytest.raises(SynopsisError):
            FlajoletMartinSketch(64, seed=5).merge(
                FlajoletMartinSketch(32, seed=5)
            )

    def test_footprint(self):
        assert FlajoletMartinSketch(64, seed=6).footprint == 64

    def test_validation(self):
        with pytest.raises(SynopsisError):
            FlajoletMartinSketch(0)
        with pytest.raises(SynopsisError):
            FlajoletMartinSketch(8, bits_per_group=4)


class TestLinearCounter:
    def test_exact_regime_accuracy(self):
        distinct = 1000
        counter = LinearCounter(bitmap_bits=8192, seed=1)
        for value in range(distinct):
            counter.insert(value)
            counter.insert(value)  # duplicates free
        assert counter.estimate() == pytest.approx(distinct, rel=0.1)

    def test_saturation_raises(self):
        counter = LinearCounter(bitmap_bits=8, seed=2)
        for value in range(10_000):
            counter.insert(value)
        assert counter.saturated
        with pytest.raises(SynopsisError):
            counter.estimate()

    def test_zero_fraction(self):
        counter = LinearCounter(bitmap_bits=64, seed=3)
        assert counter.zero_fraction == 1.0
        counter.insert(1)
        assert counter.zero_fraction == pytest.approx(63 / 64)

    def test_footprint_in_words(self):
        assert LinearCounter(bitmap_bits=128, seed=4).footprint == 2
        assert LinearCounter(bitmap_bits=100, seed=4).footprint == 2

    def test_rejects_tiny_bitmap(self):
        with pytest.raises(SynopsisError):
            LinearCounter(bitmap_bits=4)

    def test_empty_estimate_zero(self):
        assert LinearCounter(bitmap_bits=64, seed=5).estimate() == 0.0


class TestAmsF2:
    def test_estimate_accuracy(self):
        stream = zipf_stream(5000, 200, 1.0, seed=1)
        sketch = AmsF2Sketch(rows=5, columns=48, seed=2)
        for value in stream.tolist():
            sketch.insert(value)
        truth = frequency_moment(stream, 2)
        assert sketch.estimate() == pytest.approx(truth, rel=0.35)

    def test_deletion_support(self):
        """Insert then delete everything: the sketch returns to zero."""
        sketch = AmsF2Sketch(rows=3, columns=8, seed=3)
        values = [1, 5, 5, 9]
        for value in values:
            sketch.insert(value)
        for value in values:
            sketch.delete(value)
        assert sketch.estimate() == 0.0

    def test_single_value_exact(self):
        """One value with count c: every estimator reads c^2 exactly."""
        sketch = AmsF2Sketch(rows=3, columns=4, seed=4)
        for _ in range(7):
            sketch.insert(42)
        assert sketch.estimate() == pytest.approx(49.0)

    def test_footprint(self):
        assert AmsF2Sketch(rows=5, columns=64, seed=5).footprint == 320

    def test_validation(self):
        with pytest.raises(SynopsisError):
            AmsF2Sketch(rows=0, columns=4)
        with pytest.raises(SynopsisError):
            AmsF2Sketch(rows=4, columns=0)
