"""Unit tests for the universal hash families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.randkit import numpy_generator
from repro.synopses.hashing import (
    FourwiseHash,
    PairwiseHash,
    bit_hash_position,
)


class TestPairwiseHash:
    def test_range(self):
        h = PairwiseHash(buckets=16, seed=1)
        assert all(0 <= h(x) < 16 for x in range(1000))

    def test_deterministic_per_seed(self):
        a = PairwiseHash(16, seed=2)
        b = PairwiseHash(16, seed=2)
        assert [a(x) for x in range(50)] == [b(x) for x in range(50)]

    def test_different_seeds_differ(self):
        a = PairwiseHash(1 << 20, seed=3)
        b = PairwiseHash(1 << 20, seed=4)
        assert [a(x) for x in range(20)] != [b(x) for x in range(20)]

    def test_roughly_uniform(self):
        h = PairwiseHash(10, seed=5)
        counts = np.bincount([h(x) for x in range(100_000)], minlength=10)
        assert counts.min() > 8_000
        assert counts.max() < 12_000

    def test_rejects_zero_buckets(self):
        with pytest.raises(ValueError):
            PairwiseHash(0, seed=1)

    def test_raw_full_range(self):
        h = PairwiseHash(4, seed=6)
        raw_values = {h.raw(x) for x in range(100)}
        assert len(raw_values) == 100  # injective on small inputs whp


class TestFourwiseHash:
    def test_deterministic(self):
        a = FourwiseHash(seed=7)
        b = FourwiseHash(seed=7)
        assert [a(x) for x in range(20)] == [b(x) for x in range(20)]

    def test_sign_values(self):
        h = FourwiseHash(seed=8)
        assert set(h.sign(x) for x in range(1000)) == {-1, 1}

    def test_sign_balanced(self):
        h = FourwiseHash(seed=9)
        mean = np.mean([h.sign(x) for x in range(50_000)])
        assert abs(mean) < 0.02

    def test_sign_products_uncorrelated(self):
        """4-wise independence implies pairwise sign decorrelation."""
        h = FourwiseHash(seed=10)
        products = [h.sign(2 * x) * h.sign(2 * x + 1) for x in range(50_000)]
        assert abs(np.mean(products)) < 0.02


class TestBitHashPosition:
    def test_zero_maps_to_top(self):
        assert bit_hash_position(0, max_bits=32) == 31

    def test_positions(self):
        assert bit_hash_position(0b1) == 0
        assert bit_hash_position(0b10) == 1
        assert bit_hash_position(0b1011000) == 3

    def test_capped_at_max_bits(self):
        assert bit_hash_position(1 << 40, max_bits=8) == 7

    def test_geometric_distribution(self):
        """Uniform hashes land on bit j with probability 2^-(j+1)."""
        rng = numpy_generator(11)
        hashes = rng.integers(1, 1 << 61, size=200_000)
        positions = [bit_hash_position(int(h)) for h in hashes]
        fraction_zero = np.mean([p == 0 for p in positions])
        fraction_one = np.mean([p == 1 for p in positions])
        assert fraction_zero == pytest.approx(0.5, abs=0.01)
        assert fraction_one == pytest.approx(0.25, abs=0.01)
