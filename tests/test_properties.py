"""Property-based tests (hypothesis) on core invariants.

These complement the unit suites: for arbitrary streams, footprint
bounds, and seeds, the structural invariants of the synopses must hold
-- footprints within bound, bookkeeping consistent, counts positive,
theorems' deterministic consequences respected.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.concise import ConciseSample
from repro.core.convert import counting_to_concise
from repro.core.counting import CountingSample
from repro.core.offline import offline_concise_sample
from repro.core.reservoir import ReservoirSample
from repro.hotlist.base import kth_largest
from repro.stats.frequency import FrequencyTable
from repro.stats.theory import (
    concise_gain_expected,
    expected_distinct_in_sample,
)

value_streams = st.lists(
    st.integers(min_value=1, max_value=50), min_size=0, max_size=400
)
footprints = st.integers(min_value=2, max_value=64)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestConciseSampleProperties:
    @given(stream=value_streams, bound=footprints, seed=seeds)
    @settings(max_examples=150, deadline=None)
    def test_invariants_after_any_stream(self, stream, bound, seed):
        sample = ConciseSample(bound, seed=seed)
        sample.insert_many(stream)
        sample.check_invariants()
        assert sample.footprint <= bound
        assert sample.sample_size >= sample.footprint - 1 or (
            sample.footprint <= 1
        )
        assert sample.total_inserted == len(stream)

    @given(stream=value_streams, bound=footprints, seed=seeds)
    @settings(max_examples=100, deadline=None)
    def test_sample_is_multisubset_of_stream(self, stream, bound, seed):
        sample = ConciseSample(bound, seed=seed)
        sample.insert_many(stream)
        truth = Counter(stream)
        for value, count in sample.pairs():
            assert count <= truth[value]

    @given(stream=value_streams, seed=seeds)
    @settings(max_examples=100, deadline=None)
    def test_array_path_equals_per_op_path_exact_regime(
        self, stream, seed
    ):
        # Domain 1..50, footprint 100: the threshold never rises, so
        # the bulk path is deterministic and must match per-op exactly
        # (the randomised regime is compared distributionally in
        # tests/test_batch_equivalence.py).
        per_op = ConciseSample(100, seed=seed)
        per_op.insert_many(stream)
        bulk = ConciseSample(100, seed=seed)
        bulk.insert_array(np.asarray(stream, dtype=np.int64))
        assert per_op.as_dict() == bulk.as_dict()
        assert per_op.threshold == bulk.threshold == 1.0

    @given(stream=value_streams, bound=footprints, seed=seeds)
    @settings(max_examples=100, deadline=None)
    def test_array_path_invariants(self, stream, bound, seed):
        bulk = ConciseSample(bound, seed=seed)
        bulk.insert_array(np.asarray(stream, dtype=np.int64))
        bulk.check_invariants()
        assert bulk.total_inserted == len(stream)
        truth = Counter(stream)
        for value, count in bulk.pairs():
            assert count <= truth[value]

    @given(stream=value_streams, seed=seeds)
    @settings(max_examples=80, deadline=None)
    def test_small_domain_never_raises_threshold(self, stream, seed):
        # Domain 1..50, footprint 100 >= 2 * 50: exact histogram.
        sample = ConciseSample(100, seed=seed)
        sample.insert_many(stream)
        assert sample.threshold == 1.0
        assert sample.as_dict() == dict(Counter(stream))


class TestCountingSampleProperties:
    @given(stream=value_streams, bound=footprints, seed=seeds)
    @settings(max_examples=150, deadline=None)
    def test_invariants_after_any_stream(self, stream, bound, seed):
        sample = CountingSample(bound, seed=seed)
        sample.insert_many(stream)
        sample.check_invariants()
        assert sample.footprint <= bound

    @given(stream=value_streams, bound=footprints, seed=seeds)
    @settings(max_examples=100, deadline=None)
    def test_counts_never_exceed_true_frequency(
        self, stream, bound, seed
    ):
        sample = CountingSample(bound, seed=seed)
        sample.insert_many(stream)
        truth = Counter(stream)
        for value, count in sample.pairs():
            assert 0 < count <= truth[value]

    @given(
        stream=value_streams,
        bound=footprints,
        seed=seeds,
        delete_every=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_interleaved_deletes_preserve_invariants(
        self, stream, bound, seed, delete_every
    ):
        sample = CountingSample(bound, seed=seed)
        live: Counter[int] = Counter()
        for index, value in enumerate(stream):
            sample.insert(value)
            live[value] += 1
            if index % delete_every == 0 and live:
                victim = next(iter(live))
                sample.delete(victim)
                live[victim] -= 1
                if live[victim] == 0:
                    del live[victim]
            assert sample.footprint <= bound
        sample.check_invariants()
        for value, count in sample.pairs():
            assert count <= live[value]

    @given(stream=value_streams, bound=footprints, seed=seeds)
    @settings(max_examples=80, deadline=None)
    def test_conversion_yields_valid_concise_sample(
        self, stream, bound, seed
    ):
        counting = CountingSample(bound, seed=seed)
        counting.insert_many(stream)
        concise = counting_to_concise(counting, seed=seed + 1)
        concise.check_invariants()
        assert concise.footprint <= counting.footprint
        assert set(concise.as_dict()) == set(counting.as_dict())


class TestReservoirProperties:
    @given(stream=value_streams, seed=seeds)
    @settings(max_examples=100, deadline=None)
    def test_size_and_membership(self, stream, seed):
        sample = ReservoirSample(16, seed=seed)
        sample.insert_many(stream)
        assert sample.sample_size == min(len(stream), 16)
        stream_counts = Counter(stream)
        for value, count in Counter(sample.points()).items():
            assert count <= stream_counts[value]
        sample.check_invariants()


class TestOfflineProperties:
    @given(stream=value_streams, bound=footprints, seed=seeds)
    @settings(max_examples=100, deadline=None)
    def test_offline_invariants(self, stream, bound, seed):
        values = np.asarray(stream, dtype=np.int64)
        sample = offline_concise_sample(values, bound, seed)
        sample.check_invariants()
        assert sample.footprint <= bound
        truth = Counter(stream)
        for value, count in sample.pairs():
            assert count <= truth[value]


class TestTheoryProperties:
    @given(
        frequencies=st.lists(
            st.integers(min_value=1, max_value=500),
            min_size=1,
            max_size=30,
        ),
        m=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=200, deadline=None)
    def test_expected_distinct_bounds(self, frequencies, m):
        expected = expected_distinct_in_sample(frequencies, m)
        assert 0.0 <= expected <= min(len(frequencies), m) + 1e-9

    @given(
        frequencies=st.lists(
            st.integers(min_value=1, max_value=500),
            min_size=1,
            max_size=30,
        ),
        m=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=200, deadline=None)
    def test_gain_nonnegative_and_bounded(self, frequencies, m):
        gain = concise_gain_expected(frequencies, m)
        assert -1e-9 <= gain <= m

    @given(
        counts=st.lists(
            st.integers(min_value=0, max_value=100),
            min_size=0,
            max_size=50,
        ),
        k=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=200, deadline=None)
    def test_kth_largest_definition(self, counts, k):
        result = kth_largest(counts, k)
        if len(counts) < k:
            assert result == 0
        else:
            assert result == sorted(counts, reverse=True)[k - 1]


class TestFrequencyTableProperties:
    @given(stream=value_streams)
    @settings(max_examples=150, deadline=None)
    def test_matches_counter(self, stream):
        table = FrequencyTable(stream)
        counter = Counter(stream)
        assert table.as_dict() == dict(counter)
        assert table.total == len(stream)
        assert len(table) == len(counter)

    @given(stream=value_streams, k=st.floats(min_value=0, max_value=4))
    @settings(max_examples=100, deadline=None)
    def test_moments_match_direct_computation(self, stream, k):
        table = FrequencyTable(stream)
        direct = sum(c**k for c in Counter(stream).values())
        assert table.moment(k) == np.float64(direct) or abs(
            table.moment(k) - direct
        ) < 1e-6 * max(1.0, direct)
