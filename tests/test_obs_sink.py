"""Trace export: the bounded sink and the JSONL round-trip."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.core.concise import ConciseSample
from repro.engine.cache import QueryResultCache
from repro.engine.engine import ApproximateAnswerEngine
from repro.engine.queries import CountQuery, HotListQuery
from repro.engine.warehouse import DataWarehouse
from repro.estimators import Predicate
from repro.hotlist.concise import ConciseHotList
from repro.obs.audit import CalibrationAuditor
from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import TraceSink, read_trace_file, span_tree
from repro.obs.tracing import QueryTracer


@pytest.fixture(autouse=True)
def _restore_obs_defaults():
    yield
    obs.disable()


def traced_engine(registry: MetricsRegistry) -> ApproximateAnswerEngine:
    """An engine exercising every child-span phase: cache, audit, exact."""
    warehouse = DataWarehouse()
    warehouse.create_relation("sales", ["item"])
    engine = ApproximateAnswerEngine(
        warehouse,
        tracer=QueryTracer(registry),
        cache=QueryResultCache(capacity=16, registry=registry),
        auditor=CalibrationAuditor(1.0, seed=5, registry=registry),
    )
    engine.register_sample("sales", "item", ConciseSample(400, seed=1))
    engine.register_hotlist(
        "sales", "item", ConciseHotList(400, seed=2)
    )
    warehouse.load_batch(
        "sales", {"item": [value % 40 for value in range(4_000)]}
    )
    return engine


def run_queries(engine: ApproximateAnswerEngine) -> None:
    engine.answer(CountQuery("sales", "item", Predicate(high=10)))
    engine.answer(CountQuery("sales", "item", Predicate(high=10)))  # hit
    engine.answer(HotListQuery("sales", "item", k=3))
    engine.answer(CountQuery("sales", "item", None), exact=True)


class TestRing:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            TraceSink(0, registry=MetricsRegistry())

    def test_drain_moves_spans_and_empties_tracer(self):
        registry = MetricsRegistry()
        engine = traced_engine(registry)
        run_queries(engine)
        tracer = engine.tracer
        spans = tracer.spans()
        flat = len(spans) + sum(len(span.children) for span in spans)
        sink = TraceSink(capacity=64, registry=registry)
        assert sink.drain(tracer) == flat
        assert tracer.spans() == ()
        assert len(sink.records()) == flat
        # A second drain finds nothing: single export.
        assert sink.drain(tracer) == 0
        assert len(sink.records()) == flat

    def test_overflow_drops_oldest_and_counts(self):
        registry = MetricsRegistry()
        tracer = QueryTracer(registry)
        sink = TraceSink(capacity=3, registry=registry)

        class Response:
            answer, method, interval = 1.0, "sample", None

        for value in range(5):
            query = CountQuery("sales", "item", Predicate(high=value))
            tracer.record(query, Response(), tracer.begin())
        sink.drain(tracer)
        records = sink.records()
        assert len(records) == 3
        # Oldest records were evicted; the ring keeps the newest three.
        assert records[-1]["trace_id"].endswith("-00000005")
        parsed = obs.parse_prometheus(obs.render_prometheus(registry))
        assert parsed["repro_trace_dropped_records_total"][()] == 2.0
        assert parsed["repro_trace_spans_exported_total"][()] == 5.0


class TestJsonlRoundTrip:
    def test_drained_trace_file_round_trips(self, tmp_path):
        """Acceptance: parse the JSONL back into the same span tree."""
        registry = MetricsRegistry()
        engine = traced_engine(registry)
        run_queries(engine)
        spans = engine.tracer.spans()
        path = tmp_path / "trace.jsonl"
        sink = TraceSink(capacity=256, path=path, registry=registry)
        exported = sink.drain(engine.tracer)

        records = read_trace_file(path)
        assert len(records) == exported
        trees = span_tree(records)
        assert set(trees) == {span.trace_id for span in spans}
        for span in spans:
            tree = trees[span.trace_id]
            assert tree["span"] == span.to_dict()
            assert tree["children"] == [
                child.to_dict() for child in span.children
            ]
        # The workload exercised every phase at least once.
        phases = {rec["name"] for rec in records if "name" in rec}
        assert phases == {
            "cache_lookup",
            "synopsis_answer",
            "exact_fallback",
            "audit_shadow",
        }

    def test_appends_across_drains(self, tmp_path):
        registry = MetricsRegistry()
        engine = traced_engine(registry)
        path = tmp_path / "trace.jsonl"
        sink = TraceSink(capacity=256, path=path, registry=registry)
        engine.answer(CountQuery("sales", "item", Predicate(high=5)))
        first = sink.drain(engine.tracer)
        engine.answer(CountQuery("sales", "item", Predicate(high=7)))
        second = sink.drain(engine.tracer)
        assert len(read_trace_file(path)) == first + second
        parsed = obs.parse_prometheus(obs.render_prometheus(registry))
        assert parsed["repro_trace_file_bytes_total"][
            ()
        ] == path.stat().st_size
        assert parsed["repro_trace_drains_total"][()] == 2.0

    def test_no_path_writes_no_file(self, tmp_path):
        registry = MetricsRegistry()
        engine = traced_engine(registry)
        engine.answer(CountQuery("sales", "item", Predicate(high=5)))
        sink = TraceSink(capacity=16, registry=registry)
        sink.drain(engine.tracer)
        assert sink.path is None
        assert list(tmp_path.iterdir()) == []


class TestSpanTree:
    def root(self, trace_id: str) -> dict:
        return {
            "trace_id": trace_id,
            "span_id": f"{trace_id}:0",
            "parent_id": None,
        }

    def child(self, trace_id: str, n: int) -> dict:
        return {
            "trace_id": trace_id,
            "span_id": f"{trace_id}:{n}",
            "parent_id": f"{trace_id}:0",
        }

    def test_duplicate_root_raises(self):
        with pytest.raises(ValueError, match="duplicate root"):
            span_tree([self.root("t1-1"), self.root("t1-1")])

    def test_orphan_child_raises(self):
        with pytest.raises(ValueError, match="no root"):
            span_tree([self.root("t1-1"), self.child("t9-9", 1)])

    def test_children_sort_numerically_past_nine(self):
        records = [self.root("t1-1")] + [
            self.child("t1-1", n) for n in (10, 2, 11, 1, 3)
        ]
        tree = span_tree(records)["t1-1"]
        assert [c["span_id"] for c in tree["children"]] == [
            "t1-1:1",
            "t1-1:2",
            "t1-1:3",
            "t1-1:10",
            "t1-1:11",
        ]

    def test_records_are_plain_json(self, tmp_path):
        registry = MetricsRegistry()
        engine = traced_engine(registry)
        run_queries(engine)
        path = tmp_path / "trace.jsonl"
        TraceSink(capacity=256, path=path, registry=registry).drain(
            engine.tracer
        )
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert json.dumps(record, sort_keys=True) == line
