"""Top-count confidence intervals across the hot-list reporters."""

from __future__ import annotations

import pytest

from repro.hotlist.concise import ConciseHotList
from repro.hotlist.counting import CountingHotList
from repro.hotlist.exact import FullHistogramHotList
from repro.hotlist.sorted_concise import SortedConciseHotList
from repro.hotlist.traditional import TraditionalHotList
from repro.stats.frequency import FrequencyTable
from repro.streams import zipf_stream

SCALED_REPORTERS = (
    lambda: TraditionalHotList(1_000, seed=11),
    lambda: ConciseHotList(1_000, seed=12),
    lambda: SortedConciseHotList(1_000, seed=13),
)


def loaded(reporter, rows: int = 50_000):
    stream = zipf_stream(rows, 500, 1.4, seed=21)
    reporter.insert_array(stream)
    return reporter, FrequencyTable(stream)


class TestScaledReporters:
    @pytest.mark.parametrize("make", SCALED_REPORTERS)
    def test_interval_covers_true_top_count(self, make):
        reporter, truth = loaded(make())
        answer = reporter.report(5)
        interval = reporter.top_interval(answer)
        assert interval is not None
        assert interval.confidence == 0.95
        top = answer.entries[0]
        assert truth.count(top.value) in interval
        # and is centered near the reported estimate
        assert interval.low <= top.estimated_count <= interval.high

    @pytest.mark.parametrize("make", SCALED_REPORTERS)
    def test_higher_confidence_widens(self, make):
        reporter, _ = loaded(make())
        answer = reporter.report(5)
        narrow = reporter.top_interval(answer, confidence=0.8)
        wide = reporter.top_interval(answer, confidence=0.99)
        assert wide.width > narrow.width

    def test_empty_answer_has_no_interval(self):
        reporter = ConciseHotList(100, seed=1)
        assert reporter.top_interval(reporter.report(5)) is None


class TestCountingReporter:
    def test_one_sided_interval_covers_truth(self):
        reporter, truth = loaded(
            CountingHotList(footprint_bound=1_000, seed=14)
        )
        answer = reporter.report(5)
        interval = reporter.top_interval(answer)
        assert interval is not None
        top = answer.entries[0]
        # Counts are exact from admission: the raw count is a certain
        # lower bound, the miss quantile bounds the upside.
        assert interval.low <= truth.count(top.value) <= interval.high
        assert interval.low <= top.estimated_count

    def test_exact_regime_zero_width(self):
        """Threshold still 1: nothing was ever missed."""
        reporter = CountingHotList(footprint_bound=1_000, seed=15)
        reporter.insert_array(zipf_stream(300, 20, 1.0, seed=16))
        assert reporter.sample.threshold <= 1.0
        answer = reporter.report(3)
        interval = reporter.top_interval(answer)
        assert interval.width == 0.0


class TestFullHistogram:
    def test_zero_width_at_truth(self):
        reporter, truth = loaded(FullHistogramHotList(10_000), rows=10_000)
        answer = reporter.report(5)
        interval = reporter.top_interval(answer)
        top = answer.entries[0]
        assert interval.width == 0.0
        assert interval.low == truth.count(top.value)

    def test_empty_histogram(self):
        reporter = FullHistogramHotList(100)
        assert reporter.top_interval(reporter.report(2)) is None


class TestBaseDefault:
    def test_base_reporter_claims_nothing(self):
        from repro.hotlist.base import HotListReporter

        class Bare(HotListReporter):
            def insert(self, value):
                raise NotImplementedError

            def report(self, k):
                raise NotImplementedError

            @property
            def footprint(self):
                return 0

        assert Bare().top_interval(answer=None) is None
