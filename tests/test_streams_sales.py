"""Unit tests for the synthetic sales workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.sales import SalesGenerator


class TestSalesGenerator:
    def test_record_fields_valid(self):
        gen = SalesGenerator(catalogue_size=100, stores=5, seed=1)
        for record in gen.records(500):
            assert 1 <= record.product_id <= 100
            assert 1 <= record.store_id <= 5
            assert record.quantity >= 1
            assert record.unit_price > 0

    def test_transaction_ids_sequential(self):
        gen = SalesGenerator(seed=2)
        ids = [record.transaction_id for record in gen.records(50)]
        assert ids == list(range(1, 51))

    def test_prices_stable_per_product(self):
        gen = SalesGenerator(catalogue_size=50, seed=3)
        seen: dict[int, float] = {}
        for record in gen.records(2000):
            if record.product_id in seen:
                assert seen[record.product_id] == record.unit_price
            else:
                seen[record.product_id] = record.unit_price

    def test_price_of_matches_records(self):
        gen = SalesGenerator(catalogue_size=50, seed=4)
        record = next(iter(gen.records(1)))
        assert gen.price_of(record.product_id) == record.unit_price

    def test_price_of_rejects_unknown_product(self):
        gen = SalesGenerator(catalogue_size=10, seed=5)
        with pytest.raises(ValueError):
            gen.price_of(11)

    def test_revenue(self):
        gen = SalesGenerator(seed=6)
        record = next(iter(gen.records(1)))
        assert record.revenue == pytest.approx(
            record.quantity * record.unit_price
        )

    def test_product_popularity_skewed(self):
        gen = SalesGenerator(catalogue_size=1000, skew=1.5, seed=7)
        products = gen.product_stream(50_000)
        counts = np.bincount(products, minlength=1001)[1:]
        # Rank 1 must dominate rank 100 under zipf 1.5.
        assert counts[0] > 20 * counts[99]

    def test_product_stream_matches_records(self):
        gen = SalesGenerator(catalogue_size=200, seed=8)
        stream = gen.product_stream(100)
        from_records = [r.product_id for r in gen.records(100)]
        assert stream.tolist() == from_records

    def test_reproducible(self):
        a = list(SalesGenerator(seed=9).records(20))
        b = list(SalesGenerator(seed=9).records(20))
        assert a == b

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SalesGenerator(catalogue_size=0)
        with pytest.raises(ValueError):
            SalesGenerator(stores=0)
        with pytest.raises(ValueError):
            SalesGenerator(price_low=-1.0)
        with pytest.raises(ValueError):
            SalesGenerator(price_low=10.0, price_high=1.0)
