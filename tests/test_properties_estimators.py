"""Property-based tests for the estimator layer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators.aggregates import (
    estimate_average,
    estimate_count,
    estimate_sum,
)
from repro.estimators.intervals import (
    clt_interval,
    hoeffding_count_interval,
    normal_quantile,
)
from repro.estimators.selectivity import Predicate, estimate_selectivity

samples = st.lists(
    st.integers(min_value=-100, max_value=100), min_size=1, max_size=200
).map(lambda values: np.asarray(values, dtype=np.int64))


class TestFullInformationExactness:
    """When the 'sample' is the whole population, estimators must be
    exact."""

    @given(points=samples)
    @settings(max_examples=200, deadline=None)
    def test_count_exact(self, points):
        estimate = estimate_count(points, population=len(points))
        assert estimate.value == len(points)

    @given(points=samples, cut=st.integers(min_value=-100, max_value=100))
    @settings(max_examples=200, deadline=None)
    def test_predicated_count_exact(self, points, cut):
        estimate = estimate_count(
            points, len(points), predicate=lambda v: v <= cut
        )
        assert estimate.value == pytest.approx(
            float(np.count_nonzero(points <= cut)), abs=1e-6
        )

    @given(points=samples)
    @settings(max_examples=200, deadline=None)
    def test_sum_exact(self, points):
        estimate = estimate_sum(points, population=len(points))
        assert estimate.value == pytest.approx(float(points.sum()), abs=1e-6)

    @given(points=samples)
    @settings(max_examples=200, deadline=None)
    def test_average_is_sample_mean(self, points):
        estimate = estimate_average(points)
        assert estimate.value == pytest.approx(float(points.mean()))


class TestStructuralProperties:
    @given(points=samples, population=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=200, deadline=None)
    def test_count_within_population(self, points, population):
        estimate = estimate_count(points, population)
        assert 0.0 <= estimate.value <= population

    @given(points=samples, cut=st.integers(min_value=-100, max_value=100))
    @settings(max_examples=200, deadline=None)
    def test_selectivity_in_unit_interval(self, points, cut):
        result = estimate_selectivity(points, Predicate(high=cut))
        assert 0.0 <= result.selectivity <= 1.0
        assert 0.0 <= result.interval.low <= result.interval.high <= 1.0
        assert result.interval.low <= result.selectivity <= (
            result.interval.high
        )

    @given(points=samples)
    @settings(max_examples=100, deadline=None)
    def test_estimate_inside_its_interval(self, points):
        estimate = estimate_sum(points, population=1000)
        assert estimate.value in estimate.interval


class TestIntervalProperties:
    @given(p=st.floats(min_value=1e-9, max_value=1 - 1e-9))
    @settings(max_examples=300, deadline=None)
    def test_quantile_monotone_checkpoints(self, p):
        z = normal_quantile(p)
        if p < 0.5:
            assert z < 0
        elif p > 0.5:
            assert z > 0

    @given(
        estimate=st.floats(min_value=-1e6, max_value=1e6),
        error=st.floats(min_value=0, max_value=1e6),
        confidence=st.floats(min_value=0.01, max_value=0.999),
    )
    @settings(max_examples=300, deadline=None)
    def test_clt_interval_contains_estimate(
        self, estimate, error, confidence
    ):
        interval = clt_interval(estimate, error, confidence)
        assert interval.low <= estimate <= interval.high
        assert interval.confidence == confidence

    @given(
        matching=st.integers(min_value=0, max_value=50),
        extra=st.integers(min_value=0, max_value=50),
        population=st.integers(min_value=1, max_value=10**6),
    )
    @settings(max_examples=300, deadline=None)
    def test_hoeffding_bounds_ordered_and_clipped(
        self, matching, extra, population
    ):
        sample_size = matching + extra
        if sample_size == 0:
            return
        interval = hoeffding_count_interval(
            matching, sample_size, population
        )
        assert 0.0 <= interval.low <= interval.high <= population
