"""Unit tests for attribute-tuple (composite) hot lists."""

from __future__ import annotations

import pytest

from repro.engine import (
    ApproximateAnswerEngine,
    DataWarehouse,
    HotListQuery,
)
from repro.engine.composite import (
    composite_name,
    decode_composite,
    decode_composite_answer,
    encode_composite,
)
from repro.hotlist import CountingHotList


class TestEncoding:
    def test_roundtrip(self):
        for values in [(1, 2), (0, 0), (5, 5), (9, 3, 7)]:
            assert decode_composite(
                encode_composite(values), len(values)
            ) == values

    def test_order_matters(self):
        assert encode_composite((1, 2)) != encode_composite((2, 1))

    def test_leading_zero_distinct(self):
        assert encode_composite((0, 5)) != encode_composite((5, 0))

    def test_arity_mismatch_detected(self):
        code = encode_composite((1, 2, 3))
        with pytest.raises(ValueError):
            decode_composite(code, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            encode_composite((1,))
        with pytest.raises(ValueError):
            encode_composite((-1, 2))
        with pytest.raises(ValueError):
            encode_composite((1 << 30, 2))
        with pytest.raises(ValueError):
            decode_composite(encode_composite((1, 2)), 1)

    def test_composite_name(self):
        assert composite_name(("a", "b")) == "a+b"
        with pytest.raises(ValueError):
            composite_name(("a",))


class TestEngineIntegration:
    def _build(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("sales", ["store", "product"])
        engine = ApproximateAnswerEngine(warehouse)
        reporter = CountingHotList(200, seed=1)
        name = engine.register_composite_hotlist(
            "sales", ("store", "product"), reporter
        )
        return warehouse, engine, name

    def test_register_returns_canonical_name(self):
        _, _, name = self._build()
        assert name == "store+product"

    def test_register_validates_attributes(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("sales", ["store", "product"])
        engine = ApproximateAnswerEngine(warehouse)
        from repro.engine.relation import RelationError

        with pytest.raises(RelationError):
            engine.register_composite_hotlist(
                "sales", ("store", "nope"), CountingHotList(50, seed=2)
            )

    def test_hot_pairs_found(self):
        warehouse, engine, name = self._build()
        # Store 3 sells product 7 heavily; background is spread out.
        for i in range(500):
            warehouse.insert("sales", {"store": 3, "product": 7})
        for i in range(300):
            warehouse.insert(
                "sales", {"store": i % 10, "product": i % 50}
            )
        response = engine.answer(HotListQuery("sales", name, k=3))
        decoded = decode_composite_answer(response.answer, 2)
        assert decoded[0][0] == (3, 7)
        assert decoded[0][1] == pytest.approx(500, rel=0.15)

    def test_composite_tracks_deletes(self):
        warehouse, engine, name = self._build()
        for _ in range(100):
            warehouse.insert("sales", {"store": 1, "product": 1})
        for _ in range(60):
            warehouse.insert("sales", {"store": 2, "product": 2})
        for _ in range(90):
            warehouse.delete("sales", {"store": 1, "product": 1})
        response = engine.answer(HotListQuery("sales", name, k=1))
        decoded = decode_composite_answer(response.answer, 2)
        assert decoded[0][0] == (2, 2)

    def test_single_attribute_synopses_unaffected(self):
        warehouse, engine, name = self._build()
        from repro.core import ConciseSample

        engine.register_sample(
            "sales", "product", ConciseSample(100, seed=3)
        )
        for i in range(200):
            warehouse.insert(
                "sales", {"store": i % 5, "product": i % 20}
            )
        from repro.engine import CountQuery

        response = engine.answer(CountQuery("sales", "product"))
        assert response.answer == pytest.approx(200.0)

    def test_duplicate_composite_registration_rejected(self):
        warehouse, engine, name = self._build()
        with pytest.raises(ValueError):
            engine.register_composite_hotlist(
                "sales",
                ("store", "product"),
                CountingHotList(50, seed=4),
            )
