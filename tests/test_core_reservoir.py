"""Unit tests for reservoir (traditional) sampling."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.base import SynopsisError
from repro.core.reservoir import ReservoirSample


class TestBasics:
    def test_rejects_zero_capacity(self):
        with pytest.raises(SynopsisError):
            ReservoirSample(0)

    def test_fill_phase_keeps_everything(self):
        sample = ReservoirSample(10, seed=1)
        sample.insert_many(range(7))
        assert sorted(sample.points()) == list(range(7))
        assert sample.footprint == 7

    def test_capacity_never_exceeded(self):
        sample = ReservoirSample(5, seed=2)
        sample.insert_many(range(1000))
        assert sample.sample_size == 5
        sample.check_invariants()

    def test_sample_is_subset_of_stream(self):
        sample = ReservoirSample(20, seed=3)
        stream = list(range(100, 400))
        sample.insert_many(stream)
        assert set(sample.points()) <= set(stream)

    def test_total_inserted(self):
        sample = ReservoirSample(5, seed=4)
        sample.insert_many(range(123))
        assert sample.total_inserted == 123
        assert sample.counters.inserts == 123

    def test_footprint_equals_sample_size(self):
        sample = ReservoirSample(50, seed=5)
        sample.insert_many(range(500))
        assert sample.footprint == sample.sample_size == 50

    def test_as_array(self):
        sample = ReservoirSample(3, seed=6)
        sample.insert_many([7, 7, 7, 7])
        array = sample.as_array()
        assert array.dtype == np.int64
        assert len(array) == 3

    def test_pairs_semi_sort(self):
        sample = ReservoirSample(10, seed=7)
        sample.insert_many([1, 1, 1, 2, 2, 3])
        assert dict(sample.pairs()) == {1: 3, 2: 2, 3: 1}

    def test_estimate_frequency(self):
        sample = ReservoirSample(4, seed=8)
        sample.insert_many([5, 5, 6, 7])  # fill phase keeps all
        # 2 points of value 5 out of 4, n=4: estimate 2.
        assert sample.estimate_frequency(5) == pytest.approx(2.0)

    def test_estimate_frequency_empty(self):
        assert ReservoirSample(4, seed=9).estimate_frequency(1) == 0.0


class TestUniformity:
    def test_each_element_equally_likely(self):
        """Every stream position must appear in the reservoir with
        probability m/n (the defining reservoir property)."""
        n, m, trials = 60, 6, 4000
        appearance = Counter()
        for trial in range(trials):
            sample = ReservoirSample(m, seed=trial)
            sample.insert_many(range(n))
            appearance.update(sample.points())
        expected = trials * m / n
        for element in range(n):
            assert appearance[element] == pytest.approx(
                expected, rel=0.25
            ), f"element {element} over/under-sampled"

    def test_insert_array_uniform_too(self):
        n, m, trials = 60, 6, 4000
        stream = np.arange(n)
        appearance = Counter()
        for trial in range(trials):
            sample = ReservoirSample(m, seed=10_000 + trial)
            sample.insert_array(stream)
            appearance.update(sample.points())
        expected = trials * m / n
        for element in range(n):
            assert appearance[element] == pytest.approx(expected, rel=0.25)

    def test_mixed_per_op_and_array_ingestion(self):
        n, m, trials = 40, 4, 4000
        appearance = Counter()
        for trial in range(trials):
            sample = ReservoirSample(m, seed=20_000 + trial)
            sample.insert_many(range(10))
            sample.insert_array(np.arange(10, 30))
            sample.insert_many(range(30, n))
            appearance.update(sample.points())
        expected = trials * m / n
        for element in range(n):
            assert appearance[element] == pytest.approx(expected, rel=0.25)


class TestCostModel:
    def test_fill_phase_costs_no_flips(self):
        sample = ReservoirSample(100, seed=11)
        sample.insert_many(range(100))
        assert sample.counters.flips == 0

    def test_flip_count_scales_as_replacements(self):
        """Skip accounting: ~2 m ln(n/m) flips for the whole stream."""
        m, n = 100, 100_000
        sample = ReservoirSample(m, seed=12)
        sample.insert_array(np.arange(n))
        expected = 2 * m * np.log(n / m)
        assert sample.counters.flips == pytest.approx(expected, rel=0.2)

    def test_per_op_flip_count_matches_array_path(self):
        m, n = 50, 20_000
        per_op = ReservoirSample(m, seed=13)
        per_op.insert_many(range(n))
        bulk = ReservoirSample(m, seed=13)
        bulk.insert_array(np.arange(n))
        # Same accounting model: within statistical noise of each other.
        assert per_op.counters.flips == pytest.approx(
            bulk.counters.flips, rel=0.25
        )

    def test_no_lookups_ever(self):
        sample = ReservoirSample(10, seed=14)
        sample.insert_many(range(5000))
        assert sample.counters.lookups == 0


class TestDeterminism:
    def test_same_seed_same_sample(self):
        a = ReservoirSample(10, seed=42)
        b = ReservoirSample(10, seed=42)
        stream = list(range(2000))
        a.insert_many(stream)
        b.insert_many(stream)
        assert a.points() == b.points()

    def test_array_path_deterministic(self):
        stream = np.arange(2000)
        a = ReservoirSample(10, seed=43)
        b = ReservoirSample(10, seed=43)
        a.insert_array(stream)
        b.insert_array(stream)
        assert a.points() == b.points()
