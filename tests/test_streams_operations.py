"""Unit tests for insert/delete operation streams."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.randkit import numpy_generator
from repro.streams.operations import (
    Delete,
    Insert,
    insert_delete_stream,
    inserts_only,
    replay,
)


class _RecordingTarget:
    """Replay target that tracks the live multiset."""

    def __init__(self) -> None:
        self.live: Counter[int] = Counter()
        self.operations = 0

    def insert(self, value: int) -> None:
        self.live[value] += 1
        self.operations += 1

    def delete(self, value: int) -> None:
        assert self.live[value] > 0, "delete of a non-live value"
        self.live[value] -= 1
        self.operations += 1


class TestInsertsOnly:
    def test_wraps_all_values(self):
        operations = list(inserts_only([3, 1, 4, 1, 5]))
        assert all(isinstance(op, Insert) for op in operations)
        assert [op.value for op in operations] == [3, 1, 4, 1, 5]

    def test_numpy_input(self):
        operations = list(inserts_only(np.array([7, 8])))
        assert [op.value for op in operations] == [7, 8]
        assert all(isinstance(op.value, int) for op in operations)


class TestInsertDeleteStream:
    def test_zero_fraction_is_pure_inserts(self):
        values = np.arange(1, 101)
        operations = insert_delete_stream(values, 0.0, seed=1)
        assert len(operations) == 100
        assert all(isinstance(op, Insert) for op in operations)

    def test_all_inserts_present_in_order(self):
        values = np.array([5, 3, 5, 9, 1])
        operations = insert_delete_stream(values, 0.4, seed=2)
        inserted = [op.value for op in operations if isinstance(op, Insert)]
        assert inserted == values.tolist()

    def test_deletes_never_underflow(self):
        values = numpy_generator(3).integers(1, 20, size=2000)
        operations = insert_delete_stream(values, 0.45, seed=4)
        live: Counter[int] = Counter()
        for op in operations:
            if isinstance(op, Insert):
                live[op.value] += 1
            else:
                assert live[op.value] > 0
                live[op.value] -= 1

    def test_delete_fraction_roughly_respected(self):
        values = np.ones(20_000, dtype=np.int64)
        operations = insert_delete_stream(values, 0.3, seed=5)
        deletes = sum(isinstance(op, Delete) for op in operations)
        fraction = deletes / len(operations)
        assert 0.25 < fraction < 0.33

    def test_rejects_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            insert_delete_stream(np.ones(5), 1.0, seed=1)
        with pytest.raises(ValueError):
            insert_delete_stream(np.ones(5), -0.1, seed=1)

    def test_reproducible(self):
        values = np.arange(500)
        a = insert_delete_stream(values, 0.2, seed=6)
        b = insert_delete_stream(values, 0.2, seed=6)
        assert a == b


class TestReplay:
    def test_replay_applies_everything(self):
        values = numpy_generator(7).integers(1, 10, size=500)
        operations = insert_delete_stream(values, 0.25, seed=8)
        target = _RecordingTarget()
        applied = replay(operations, target)
        assert applied == len(operations)
        assert target.operations == len(operations)

    def test_replay_final_state_consistent(self):
        values = numpy_generator(9).integers(1, 6, size=300)
        operations = insert_delete_stream(values, 0.3, seed=10)
        target = _RecordingTarget()
        replay(operations, target)
        expected: Counter[int] = Counter()
        for op in operations:
            if isinstance(op, Insert):
                expected[op.value] += 1
            else:
                expected[op.value] -= 1
        assert +target.live == +expected

    def test_replay_rejects_unknown_operation(self):
        target = _RecordingTarget()
        with pytest.raises(TypeError):
            replay(["not-an-op"], target)  # type: ignore[list-item]
