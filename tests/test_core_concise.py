"""Unit tests for concise samples and their incremental maintenance."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.randkit import numpy_generator
from repro.core.base import SynopsisError
from repro.core.concise import ConciseSample
from repro.core.thresholds import MultiplicativeRaise
from repro.streams import zipf_stream


class TestConstruction:
    def test_rejects_tiny_footprint(self):
        with pytest.raises(SynopsisError):
            ConciseSample(1)

    def test_initial_state(self):
        sample = ConciseSample(10, seed=1)
        assert sample.footprint == 0
        assert sample.sample_size == 0
        assert sample.threshold == 1.0
        assert len(sample) == 0

    def test_from_state(self):
        sample = ConciseSample.from_state(
            {5: 3, 9: 1}, threshold=2.0, footprint_bound=10,
            total_inserted=8,
        )
        assert sample.sample_size == 4
        assert sample.footprint == 3  # one pair + one singleton
        assert sample.threshold == 2.0
        assert sample.total_inserted == 8
        sample.check_invariants()

    def test_from_state_rejects_overflow(self):
        with pytest.raises(SynopsisError):
            ConciseSample.from_state({1: 2, 2: 2}, 1.0, footprint_bound=3)

    def test_from_state_rejects_bad_counts(self):
        with pytest.raises(SynopsisError):
            ConciseSample.from_state({1: 0}, 1.0, footprint_bound=4)

    def test_from_state_rejects_bad_threshold(self):
        with pytest.raises(SynopsisError):
            ConciseSample.from_state({1: 1}, 0.5, footprint_bound=4)


class TestRepresentation:
    def test_startup_keeps_everything(self):
        """At threshold 1 every insert enters the sample."""
        sample = ConciseSample(100, seed=2)
        for value in [3, 3, 3, 7, 9]:
            assert sample.insert(value) is True
        assert sample.count_of(3) == 3
        assert sample.count_of(7) == 1
        assert sample.sample_size == 5
        assert sample.footprint == 4  # pair (3,3) + two singletons

    def test_footprint_accounting_pairs_vs_singletons(self):
        sample = ConciseSample(100, seed=3)
        sample.insert(1)
        assert sample.footprint == 1
        sample.insert(1)  # singleton -> pair
        assert sample.footprint == 2
        sample.insert(1)  # pair count grows, no footprint change
        assert sample.footprint == 2
        sample.insert(2)
        assert sample.footprint == 3
        sample.check_invariants()

    def test_contains(self):
        sample = ConciseSample(10, seed=4)
        sample.insert(5)
        assert 5 in sample
        assert 6 not in sample

    def test_pairs_and_dict(self):
        sample = ConciseSample(10, seed=5)
        sample.insert_many([1, 1, 2])
        assert dict(sample.pairs()) == {1: 2, 2: 1}
        assert sample.as_dict() == {1: 2, 2: 1}

    def test_sample_points_expansion(self):
        sample = ConciseSample(10, seed=6)
        sample.insert_many([4, 4, 8])
        points = sample.sample_points()
        assert Counter(points.tolist()) == {4: 2, 8: 1}

    def test_sample_points_empty(self):
        assert len(ConciseSample(10, seed=7).sample_points()) == 0

    def test_count_histogram(self):
        sample = ConciseSample(20, seed=8)
        sample.insert_many([1, 1, 1, 2, 2, 3])
        assert sample.count_histogram() == {3: 1, 2: 1, 1: 1}

    def test_repr_mentions_key_stats(self):
        sample = ConciseSample(10, seed=9)
        text = repr(sample)
        assert "footprint" in text and "threshold" in text


class TestFootprintBound:
    @pytest.mark.parametrize("bound", [2, 10, 100])
    def test_bound_always_respected(self, bound):
        sample = ConciseSample(bound, seed=10)
        stream = zipf_stream(20_000, 1000, 0.5, seed=11)
        for value in stream.tolist():
            sample.insert(value)
            assert sample.footprint <= bound
        sample.check_invariants()

    def test_bound_respected_on_array_path(self):
        sample = ConciseSample(50, seed=12)
        sample.insert_array(zipf_stream(50_000, 2000, 1.0, seed=13))
        assert sample.footprint <= 50
        sample.check_invariants()

    def test_threshold_monotonically_nondecreasing(self):
        sample = ConciseSample(20, seed=14)
        thresholds = []
        for value in zipf_stream(5000, 500, 0.0, seed=15).tolist():
            sample.insert(value)
            thresholds.append(sample.threshold)
        assert thresholds == sorted(thresholds)

    def test_all_values_fit_no_raises(self):
        """If the domain is at most m/2, the concise sample is the
        exact histogram and the threshold never rises (paper: D/m <=
        0.5 keeps everything)."""
        sample = ConciseSample(100, seed=16)
        stream = zipf_stream(30_000, 50, 1.0, seed=17)
        sample.insert_array(stream)
        assert sample.threshold == 1.0
        assert sample.counters.threshold_raises == 0
        assert sample.sample_size == 30_000
        truth = Counter(stream.tolist())
        assert sample.as_dict() == dict(truth)


class TestMaintenanceStatistics:
    def test_sample_size_tracks_inverse_threshold(self):
        """E[sample-size] = inserts / threshold (paper Section 3.3)."""
        sample = ConciseSample(200, seed=18)
        sample.insert_array(zipf_stream(100_000, 10_000, 0.0, seed=19))
        expected = sample.total_inserted / sample.threshold
        assert sample.sample_size == pytest.approx(expected, rel=0.35)

    def test_uniformity_every_position_equally_likely(self):
        """Theorem 2: the maintained sample is uniform -- every stream
        position is a sample point equally often across trials."""
        n, bound, trials = 80, 16, 3000
        stream = np.arange(n)  # all distinct: counts are inclusion flags
        appearance = Counter()
        total_points = 0
        for trial in range(trials):
            sample = ConciseSample(bound, seed=30_000 + trial)
            for value in stream.tolist():
                sample.insert(value)
            appearance.update(sample.as_dict())
            total_points += sample.sample_size
        expected = total_points / n
        for element in range(n):
            assert appearance[element] == pytest.approx(
                expected, rel=0.3
            ), f"position {element} biased"

    def test_value_frequencies_proportional(self):
        """Sampled counts must be proportional to true frequencies."""
        stream = np.concatenate(
            [np.full(30_000, 1), np.full(10_000, 2), np.full(10_000, 3)]
        )
        rng = numpy_generator(5)
        rng.shuffle(stream)
        totals: Counter[int] = Counter()
        for trial in range(30):
            sample = ConciseSample(40, seed=40_000 + trial)
            sample.insert_array(stream)
            totals.update(sample.as_dict())
        assert totals[1] / totals[2] == pytest.approx(3.0, rel=0.25)
        assert totals[2] / totals[3] == pytest.approx(1.0, rel=0.25)

    def test_estimate_frequency_unbiased(self):
        stream = np.concatenate([np.full(8000, 7), np.full(2000, 9)])
        numpy_generator(6).shuffle(stream)
        estimates = []
        for trial in range(40):
            sample = ConciseSample(30, seed=50_000 + trial)
            sample.insert_array(stream)
            estimates.append(sample.estimate_frequency(7))
        assert float(np.mean(estimates)) == pytest.approx(8000, rel=0.15)


class TestArrayVsPerOpEquivalence:
    """The vectorized bulk path draws its randomness in array form, so
    it is *distributionally* (not bitwise) equivalent to the per-op
    path -- see tests/test_batch_equivalence.py for the statistical
    comparison.  Below the threshold (no randomness consumed) the two
    paths must agree exactly."""

    def test_exact_regime_matches_per_op(self):
        """While the threshold stays 1 every insert is admitted, so
        bulk and per-op ingestion are deterministic and identical."""
        stream = zipf_stream(30_000, 200, 1.2, seed=20)
        per_op = ConciseSample(1000, seed=21)
        for value in stream.tolist():
            per_op.insert(value)
        bulk = ConciseSample(1000, seed=21)
        bulk.insert_array(stream)
        assert per_op.threshold == 1.0
        assert bulk.threshold == 1.0
        assert per_op.as_dict() == bulk.as_dict()
        assert per_op.total_inserted == bulk.total_inserted

    def test_chunked_array_ingestion_equivalent(self):
        stream = zipf_stream(20_000, 300, 1.0, seed=22)
        whole = ConciseSample(1000, seed=23)
        whole.insert_array(stream)
        chunked = ConciseSample(1000, seed=23)
        for start in range(0, len(stream), 997):
            chunked.insert_array(stream[start : start + 997])
        assert whole.threshold == 1.0
        assert whole.as_dict() == chunked.as_dict()

    def test_bulk_path_keeps_invariants_under_eviction(self):
        stream = zipf_stream(30_000, 1000, 1.2, seed=20)
        bulk = ConciseSample(100, seed=21)
        bulk.insert_array(stream)
        bulk.check_invariants()
        assert bulk.threshold > 1.0
        assert bulk.total_inserted == len(stream)
        truth = Counter(stream.tolist())
        for value, count in bulk.pairs():
            assert count <= truth[value]


class TestCostModel:
    def test_no_flips_while_threshold_one(self):
        sample = ConciseSample(1000, seed=24)
        sample.insert_many(range(400))  # footprint 400 < 1000
        assert sample.counters.flips == 0
        assert sample.counters.lookups == 400

    def test_amortised_flips_bounded(self):
        """Flips per insert stay far below 1 on a uniform stream."""
        sample = ConciseSample(100, seed=25)
        sample.insert_array(zipf_stream(200_000, 10_000, 0.0, seed=26))
        assert sample.counters.flips_per_insert() < 0.05
        assert sample.counters.lookups_per_insert() < 0.05

    def test_lookups_only_for_admitted(self):
        sample = ConciseSample(50, seed=27)
        sample.insert_array(zipf_stream(50_000, 5000, 0.0, seed=28))
        # Every lookup corresponds to an admitted insert.
        assert sample.counters.lookups < sample.counters.inserts * 0.1


class TestThresholdPolicyIntegration:
    def test_custom_policy_used(self):
        aggressive = ConciseSample(
            20, seed=29, policy=MultiplicativeRaise(4.0)
        )
        gentle = ConciseSample(
            20, seed=29, policy=MultiplicativeRaise(1.05)
        )
        stream = zipf_stream(20_000, 2000, 0.0, seed=30)
        aggressive.insert_array(stream)
        gentle.insert_array(stream)
        assert (
            aggressive.counters.threshold_raises
            < gentle.counters.threshold_raises
        )

    def test_broken_policy_raises(self):
        class Stuck:
            def next_threshold(self, sample):
                return sample.threshold  # never raises

        sample = ConciseSample(4, seed=31, policy=Stuck())
        with pytest.raises(SynopsisError):
            sample.insert_many(range(100))
