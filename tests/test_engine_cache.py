"""The epoch-invalidated query-result cache.

Correctness contract: with a cache attached, the engine's answers are
*indistinguishable* from an uncached engine's -- repeats are served
from memory only while the target relations' epochs are unchanged, and
any ingest (per-row insert, batch load, delete, synopsis re-register,
out-of-band merge via ``bump_epoch``) invalidates exactly the affected
relation's entries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.concise import ConciseSample
from repro.engine.cache import QueryResultCache
from repro.engine.engine import ApproximateAnswerEngine
from repro.engine.queries import (
    CountQuery,
    FrequencyQuery,
    HotListQuery,
    JoinSizeQuery,
)
from repro.engine.registry import SAMPLE
from repro.engine.relation import Relation
from repro.engine.warehouse import DataWarehouse
from repro.hotlist.concise import ConciseHotList
from repro.obs.clock import FakeClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import QueryTracer


def build_engine(
    *,
    cache: QueryResultCache | None = None,
    tracer: QueryTracer | None = None,
    seed: int = 7,
) -> ApproximateAnswerEngine:
    warehouse = DataWarehouse()
    warehouse.create_relation("sales", ["price"])
    engine = ApproximateAnswerEngine(
        warehouse, tracer=tracer, cache=cache
    )
    engine.register_sample(
        "sales", "price", ConciseSample(64, seed=seed)
    )
    engine.register_hotlist(
        "sales", "price", ConciseHotList(32, seed=seed + 1)
    )
    warehouse.load_batch(
        "sales", {"price": np.arange(200, dtype=np.int64) % 17}
    )
    return engine


class TestRelationEpoch:
    def test_each_mutation_advances(self):
        relation = Relation("r", ["a"])
        assert relation.epoch == 0
        relation.insert((1,))
        epoch_after_insert = relation.epoch
        assert epoch_after_insert > 0
        relation.insert_batch({"a": np.asarray([2, 3], np.int64)})
        assert relation.epoch > epoch_after_insert
        before_delete = relation.epoch
        relation.delete((1,))
        assert relation.epoch > before_delete

    def test_empty_batch_does_not_advance(self):
        relation = Relation("r", ["a"])
        relation.insert_batch({"a": np.asarray([], np.int64)})
        assert relation.epoch == 0

    def test_snapshot_restore_seeds_epoch(self):
        relation = Relation("r", ["a"])
        relation.insert((1,))
        relation.insert((1,))
        restored = Relation.from_dict(relation.to_dict())
        assert restored.epoch == restored.size == 2


class TestQueryResultCacheUnit:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            QueryResultCache(0)

    def test_hit_requires_matching_epochs(self):
        cache = QueryResultCache(4, registry=MetricsRegistry())
        key = CountQuery("sales", "price")
        token = (("sales", (1, 0)),)
        cache.put(key, token, "answer")
        assert cache.get(key, token) == "answer"
        stale = (("sales", (2, 0)),)
        assert cache.get(key, stale) is None
        assert cache.stats["invalidations"] == 1
        # The stale entry was dropped, not resurrected.
        assert cache.get(key, token) is None
        assert cache.stats["misses"] == 2

    def test_lru_eviction(self):
        cache = QueryResultCache(2, registry=MetricsRegistry())
        token = (("sales", (1, 0)),)
        first = CountQuery("sales", "price")
        second = FrequencyQuery("sales", "price", value=1)
        third = HotListQuery("sales", "price", k=5)
        cache.put(first, token, "a")
        cache.put(second, token, "b")
        assert cache.get(first, token) == "a"  # first is now most recent
        cache.put(third, token, "c")  # evicts second
        assert cache.stats["evictions"] == 1
        assert cache.get(second, token) is None
        assert cache.get(first, token) == "a"
        assert cache.get(third, token) == "c"

    def test_clear_drops_entries(self):
        cache = QueryResultCache(4, registry=MetricsRegistry())
        token = (("sales", (1, 0)),)
        cache.put(CountQuery("sales", "price"), token, "a")
        cache.clear()
        assert len(cache) == 0

    def test_metrics_exported(self):
        registry = MetricsRegistry()
        cache = QueryResultCache(4, registry=registry)
        key = CountQuery("sales", "price")
        token = (("sales", (1, 0)),)
        cache.get(key, token)
        cache.put(key, token, "a")
        cache.get(key, token)
        labels = {"query": "CountQuery"}
        assert registry.value(
            "repro_query_cache_misses_total", labels
        ) == 1
        assert registry.value(
            "repro_query_cache_hits_total", labels
        ) == 1


class TestEngineCaching:
    def test_repeat_query_hits(self):
        cache = QueryResultCache(registry=MetricsRegistry())
        engine = build_engine(cache=cache)
        query = CountQuery("sales", "price")
        first = engine.answer(query)
        second = engine.answer(query)
        assert second is first  # served from the cache, not recomputed
        assert cache.stats == {
            "hits": 1,
            "misses": 1,
            "invalidations": 0,
            "evictions": 0,
            "size": 1,
        }

    def test_insert_invalidates(self):
        cache = QueryResultCache(registry=MetricsRegistry())
        engine = build_engine(cache=cache)
        query = CountQuery("sales", "price")
        engine.answer(query)
        engine.warehouse.insert("sales", (3,))
        engine.answer(query)
        assert cache.stats["invalidations"] == 1
        assert cache.stats["hits"] == 0

    def test_load_batch_invalidates(self):
        cache = QueryResultCache(registry=MetricsRegistry())
        engine = build_engine(cache=cache)
        query = CountQuery("sales", "price")
        engine.answer(query)
        engine.warehouse.load_batch(
            "sales", {"price": np.asarray([5, 6], np.int64)}
        )
        engine.answer(query)
        assert cache.stats["invalidations"] == 1

    def test_bump_epoch_invalidates(self):
        # The out-of-band mutation hook: e.g. merging a distributed
        # partial sample into a registered synopsis.
        cache = QueryResultCache(registry=MetricsRegistry())
        engine = build_engine(cache=cache)
        query = CountQuery("sales", "price")
        engine.answer(query)
        engine.bump_epoch("sales")
        engine.answer(query)
        assert cache.stats["invalidations"] == 1

    def test_reregistration_invalidates(self):
        # Snapshot restore re-registers the recovered synopsis, which
        # must not leave pre-crash cached answers live.
        cache = QueryResultCache(registry=MetricsRegistry())
        engine = build_engine(cache=cache)
        query = CountQuery("sales", "price")
        engine.answer(query)
        snapshot = engine.registry.lookup(
            "sales", "price", SAMPLE
        ).to_dict()
        engine.registry.unregister("sales", "price", SAMPLE)
        engine.register_sample(
            "sales", "price", ConciseSample.from_dict(snapshot)
        )
        engine.answer(query)
        assert cache.stats["invalidations"] == 1

    def test_per_relation_isolation(self):
        cache = QueryResultCache(registry=MetricsRegistry())
        engine = build_engine(cache=cache)
        engine.warehouse.create_relation("returns", ["price"])
        engine.register_sample(
            "returns", "price", ConciseSample(64, seed=9)
        )
        engine.warehouse.load_batch(
            "returns", {"price": np.arange(50, dtype=np.int64) % 5}
        )
        sales_query = CountQuery("sales", "price")
        returns_query = CountQuery("returns", "price")
        engine.answer(sales_query)
        engine.answer(returns_query)
        # A load into `returns` must leave the `sales` entry warm.
        engine.warehouse.insert("returns", (1,))
        engine.answer(sales_query)
        engine.answer(returns_query)
        assert cache.stats["hits"] == 1
        assert cache.stats["invalidations"] == 1

    def test_join_query_covers_both_relations(self):
        cache = QueryResultCache(registry=MetricsRegistry())
        warehouse = DataWarehouse()
        warehouse.create_relation("left", ["key"])
        warehouse.create_relation("right", ["key"])
        engine = ApproximateAnswerEngine(warehouse, cache=cache)
        engine.register_hotlist(
            "left", "key", ConciseHotList(32, seed=1)
        )
        engine.register_hotlist(
            "right", "key", ConciseHotList(32, seed=2)
        )
        warehouse.load_batch(
            "left", {"key": np.arange(100, dtype=np.int64) % 7}
        )
        warehouse.load_batch(
            "right", {"key": np.arange(100, dtype=np.int64) % 5}
        )
        query = JoinSizeQuery("left", "key", "right", "key")
        engine.answer(query)
        engine.answer(query)
        assert cache.stats["hits"] == 1
        warehouse.insert("right", (1,))
        engine.answer(query)
        assert cache.stats["invalidations"] == 1

    def test_exact_path_bypasses_cache(self):
        cache = QueryResultCache(registry=MetricsRegistry())
        engine = build_engine(cache=cache)
        query = CountQuery("sales", "price")
        first = engine.answer(query, exact=True)
        second = engine.answer(query, exact=True)
        assert first is not second
        assert second.disk_accesses > 0  # every exact call scans
        assert cache.stats["hits"] == cache.stats["misses"] == 0

    def test_cached_engine_matches_uncached(self):
        cached = build_engine(
            cache=QueryResultCache(registry=MetricsRegistry()), seed=21
        )
        plain = build_engine(cache=None, seed=21)
        queries = [
            CountQuery("sales", "price"),
            FrequencyQuery("sales", "price", value=3),
            HotListQuery("sales", "price", k=5),
        ]
        engines = (cached, plain)
        for _ in range(2):  # repeat round: cached side serves hits
            for query in queries:
                responses = [engine.answer(query) for engine in engines]
                assert responses[0] == responses[1]
            for engine in engines:
                engine.warehouse.insert("sales", (13,))
                engine.warehouse.load_batch(
                    "sales",
                    {"price": np.asarray([1, 2, 2, 13], np.int64)},
                )
        for query in queries:
            assert cached.answer(query) == plain.answer(query)

    def test_tracer_records_cache_outcome(self):
        tracer = QueryTracer(MetricsRegistry(), clock=FakeClock())
        cache = QueryResultCache(registry=MetricsRegistry())
        engine = build_engine(cache=cache, tracer=tracer)
        query = CountQuery("sales", "price")
        engine.answer(query)
        engine.answer(query)
        engine.answer(query, exact=True)
        outcomes = [span.cache for span in tracer.spans()]
        assert outcomes == ["miss", "hit", None]
        assert tracer.spans()[0].to_dict()["cache"] == "miss"

    def test_no_cache_leaves_span_cache_unset(self):
        tracer = QueryTracer(MetricsRegistry(), clock=FakeClock())
        engine = build_engine(cache=None, tracer=tracer)
        engine.answer(CountQuery("sales", "price"))
        assert tracer.spans()[0].cache is None


class TestLookupStatus:
    """``lookup`` reports how it resolved, for the cache_lookup span."""

    def test_statuses(self):
        cache = QueryResultCache(4, registry=MetricsRegistry())
        key = CountQuery("sales", "price")
        token = (("sales", (1, 0)),)
        assert cache.lookup(key, token) == (None, "miss")
        cache.put(key, token, "answer")
        assert cache.lookup(key, token) == ("answer", "hit")
        stale = (("sales", (2, 0)),)
        assert cache.lookup(key, stale) == (None, "invalidated")
        # The invalidated entry is gone: back to a plain miss.
        assert cache.lookup(key, stale) == (None, "miss")

    def test_lookup_and_get_count_identically(self):
        looked = QueryResultCache(4, registry=MetricsRegistry())
        gotten = QueryResultCache(4, registry=MetricsRegistry())
        key = CountQuery("sales", "price")
        token = (("sales", (1, 0)),)
        stale = (("sales", (2, 0)),)
        for cache, probe in ((looked, looked.lookup), (gotten, gotten.get)):
            probe(key, token)
            cache.put(key, token, "answer")
            probe(key, token)
            probe(key, stale)
        assert looked.stats == gotten.stats
