"""RecoveryTracer unit behaviour and its RecoveryManager integration."""

from __future__ import annotations

import pytest

from repro.engine.warehouse import DataWarehouse
from repro.obs import RecoverySpan, RecoveryTracer
from repro.obs.clock import FakeClock
from repro.obs.metrics import MetricsRegistry
from repro.persist import CheckpointStore, ChecksumMismatch, RecoveryManager


class TestTracerUnit:
    def test_checkpoint_span_uses_injected_clock(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        tracer = RecoveryTracer(registry, clock=clock)
        started = tracer.begin()
        clock.advance(0.125)
        span = tracer.record_checkpoint(started, sequence=42)
        assert span.event == "checkpoint"
        assert span.outcome == "ok"
        assert span.duration_seconds == 0.125
        assert span.sequence == 42
        assert registry.value(
            "repro_checkpoints_total", {"outcome": "ok"}
        ) == 1.0

    def test_recovery_span_exports_every_metric(self):
        registry = MetricsRegistry()
        tracer = RecoveryTracer(registry, clock=FakeClock())
        tracer.record_recovery(
            tracer.begin(),
            sequence=17,
            replayed_operations=5,
            checkpoint_sequence=12,
            torn_tail_dropped=True,
        )
        assert registry.value(
            "repro_recovery_runs_total", {"outcome": "ok"}
        ) == 1.0
        assert registry.value(
            "repro_recovery_replayed_operations_total"
        ) == 5.0
        assert registry.value("repro_recovery_torn_tails_total") == 1.0

    def test_failure_outcomes_are_labelled(self):
        registry = MetricsRegistry()
        tracer = RecoveryTracer(registry, clock=FakeClock())
        tracer.record_recovery(
            tracer.begin(),
            sequence=-1,
            replayed_operations=0,
            checkpoint_sequence=-1,
            torn_tail_dropped=False,
            outcome="ChecksumMismatch",
        )
        assert registry.value(
            "repro_recovery_runs_total", {"outcome": "ChecksumMismatch"}
        ) == 1.0

    def test_span_ring_buffer_keeps_newest(self):
        tracer = RecoveryTracer(
            MetricsRegistry(), clock=FakeClock(), max_spans=2
        )
        for sequence in (1, 2, 3):
            tracer.record_checkpoint(tracer.begin(), sequence=sequence)
        assert [span.sequence for span in tracer.spans()] == [2, 3]

    def test_span_to_dict_is_complete(self):
        span = RecoverySpan(
            event="recovery",
            outcome="ok",
            duration_seconds=0.5,
            sequence=9,
            replayed_operations=3,
            checkpoint_sequence=6,
            torn_tail_dropped=False,
        )
        payload = span.to_dict()
        assert payload == {
            "event": "recovery",
            "outcome": "ok",
            "duration_seconds": 0.5,
            "sequence": 9,
            "replayed_operations": 3,
            "checkpoint_sequence": 6,
            "torn_tail_dropped": False,
        }


class TestManagerIntegration:
    def build(self, tmp_path, tracer):
        store = CheckpointStore(tmp_path / "state")
        manager = RecoveryManager(store, tracer=tracer)
        warehouse = DataWarehouse()
        warehouse.create_relation("sales", ["item"])
        manager.attach(warehouse)
        return store, manager, warehouse

    def test_checkpoint_and_recovery_emit_spans(self, tmp_path):
        registry = MetricsRegistry()
        tracer = RecoveryTracer(registry, clock=FakeClock())
        _, manager, warehouse = self.build(tmp_path, tracer)
        for value in range(4):
            warehouse.insert("sales", (value,))
        manager.checkpoint()
        warehouse.insert("sales", (9,))
        manager.detach()

        survivor = RecoveryManager(
            CheckpointStore(tmp_path / "state"), tracer=tracer
        )
        survivor.recover(seed=1)

        events = [span.event for span in tracer.spans()]
        assert events == ["checkpoint", "recovery"]
        checkpoint, recovery = tracer.spans()
        assert checkpoint.sequence == 4
        assert recovery.sequence == 5
        assert recovery.replayed_operations == 1
        assert recovery.checkpoint_sequence == 4
        assert not recovery.torn_tail_dropped
        assert registry.value(
            "repro_recovery_replayed_operations_total"
        ) == 1.0

    def test_failed_recovery_is_traced_with_the_error_name(self, tmp_path):
        registry = MetricsRegistry()
        tracer = RecoveryTracer(registry, clock=FakeClock())
        store, manager, warehouse = self.build(tmp_path, tracer)
        warehouse.insert("sales", (1,))
        manager.checkpoint()
        manager.detach()
        # Corrupt the checkpoint body: recovery must both raise and
        # leave an audit trail in the metrics.
        name = [
            n
            for n in (tmp_path / "state").iterdir()
            if n.name.endswith(".ckpt")
        ][0]
        data = bytearray(name.read_bytes())
        data[30] ^= 0x20
        name.write_bytes(bytes(data))

        survivor = RecoveryManager(
            CheckpointStore(tmp_path / "state"), tracer=tracer
        )
        with pytest.raises(ChecksumMismatch):
            survivor.recover(seed=1)
        assert tracer.spans()[-1].outcome == "ChecksumMismatch"
        assert registry.value(
            "repro_recovery_runs_total", {"outcome": "ChecksumMismatch"}
        ) == 1.0
