"""Warehouse load metering via MeteredLoadObserver."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.engine import DataWarehouse
from repro.obs.clock import FakeClock
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _restore_obs_defaults():
    yield
    obs.disable()


def _warehouse():
    warehouse = DataWarehouse()
    warehouse.create_relation("sales", ["store", "item"])
    return warehouse


class TestRowMetering:
    def test_inserts_and_deletes_split_by_op(self):
        registry = MetricsRegistry()
        observer = obs.MeteredLoadObserver(registry, clock=FakeClock())
        warehouse = _warehouse()
        warehouse.add_observer(observer)
        warehouse.insert("sales", {"store": 1, "item": 2})
        warehouse.insert("sales", {"store": 1, "item": 3})
        warehouse.delete("sales", {"store": 1, "item": 2})
        assert (
            registry.value(
                "repro_load_rows_total",
                {"relation": "sales", "op": "insert"},
            )
            == 2.0
        )
        assert (
            registry.value(
                "repro_load_rows_total",
                {"relation": "sales", "op": "delete"},
            )
            == 1.0
        )
        assert observer.rows_seen("sales") == 3

    def test_batch_metering(self):
        registry = MetricsRegistry()
        observer = obs.MeteredLoadObserver(registry, clock=FakeClock())
        warehouse = _warehouse()
        warehouse.add_observer(observer)
        warehouse.load_batch(
            "sales",
            {
                "store": np.arange(500, dtype=np.int64),
                "item": np.arange(500, dtype=np.int64),
            },
        )
        assert (
            registry.value(
                "repro_load_batches_total", {"relation": "sales"}
            )
            == 1.0
        )
        assert (
            registry.value(
                "repro_load_rows_total",
                {"relation": "sales", "op": "insert"},
            )
            == 500.0
        )
        parsed = obs.parse_prometheus(obs.render_prometheus(registry))
        buckets = parsed["repro_load_batch_rows_bucket"]
        assert (
            buckets[(("le", "1000"), ("relation", "sales"))] == 1.0
        )

    def test_throughput_gauge_uses_injected_clock(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        observer = obs.MeteredLoadObserver(registry, clock=clock)
        warehouse = _warehouse()
        warehouse.add_observer(observer)
        warehouse.load(
            "sales",
            [{"store": 1, "item": v} for v in range(100)],
        )
        clock.advance(4.0)
        registry.collect()
        assert (
            registry.value(
                "repro_load_rows_per_second", {"relation": "sales"}
            )
            == 25.0
        )

    def test_defaults_to_noop_registry(self):
        # Constructing without a registry while obs is disabled writes
        # into the null registry: no errors, nothing retained.
        observer = obs.MeteredLoadObserver(clock=FakeClock())
        warehouse = _warehouse()
        warehouse.add_observer(observer)
        warehouse.insert("sales", {"store": 1, "item": 2})
        assert observer.rows_seen("sales") == 1
