"""Unit tests for hot-list answer types and shared helpers."""

from __future__ import annotations

import pytest

from repro.hotlist.base import (
    HotListAnswer,
    HotListEntry,
    kth_largest,
    order_entries,
)


class TestHotListAnswer:
    def test_empty(self):
        answer = HotListAnswer(k=5)
        assert len(answer) == 0
        assert answer.values() == []
        assert answer.as_dict() == {}

    def test_iteration_and_length(self):
        entries = (HotListEntry(1, 10.0), HotListEntry(2, 5.0))
        answer = HotListAnswer(k=2, entries=entries)
        assert len(answer) == 2
        assert [entry.value for entry in answer] == [1, 2]

    def test_values_in_order(self):
        entries = (HotListEntry(9, 10.0), HotListEntry(4, 5.0))
        assert HotListAnswer(k=2, entries=entries).values() == [9, 4]

    def test_as_dict(self):
        entries = (HotListEntry(9, 10.0),)
        assert HotListAnswer(k=1, entries=entries).as_dict() == {9: 10.0}

    def test_frozen(self):
        answer = HotListAnswer(k=1)
        with pytest.raises(AttributeError):
            answer.k = 2  # type: ignore[misc]


class TestKthLargest:
    def test_basic(self):
        assert kth_largest([5, 1, 9, 3], 2) == 5

    def test_k_equals_length(self):
        assert kth_largest([5, 1, 9], 3) == 1

    def test_fewer_candidates_than_k(self):
        assert kth_largest([5, 1], 3) == 0

    def test_empty(self):
        assert kth_largest([], 1) == 0

    def test_duplicates(self):
        assert kth_largest([4, 4, 4], 2) == 4

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            kth_largest([1], 0)


class TestOrderEntries:
    def test_orders_by_count_descending(self):
        entries = order_entries({1: 5.0, 2: 9.0, 3: 7.0})
        assert [entry.value for entry in entries] == [2, 3, 1]

    def test_ties_break_to_smaller_value(self):
        entries = order_entries({9: 5.0, 2: 5.0})
        assert [entry.value for entry in entries] == [2, 9]

    def test_empty(self):
        assert order_entries({}) == ()
