"""Edge-case tests across modules that the main suites do not reach."""

from __future__ import annotations

import numpy as np
import pytest

from repro.randkit import numpy_generator
from repro.core import ConciseSample, CountingSample, ReservoirSample
from repro.core.base import StreamSynopsis
from repro.randkit.coins import CostCounters
from repro.streams import zipf_stream


class TestSharedCounters:
    def test_one_ledger_many_synopses(self):
        """Several synopses can share one cost ledger; totals add up."""
        shared = CostCounters()
        concise = ConciseSample(50, seed=1, counters=shared)
        counting = CountingSample(50, seed=2, counters=shared)
        stream = zipf_stream(5000, 200, 1.0, seed=3)
        concise.insert_many(stream)
        counting.insert_many(stream)
        assert shared.inserts == 10_000
        # Counting looked up every insert; concise only admitted ones.
        assert shared.lookups > 5000
        # Each synopsis still reports its own relation size.
        assert concise.total_inserted == 5000
        assert counting.total_inserted == 5000

    def test_counters_observable_mid_stream(self):
        sample = ConciseSample(20, seed=4)
        snapshots = []
        for value in zipf_stream(3000, 300, 0.5, seed=5).tolist():
            sample.insert(value)
            snapshots.append(sample.counters.flips)
        assert snapshots == sorted(snapshots)  # flips never decrease


class TestStreamSynopsisDefaults:
    def test_default_insert_array_loops(self):
        class Recorder(StreamSynopsis):
            def __init__(self):
                super().__init__()
                self.seen = []

            def insert(self, value):
                self.seen.append(value)

            @property
            def footprint(self):
                return len(self.seen)

        recorder = Recorder()
        recorder.insert_array(np.array([3, 1, 4]))
        recorder.insert_many([1, 5])
        assert recorder.seen == [3, 1, 4, 1, 5]
        recorder.check_invariants()  # default no-op must not raise


class TestSampleEdgeBehaviours:
    def test_concise_insert_returns_admission(self):
        sample = ConciseSample(1000, seed=6)
        # Threshold 1: everything admitted.
        assert all(sample.insert(v) for v in range(100))

    def test_concise_len_and_contains(self):
        sample = ConciseSample(10, seed=7)
        sample.insert_many([1, 1, 2])
        assert len(sample) == 3
        assert 1 in sample and 3 not in sample

    def test_counting_repr(self):
        sample = CountingSample(10, seed=8)
        sample.insert(1)
        assert "CountingSample" in repr(sample)

    def test_reservoir_estimate_frequency_counts_duplicates(self):
        sample = ReservoirSample(10, seed=9)
        sample.insert_many([4, 4, 4, 5])
        assert sample.estimate_frequency(4) == pytest.approx(3.0)

    def test_empty_insert_array_noop(self):
        for sample in (
            ConciseSample(10, seed=10),
            CountingSample(10, seed=11),
            ReservoirSample(10, seed=12),
        ):
            sample.insert_array(np.empty(0, dtype=np.int64))
            assert sample.counters.inserts == 0

    def test_concise_estimate_frequency_empty(self):
        assert ConciseSample(10, seed=13).estimate_frequency(1) == 0.0

    def test_single_element_stream(self):
        for sample in (
            ConciseSample(2, seed=14),
            CountingSample(2, seed=15),
            ReservoirSample(1, seed=16),
        ):
            sample.insert_array(np.array([42]))
            sample.check_invariants()


class TestFrequencyEstimationConsistency:
    def test_concise_estimate_tracks_truth(self):
        stream = np.concatenate(
            [np.full(9000, 1), np.full(1000, 2)]
        )
        numpy_generator(17).shuffle(stream)
        estimates = []
        for trial in range(30):
            sample = ConciseSample(20, seed=100 + trial)
            sample.insert_array(stream)
            estimates.append(sample.estimate_frequency(1))
        assert float(np.mean(estimates)) == pytest.approx(9000, rel=0.1)

    def test_hotlist_answer_estimates_consistent_with_sample(self):
        from repro.hotlist import ConciseHotList

        stream = zipf_stream(30_000, 200, 1.5, seed=18)
        reporter = ConciseHotList(300, seed=19)
        reporter.insert_array(stream)
        answer = reporter.report(5)
        for entry in answer:
            assert entry.estimated_count == pytest.approx(
                reporter.sample.estimate_frequency(entry.value)
            )
