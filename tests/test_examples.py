"""Smoke tests: every example script runs end-to-end.

Examples are run in-process (import + main()) with their workload
sizes patched down so the whole suite stays fast; what is being tested
is that the public API usage in each script works, not the numbers.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

# Module-level constants to shrink per example file.
_SHRINK = {
    "quickstart.py": {"N": 30_000},
    "hotlist_sales.py": {"TRANSACTIONS": 30_000, "CATALOGUE": 3_000},
    "aqua_engine.py": {"ROWS": 20_000},
    "deletion_workload.py": {"EVENTS": 20_000, "ENDPOINTS": 2_000},
    "histogram_backing.py": {"N": 40_000, "DOMAIN": 4_000},
    "association_rules.py": {"BASKETS": 15_000, "CATALOGUE": 600},
    "query_optimizer.py": {"ROWS": 20_000},
    "persistence.py": {"N": 40_000, "CHECKPOINT_AT": 25_000},
    "serving_demo.py": {"ROWS": 20_000, "DOMAIN": 1_000},
}


def _load_example(filename: str):
    path = EXAMPLES_DIR / filename
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("filename", sorted(_SHRINK))
def test_example_runs(filename, capsys):
    module = _load_example(filename)
    for constant, value in _SHRINK[filename].items():
        assert hasattr(module, constant), (
            f"{filename} lost its {constant} constant"
        )
        setattr(module, constant, value)
    module.main()
    output = capsys.readouterr().out
    assert len(output.splitlines()) >= 5, "example printed too little"


def test_every_example_is_covered():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(_SHRINK), (
        "examples changed: update the smoke-test table"
    )
