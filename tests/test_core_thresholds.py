"""Unit tests for threshold-raise policies."""

from __future__ import annotations

import pytest

from repro.core.thresholds import (
    BinarySearchRaise,
    MultiplicativeRaise,
    SingletonBoundRaise,
    expected_footprint_decrease,
)


class _FakeSample:
    """Minimal _SampleState for policy unit tests."""

    def __init__(self, threshold, footprint, bound, histogram):
        self.threshold = threshold
        self.footprint = footprint
        self.footprint_bound = bound
        self._histogram = histogram

    def count_histogram(self):
        return self._histogram


class TestMultiplicativeRaise:
    def test_factor_applied(self):
        policy = MultiplicativeRaise(1.5)
        sample = _FakeSample(10.0, 100, 99, {1: 100})
        assert policy.next_threshold(sample) == pytest.approx(15.0)

    def test_default_is_paper_ten_percent(self):
        assert MultiplicativeRaise().factor == pytest.approx(1.1)

    def test_rejects_non_raising_factor(self):
        with pytest.raises(ValueError):
            MultiplicativeRaise(1.0)
        with pytest.raises(ValueError):
            MultiplicativeRaise(0.5)

    def test_repr(self):
        assert "1.1" in repr(MultiplicativeRaise(1.1))


class TestExpectedFootprintDecrease:
    def test_keep_all_decreases_nothing(self):
        assert expected_footprint_decrease({1: 10, 5: 3}, 1.0) == 0.0

    def test_keep_none_frees_everything(self):
        # 10 singletons (10 words) + 3 pairs (6 words).
        decrease = expected_footprint_decrease({1: 10, 5: 3}, 0.0)
        assert decrease == pytest.approx(16.0)

    def test_singleton_only(self):
        # Each singleton evicted with probability 1-q frees one word.
        decrease = expected_footprint_decrease({1: 100}, 0.75)
        assert decrease == pytest.approx(25.0)

    def test_pair_accounting(self):
        q = 0.5
        count = 2
        p_zero = (1 - q) ** count
        p_one = count * q * (1 - q)
        expected = p_one + 2 * p_zero
        assert expected_footprint_decrease({2: 1}, q) == pytest.approx(
            expected
        )

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            expected_footprint_decrease({1: 1}, 1.5)

    def test_ignores_nonpositive_counts(self):
        assert expected_footprint_decrease({0: 5, -1: 2}, 0.5) == 0.0


class TestSingletonBoundRaise:
    def test_uses_singleton_formula(self):
        policy = SingletonBoundRaise(decrease_fraction=0.1)
        # footprint 100, desired decrease = 10, singletons = 50:
        # tau' = tau / (1 - 10/50) = tau / 0.8.
        sample = _FakeSample(8.0, 100, 100, {1: 50, 3: 25})
        assert policy.next_threshold(sample) == pytest.approx(8.0 / 0.8)

    def test_fallback_when_few_singletons(self):
        policy = SingletonBoundRaise(
            decrease_fraction=0.5, fallback_factor=3.0
        )
        sample = _FakeSample(4.0, 100, 100, {1: 2, 10: 49})
        assert policy.next_threshold(sample) == pytest.approx(12.0)

    def test_desired_covers_overflow(self):
        """When the footprint is above the bound, the desired decrease
        at least covers the overflow."""
        policy = SingletonBoundRaise(decrease_fraction=0.01)
        sample = _FakeSample(2.0, 120, 100, {1: 100, 5: 10})
        # desired = max(1, 1.2, 20) = 20; tau' = 2 / (1 - 20/100).
        assert policy.next_threshold(sample) == pytest.approx(2.0 / 0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            SingletonBoundRaise(decrease_fraction=0.0)
        with pytest.raises(ValueError):
            SingletonBoundRaise(fallback_factor=1.0)

    def test_result_always_higher(self):
        policy = SingletonBoundRaise()
        sample = _FakeSample(5.0, 101, 100, {1: 80, 2: 10})
        assert policy.next_threshold(sample) > 5.0


class TestBinarySearchRaise:
    def test_meets_target_in_expectation(self):
        policy = BinarySearchRaise(decrease_fraction=0.05)
        histogram = {1: 60, 2: 10, 5: 10}
        footprint = 60 + 2 * 20
        sample = _FakeSample(10.0, footprint, footprint, histogram)
        new_threshold = policy.next_threshold(sample)
        keep = 10.0 / new_threshold
        desired = max(1.0, 0.05 * footprint)
        assert expected_footprint_decrease(histogram, keep) >= desired * 0.99

    def test_not_grossly_overshooting(self):
        """Binary search should land near the minimal sufficient raise,
        far below the max factor."""
        policy = BinarySearchRaise(decrease_fraction=0.05, max_factor=64.0)
        histogram = {1: 100}
        sample = _FakeSample(10.0, 100, 100, histogram)
        new_threshold = policy.next_threshold(sample)
        # Singletons only: need (1 - tau/tau') * 100 >= 5, i.e.
        # tau' >= tau / 0.95 ~ 10.53.
        assert new_threshold == pytest.approx(10.0 / 0.95, rel=0.02)

    def test_max_factor_when_target_unreachable(self):
        policy = BinarySearchRaise(
            decrease_fraction=0.99, max_factor=4.0, iterations=10
        )
        # One giant pair: expected decrease is tiny for any raise.
        sample = _FakeSample(2.0, 2, 2, {10_000: 1})
        assert policy.next_threshold(sample) == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BinarySearchRaise(decrease_fraction=1.5)
        with pytest.raises(ValueError):
            BinarySearchRaise(max_factor=1.0)
        with pytest.raises(ValueError):
            BinarySearchRaise(iterations=0)


class TestPoliciesEndToEnd:
    @pytest.mark.parametrize(
        "policy",
        [
            MultiplicativeRaise(1.1),
            MultiplicativeRaise(2.0),
            SingletonBoundRaise(),
            BinarySearchRaise(),
        ],
        ids=["mult-1.1", "mult-2.0", "singleton", "binary-search"],
    )
    def test_concise_sample_converges(self, policy):
        from repro.core.concise import ConciseSample
        from repro.streams import zipf_stream

        sample = ConciseSample(64, seed=1, policy=policy)
        sample.insert_array(zipf_stream(30_000, 3000, 0.7, seed=2))
        assert sample.footprint <= 64
        assert sample.sample_size >= 32
        sample.check_invariants()

    @pytest.mark.parametrize(
        "policy",
        [MultiplicativeRaise(1.1), SingletonBoundRaise(), BinarySearchRaise()],
        ids=["mult", "singleton", "binary-search"],
    )
    def test_counting_sample_converges(self, policy):
        from repro.core.counting import CountingSample
        from repro.streams import zipf_stream

        sample = CountingSample(64, seed=3, policy=policy)
        sample.insert_array(zipf_stream(30_000, 3000, 0.7, seed=4))
        assert sample.footprint <= 64
        sample.check_invariants()
