"""Unit tests for synopsis registration and memory budgeting."""

from __future__ import annotations

import pytest

from repro.core.concise import ConciseSample
from repro.engine.registry import (
    BudgetExceeded,
    SynopsisRegistry,
)


class _Fixed:
    """A fake synopsis with a fixed footprint and no bound."""

    def __init__(self, footprint: int) -> None:
        self.footprint = footprint


class TestRegistration:
    def test_register_and_lookup(self):
        registry = SynopsisRegistry()
        synopsis = _Fixed(10)
        registry.register("r", "a", "sample", synopsis)
        assert registry.lookup("r", "a", "sample") is synopsis
        assert registry.lookup("r", "a", "hotlist") is None
        assert len(registry) == 1

    def test_duplicate_key_rejected(self):
        registry = SynopsisRegistry()
        registry.register("r", "a", "sample", _Fixed(1))
        with pytest.raises(ValueError):
            registry.register("r", "a", "sample", _Fixed(1))

    def test_unknown_role_rejected(self):
        registry = SynopsisRegistry()
        with pytest.raises(ValueError):
            registry.register("r", "a", "mystery", _Fixed(1))

    def test_unregister(self):
        registry = SynopsisRegistry()
        registry.register("r", "a", "sample", _Fixed(1))
        registry.unregister("r", "a", "sample")
        assert registry.lookup("r", "a", "sample") is None
        with pytest.raises(KeyError):
            registry.unregister("r", "a", "sample")

    def test_for_attribute(self):
        registry = SynopsisRegistry()
        sample = _Fixed(1)
        hotlist = _Fixed(2)
        registry.register("r", "a", "sample", sample)
        registry.register("r", "a", "hotlist", hotlist)
        registry.register("r", "b", "sample", _Fixed(3))
        found = dict(registry.for_attribute("r", "a"))
        assert found == {"sample": sample, "hotlist": hotlist}

    def test_reserved_defaults_to_footprint_bound(self):
        registry = SynopsisRegistry()
        sample = ConciseSample(100, seed=1)
        registry.register("r", "a", "sample", sample)
        assert registry.reserved_total() == 100


class TestBudget:
    def test_budget_enforced(self):
        registry = SynopsisRegistry(budget_words=100)
        registry.register("r", "a", "sample", _Fixed(60))
        with pytest.raises(BudgetExceeded):
            registry.register("r", "b", "sample", _Fixed(50))

    def test_budget_exact_fit_allowed(self):
        registry = SynopsisRegistry(budget_words=100)
        registry.register("r", "a", "sample", _Fixed(60))
        registry.register("r", "b", "sample", _Fixed(40))
        assert registry.reserved_total() == 100

    def test_unregister_frees_budget(self):
        registry = SynopsisRegistry(budget_words=100)
        registry.register("r", "a", "sample", _Fixed(80))
        registry.unregister("r", "a", "sample")
        registry.register("r", "b", "sample", _Fixed(90))

    def test_shared_object_reserved_once(self):
        """One synopsis under two roles reserves memory once."""
        registry = SynopsisRegistry(budget_words=100)
        shared = _Fixed(80)
        registry.register("r", "a", "sample", shared)
        registry.register("r", "a", "hotlist", shared)
        assert registry.reserved_total() == 80

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            SynopsisRegistry(budget_words=-1)

    def test_negative_reservation_rejected(self):
        registry = SynopsisRegistry()
        with pytest.raises(ValueError):
            registry.register(
                "r", "a", "sample", _Fixed(1), reserved_words=-5
            )

    def test_footprint_total(self):
        registry = SynopsisRegistry()
        registry.register("r", "a", "sample", _Fixed(7))
        registry.register("r", "b", "sample", _Fixed(5))
        assert registry.footprint_total() == 12
