"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams import zipf_stream


@pytest.fixture
def skewed_stream() -> np.ndarray:
    """A moderately skewed Zipf stream (z=1.5, D=500, n=20K)."""
    return zipf_stream(20_000, 500, 1.5, seed=101)


@pytest.fixture
def uniform_stream_small() -> np.ndarray:
    """A uniform stream (z=0, D=500, n=20K)."""
    return zipf_stream(20_000, 500, 0.0, seed=102)


@pytest.fixture
def trial_seeds() -> list[int]:
    """Seeds for multi-trial statistical assertions."""
    return list(range(40, 60))
