"""Query-path tracing: spans, metrics, and the engine integration."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import ConciseSample
from repro.engine import (
    ApproximateAnswerEngine,
    CountQuery,
    DataWarehouse,
    FrequencyQuery,
    JoinSizeQuery,
)
from repro.engine.engine import NoSynopsisError
from repro.estimators import Predicate
from repro.obs.clock import FakeClock
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _restore_obs_defaults():
    yield
    obs.disable()


def _engine(tracer=None):
    warehouse = DataWarehouse()
    warehouse.create_relation("sales", ["item"])
    engine = ApproximateAnswerEngine(warehouse, tracer=tracer)
    engine.register_sample("sales", "item", ConciseSample(500, seed=1))
    warehouse.load("sales", [{"item": v % 50} for v in range(2_000)])
    return engine


class TestTracerUnit:
    def test_span_duration_uses_injected_clock(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        tracer = obs.QueryTracer(registry, clock=clock)
        started = tracer.begin()
        clock.advance(0.25)

        class Response:
            method = "sample"
            is_exact = False
            answer = 42.0
            interval = None
            exact_cost_estimate = 100

        span = tracer.record(
            CountQuery("sales", "item", None), Response(), started
        )
        assert span.duration_seconds == 0.25
        assert span.query == "CountQuery"
        assert span.relation == "sales"
        assert span.attribute == "item"
        assert span.method == "sample"
        assert span.answer == 42.0
        assert span.exact_cost_estimate == 100
        assert span.error is None

    def test_error_span_and_metric(self):
        registry = MetricsRegistry()
        tracer = obs.QueryTracer(registry, clock=FakeClock())
        started = tracer.begin()
        span = tracer.record_error(
            CountQuery("sales", "item", None),
            NoSynopsisError("nope"),
            started,
        )
        assert span.method == "error"
        assert span.error == "NoSynopsisError"
        assert (
            registry.value(
                "repro_query_errors_total",
                {"query": "CountQuery", "error": "NoSynopsisError"},
            )
            == 1.0
        )

    def test_ring_buffer_caps_spans(self):
        tracer = obs.QueryTracer(
            MetricsRegistry(), clock=FakeClock(), max_spans=3
        )
        query = CountQuery("sales", "item", None)

        class Response:
            method = "sample"
            is_exact = False
            answer = 1.0
            interval = None
            exact_cost_estimate = 0

        for _ in range(5):
            tracer.record(query, Response(), tracer.begin())
        assert len(tracer.spans()) == 3

    def test_join_query_target(self):
        tracer = obs.QueryTracer(MetricsRegistry(), clock=FakeClock())
        span = tracer.record_error(
            JoinSizeQuery("orders", "item", "sales", "item"),
            RuntimeError("x"),
            tracer.begin(),
        )
        assert span.relation == "orders*sales"
        assert span.attribute == "item*item"

    def test_span_to_dict_is_jsonable(self):
        import json

        tracer = obs.QueryTracer(MetricsRegistry(), clock=FakeClock())
        span = tracer.record_error(
            CountQuery("sales", "item", None), ValueError("x"), 0.0
        )
        payload = json.loads(json.dumps(span.to_dict()))
        assert payload["query"] == "CountQuery"
        assert payload["error"] == "ValueError"


class TestEngineIntegration:
    def test_untraced_engine_answers_normally(self):
        engine = _engine(tracer=None)
        response = engine.answer(
            CountQuery("sales", "item", Predicate(high=10))
        )
        assert response.answer > 0

    def test_traced_query_records_span_and_metrics(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        tracer = obs.QueryTracer(registry, clock=clock)
        engine = _engine(tracer=tracer)
        response = engine.answer(FrequencyQuery("sales", "item", value=1))
        (span,) = tracer.spans()
        assert span.query == "FrequencyQuery"
        assert span.is_exact is False
        assert span.requested_exact is False
        assert span.answer == response.answer
        assert span.interval_low == response.interval.low
        assert span.interval_high == response.interval.high
        assert span.confidence == response.interval.confidence
        assert (
            registry.value(
                "repro_queries_total",
                {
                    "query": "FrequencyQuery",
                    "method": "sample",
                    "exact": "false",
                },
            )
            == 1.0
        )

    def test_exact_fallback_is_recorded(self):
        registry = MetricsRegistry()
        tracer = obs.QueryTracer(registry, clock=FakeClock())
        engine = _engine(tracer=tracer)
        engine.answer(
            CountQuery("sales", "item", Predicate(high=10)), exact=True
        )
        (span,) = tracer.spans()
        assert span.is_exact is True
        assert span.requested_exact is True
        assert (
            registry.value(
                "repro_exact_fallbacks_total", {"query": "CountQuery"}
            )
            == 1.0
        )

    def test_engine_error_is_traced_and_reraised(self):
        registry = MetricsRegistry()
        tracer = obs.QueryTracer(registry, clock=FakeClock())
        engine = _engine(tracer=tracer)
        with pytest.raises(NoSynopsisError):
            engine.answer(CountQuery("sales", "missing", None))
        (span,) = tracer.spans()
        assert span.error == "NoSynopsisError"
        assert span.method == "error"

    def test_tracer_attachable_after_construction(self):
        engine = _engine(tracer=None)
        tracer = obs.QueryTracer(MetricsRegistry(), clock=FakeClock())
        engine.tracer = tracer
        engine.answer(CountQuery("sales", "item", Predicate(high=10)))
        assert len(tracer.spans()) == 1
