"""Query-path tracing: spans, metrics, and the engine integration."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import ConciseSample
from repro.engine import (
    ApproximateAnswerEngine,
    CountQuery,
    DataWarehouse,
    FrequencyQuery,
    JoinSizeQuery,
)
from repro.engine.engine import NoSynopsisError
from repro.estimators import Predicate
from repro.obs.clock import FakeClock
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _restore_obs_defaults():
    yield
    obs.disable()


def _engine(tracer=None):
    warehouse = DataWarehouse()
    warehouse.create_relation("sales", ["item"])
    engine = ApproximateAnswerEngine(warehouse, tracer=tracer)
    engine.register_sample("sales", "item", ConciseSample(500, seed=1))
    warehouse.load("sales", [{"item": v % 50} for v in range(2_000)])
    return engine


class TestTracerUnit:
    def test_span_duration_uses_injected_clock(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        tracer = obs.QueryTracer(registry, clock=clock)
        started = tracer.begin()
        clock.advance(0.25)

        class Response:
            method = "sample"
            is_exact = False
            answer = 42.0
            interval = None
            exact_cost_estimate = 100

        span = tracer.record(
            CountQuery("sales", "item", None), Response(), started
        )
        assert span.duration_seconds == 0.25
        assert span.query == "CountQuery"
        assert span.relation == "sales"
        assert span.attribute == "item"
        assert span.method == "sample"
        assert span.answer == 42.0
        assert span.exact_cost_estimate == 100
        assert span.error is None

    def test_error_span_and_metric(self):
        registry = MetricsRegistry()
        tracer = obs.QueryTracer(registry, clock=FakeClock())
        started = tracer.begin()
        span = tracer.record_error(
            CountQuery("sales", "item", None),
            NoSynopsisError("nope"),
            started,
        )
        assert span.method == "error"
        assert span.error == "NoSynopsisError"
        assert (
            registry.value(
                "repro_query_errors_total",
                {"query": "CountQuery", "error": "NoSynopsisError"},
            )
            == 1.0
        )

    def test_ring_buffer_caps_spans(self):
        tracer = obs.QueryTracer(
            MetricsRegistry(), clock=FakeClock(), max_spans=3
        )
        query = CountQuery("sales", "item", None)

        class Response:
            method = "sample"
            is_exact = False
            answer = 1.0
            interval = None
            exact_cost_estimate = 0

        for _ in range(5):
            tracer.record(query, Response(), tracer.begin())
        assert len(tracer.spans()) == 3

    def test_join_query_target(self):
        tracer = obs.QueryTracer(MetricsRegistry(), clock=FakeClock())
        span = tracer.record_error(
            JoinSizeQuery("orders", "item", "sales", "item"),
            RuntimeError("x"),
            tracer.begin(),
        )
        assert span.relation == "orders*sales"
        assert span.attribute == "item*item"

    def test_span_to_dict_is_jsonable(self):
        import json

        tracer = obs.QueryTracer(MetricsRegistry(), clock=FakeClock())
        span = tracer.record_error(
            CountQuery("sales", "item", None), ValueError("x"), 0.0
        )
        payload = json.loads(json.dumps(span.to_dict()))
        assert payload["query"] == "CountQuery"
        assert payload["error"] == "ValueError"


class TestEngineIntegration:
    def test_untraced_engine_answers_normally(self):
        engine = _engine(tracer=None)
        response = engine.answer(
            CountQuery("sales", "item", Predicate(high=10))
        )
        assert response.answer > 0

    def test_traced_query_records_span_and_metrics(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        tracer = obs.QueryTracer(registry, clock=clock)
        engine = _engine(tracer=tracer)
        response = engine.answer(FrequencyQuery("sales", "item", value=1))
        (span,) = tracer.spans()
        assert span.query == "FrequencyQuery"
        assert span.is_exact is False
        assert span.requested_exact is False
        assert span.answer == response.answer
        assert span.interval_low == response.interval.low
        assert span.interval_high == response.interval.high
        assert span.confidence == response.interval.confidence
        assert (
            registry.value(
                "repro_queries_total",
                {
                    "query": "FrequencyQuery",
                    "method": "sample",
                    "exact": "false",
                },
            )
            == 1.0
        )

    def test_exact_fallback_is_recorded(self):
        registry = MetricsRegistry()
        tracer = obs.QueryTracer(registry, clock=FakeClock())
        engine = _engine(tracer=tracer)
        engine.answer(
            CountQuery("sales", "item", Predicate(high=10)), exact=True
        )
        (span,) = tracer.spans()
        assert span.is_exact is True
        assert span.requested_exact is True
        assert (
            registry.value(
                "repro_exact_fallbacks_total", {"query": "CountQuery"}
            )
            == 1.0
        )

    def test_engine_error_is_traced_and_reraised(self):
        registry = MetricsRegistry()
        tracer = obs.QueryTracer(registry, clock=FakeClock())
        engine = _engine(tracer=tracer)
        with pytest.raises(NoSynopsisError):
            engine.answer(CountQuery("sales", "missing", None))
        (span,) = tracer.spans()
        assert span.error == "NoSynopsisError"
        assert span.method == "error"

    def test_tracer_attachable_after_construction(self):
        engine = _engine(tracer=None)
        tracer = obs.QueryTracer(MetricsRegistry(), clock=FakeClock())
        engine.tracer = tracer
        engine.answer(CountQuery("sales", "item", Predicate(high=10)))
        assert len(tracer.spans()) == 1


class TestTraceTrees:
    """Trace identity, child spans, and the single-export drain."""

    def test_trace_ids_are_deterministic_sequences(self):
        tracer = obs.QueryTracer(MetricsRegistry(), clock=FakeClock())
        first = tracer.start_trace()
        second = tracer.start_trace()
        prefix = first.trace_id.rsplit("-", 1)[0]
        assert first.trace_id == f"{prefix}-00000001"
        assert second.trace_id == f"{prefix}-00000002"
        assert first.root_span_id == f"{first.trace_id}:0"

    def test_tracers_get_distinct_prefixes(self):
        registry = MetricsRegistry()
        one = obs.QueryTracer(registry, clock=FakeClock())
        two = obs.QueryTracer(registry, clock=FakeClock())
        assert (
            one.start_trace().trace_id.rsplit("-", 1)[0]
            != two.start_trace().trace_id.rsplit("-", 1)[0]
        )

    def test_child_scope_times_and_parents(self):
        clock = FakeClock()
        tracer = obs.QueryTracer(MetricsRegistry(), clock=clock)
        trace = tracer.start_trace()
        with tracer.child(trace, "cache_lookup") as scope:
            clock.advance(0.1)
            scope.status = "miss"
        with tracer.child(trace, "synopsis_answer"):
            clock.advance(0.2)
        first, second = trace.children
        assert first.name == "cache_lookup"
        assert first.status == "miss"
        assert first.duration_seconds == pytest.approx(0.1)
        assert first.span_id == f"{trace.trace_id}:1"
        assert first.parent_id == trace.root_span_id
        assert second.span_id == f"{trace.trace_id}:2"
        assert second.duration_seconds == pytest.approx(0.2)

    def test_child_exception_marks_error_and_propagates(self):
        tracer = obs.QueryTracer(MetricsRegistry(), clock=FakeClock())
        trace = tracer.start_trace()
        with pytest.raises(RuntimeError):
            with tracer.child(trace, "audit_shadow"):
                raise RuntimeError("boom")
        (child,) = trace.children
        assert child.status == "error"

    def test_finish_attaches_children_to_span(self):
        tracer = obs.QueryTracer(MetricsRegistry(), clock=FakeClock())
        trace = tracer.start_trace()
        with tracer.child(trace, "synopsis_answer"):
            pass

        class Response:
            method, is_exact, answer, interval = "sample", False, 1.0, None

        span = tracer.finish(
            trace, CountQuery("sales", "item", None), Response(),
            cache="miss",
        )
        assert span.trace_id == trace.trace_id
        assert span.parent_id is None
        assert span.cache == "miss"
        assert [c.name for c in span.children] == ["synopsis_answer"]
        # Children are exported flat, never inlined in to_dict.
        assert "children" not in span.to_dict()

    def test_drain_empties_the_ring(self):
        tracer = obs.QueryTracer(MetricsRegistry(), clock=FakeClock())

        class Response:
            method, is_exact, answer, interval = "sample", False, 1.0, None

        for _ in range(3):
            tracer.record(
                CountQuery("sales", "item", None), Response(), tracer.begin()
            )
        drained = tracer.drain()
        assert len(drained) == 3
        assert tracer.spans() == ()
        assert tracer.drain() == ()


class TestAnswerSummaries:
    def test_hotlist_span_carries_cardinality_and_top(self):
        from repro.engine import HotListQuery
        from repro.hotlist.concise import ConciseHotList

        tracer = obs.QueryTracer(MetricsRegistry(), clock=FakeClock())
        engine = _engine(tracer)
        engine.register_hotlist(
            "sales", "item", ConciseHotList(400, seed=3)
        )
        engine.warehouse.load(
            "sales", [{"item": v % 50} for v in range(2_000)]
        )
        response = engine.answer(HotListQuery("sales", "item", k=5))
        span = tracer.spans()[-1]
        entries = response.answer.entries
        assert span.result_cardinality == len(entries)
        assert span.top_value == int(entries[0].value)
        assert span.top_count == pytest.approx(
            entries[0].estimated_count
        )
        assert span.answer is None  # structured, not scalar

    def test_scalar_span_has_no_summary(self):
        tracer = obs.QueryTracer(MetricsRegistry(), clock=FakeClock())
        engine = _engine(tracer)
        engine.answer(CountQuery("sales", "item", Predicate(high=10)))
        span = tracer.spans()[-1]
        assert span.result_cardinality is None
        assert span.top_value is None
        assert span.top_count is None


class TestEngineChildSpans:
    def test_cached_engine_emits_phase_children(self):
        from repro.engine.cache import QueryResultCache

        registry = MetricsRegistry()
        tracer = obs.QueryTracer(registry, clock=FakeClock())
        engine = _engine(tracer)
        engine.cache = QueryResultCache(capacity=8, registry=registry)
        query = CountQuery("sales", "item", Predicate(high=10))
        engine.answer(query)
        engine.answer(query)
        miss_span, hit_span = tracer.spans()
        assert [c.name for c in miss_span.children] == [
            "cache_lookup",
            "synopsis_answer",
        ]
        assert miss_span.children[0].status == "miss"
        assert miss_span.cache == "miss"
        assert [c.name for c in hit_span.children] == ["cache_lookup"]
        assert hit_span.children[0].status == "hit"
        assert hit_span.cache == "hit"

    def test_uncached_engine_emits_synopsis_child_only(self):
        tracer = obs.QueryTracer(MetricsRegistry(), clock=FakeClock())
        engine = _engine(tracer)
        engine.answer(CountQuery("sales", "item", Predicate(high=10)))
        (span,) = tracer.spans()
        assert [c.name for c in span.children] == ["synopsis_answer"]
        assert span.cache is None

    def test_exact_fallback_child(self):
        tracer = obs.QueryTracer(MetricsRegistry(), clock=FakeClock())
        engine = _engine(tracer)
        engine.answer(CountQuery("sales", "item", None), exact=True)
        (span,) = tracer.spans()
        assert [c.name for c in span.children] == ["exact_fallback"]
        assert span.cache is None

    def test_audit_shadow_child(self):
        from repro.obs.audit import CalibrationAuditor

        registry = MetricsRegistry()
        tracer = obs.QueryTracer(registry, clock=FakeClock())
        engine = _engine(tracer)
        engine.auditor = CalibrationAuditor(
            1.0, seed=4, registry=registry
        )
        engine.answer(CountQuery("sales", "item", Predicate(high=10)))
        (span,) = tracer.spans()
        assert [c.name for c in span.children] == [
            "synopsis_answer",
            "audit_shadow",
        ]
        assert all(c.status == "ok" for c in span.children)
