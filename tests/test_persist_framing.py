"""CRC frame codec: round-trip properties and crash-signature triage.

The recovery contract rests on :mod:`repro.persist.framing` being able
to classify any byte-level damage: a truncation (what a torn write
leaves) is reported as a :class:`TornTail`, and a bit flip (what real
corruption looks like) raises :class:`ChecksumMismatch` -- the header
carries its own CRC, so even a flipped length field is corruption, not
a torn tail, and never a silent clean decode.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.persist.errors import ChecksumMismatch
from repro.persist.framing import (
    HEADER_LENGTH,
    TornTail,
    decode_frames,
    encode_frame,
    encode_frames,
    iter_frames,
)

payloads = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(
        st.integers(min_value=-(2**40), max_value=2**40),
        st.text(max_size=16),
        st.booleans(),
        st.none(),
        st.lists(st.integers(min_value=0, max_value=99), max_size=4),
    ),
    max_size=5,
)


class TestRoundTrip:
    @given(payload=payloads)
    def test_single_frame_round_trips(self, payload):
        frames, torn = decode_frames(
            encode_frame(payload), source="test"
        )
        assert torn is None
        assert frames == [payload]

    @given(items=st.lists(payloads, max_size=6))
    def test_concatenated_frames_round_trip(self, items):
        data = b"".join(encode_frame(item) for item in items)
        frames, torn = decode_frames(data, source="test")
        assert torn is None
        assert frames == items

    def test_encoding_is_deterministic(self):
        payload = {"b": 2, "a": 1, "nested": [3, 1]}
        assert encode_frame(payload) == encode_frame(dict(payload))
        # Key order must not matter (sorted-keys canonical form).
        assert encode_frame({"a": 1, "b": 2}) == encode_frame(
            {"b": 2, "a": 1}
        )

    def test_header_is_fixed_width(self):
        frame = encode_frame({"x": 1})
        assert frame[8:9] == b" " and frame[17:18] == b" "
        assert frame[26:27] == b" "
        assert frame.endswith(b"\n")
        assert int(frame[0:8], 16) == len(frame) - HEADER_LENGTH - 1

    def test_header_carries_its_own_checksum(self):
        import zlib

        frame = encode_frame({"x": 1})
        assert int(frame[18:26], 16) == zlib.crc32(frame[:18])

    def test_empty_data_decodes_clean(self):
        assert decode_frames(b"", source="test") == ([], None)


class TestTruncation:
    """Every possible truncation reads as a torn tail, never corruption."""

    def test_every_cut_point_is_torn_or_clean(self):
        records = [{"kind": "op", "sequence": n} for n in range(4)]
        data = b"".join(encode_frame(record) for record in records)
        boundaries = set()
        offset = 0
        for record in records:
            offset += len(encode_frame(record))
            boundaries.add(offset)
        boundaries.add(0)
        for cut in range(len(data) + 1):
            frames, torn = decode_frames(data[:cut], source="test")
            assert frames == records[: len(frames)]
            if cut in boundaries:
                assert torn is None, f"cut at boundary {cut}"
            else:
                assert isinstance(torn, TornTail), f"cut at {cut}"
                assert 0 <= torn.offset <= cut

    @given(
        payload=payloads,
        fraction=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    )
    def test_truncated_single_frame_reports_torn(self, payload, fraction):
        data = encode_frame(payload)
        cut = int(len(data) * fraction)
        frames, torn = decode_frames(data[:cut], source="test")
        assert frames == []
        if cut == 0:
            assert torn is None
        else:
            assert torn is not None and torn.offset == 0


class TestBitFlips:
    """Flipped bits never decode silently clean."""

    @settings(max_examples=200)
    @given(
        position=st.integers(min_value=0),
        bit=st.integers(min_value=0, max_value=7),
    )
    def test_single_bit_flip_is_detected(self, position, bit):
        records = [
            {"kind": "op", "sequence": 1, "row": [4, 2]},
            {"kind": "op", "sequence": 2, "row": [1, 9]},
        ]
        data = bytearray(
            b"".join(encode_frame(record) for record in records)
        )
        position %= len(data)
        data[position] ^= 1 << bit
        # With the header self-checked, every single-bit flip in a
        # complete frame stream is definitively corruption -- a flipped
        # length field can no longer masquerade as a torn tail.
        with pytest.raises(ChecksumMismatch):
            decode_frames(bytes(data), source="test")

    def test_flip_in_body_raises_checksum_mismatch(self):
        data = bytearray(encode_frame({"kind": "op", "sequence": 7}))
        data[HEADER_LENGTH] ^= 0x01
        with pytest.raises(ChecksumMismatch) as excinfo:
            decode_frames(bytes(data), source="seg")
        assert excinfo.value.source == "seg"

    def test_malformed_complete_header_is_corruption(self):
        data = bytearray(encode_frame({"x": 1}))
        data[3] = ord("z")  # not a hex digit: no torn write does this
        with pytest.raises(ChecksumMismatch, match="malformed frame header"):
            decode_frames(bytes(data), source="seg")

    def test_malformed_partial_header_is_corruption(self):
        fragment = b"000000zz"  # ends mid-header but not prefix-shaped
        with pytest.raises(ChecksumMismatch, match="partial header"):
            decode_frames(fragment, source="seg")

    def test_corrupt_terminator_is_corruption(self):
        first = bytearray(encode_frame({"x": 1}))
        first[-1] = ord("X")
        data = bytes(first) + encode_frame({"x": 2})
        with pytest.raises(ChecksumMismatch, match="terminator"):
            decode_frames(data, source="seg")

    def test_corrupt_length_field_is_corruption_not_torn(self):
        # A corrupted length that still parses as hex would make the
        # frame appear to run past EOF -- the header checksum catches
        # it, so tolerant recovery never tail-drops acked records
        # behind a flipped length.
        data = bytearray(encode_frame({"x": 1}))
        data[0:8] = b"0000ffff"
        with pytest.raises(ChecksumMismatch, match="header"):
            decode_frames(bytes(data), source="seg")

    def test_truncation_mid_payload_still_reads_as_torn(self):
        data = encode_frame({"x": 1})
        frames, torn = decode_frames(data[:-3], source="seg")
        assert frames == []
        assert torn is not None and torn.reason == "incomplete payload"


class TestBatchEncoding:
    """encode_frames is byte-identical to concatenated encode_frame."""

    @given(items=st.lists(payloads, max_size=8))
    def test_matches_concatenated_single_frames(self, items):
        expected = b"".join(encode_frame(item) for item in items)
        assert encode_frames(items) == expected

    def test_empty_batch_is_empty_buffer(self):
        assert encode_frames([]) == b""

    def test_accepts_any_iterable(self):
        generated = encode_frames(
            {"sequence": n} for n in range(3)
        )
        listed = encode_frames([{"sequence": n} for n in range(3)])
        assert generated == listed


class TestStreamingDecode:
    """iter_frames matches decode_frames at every chunk size."""

    RECORDS = [
        {"kind": "op", "sequence": n, "row": [n, n * 2]} for n in range(5)
    ]

    def _stream(self, data: bytes, chunk_size: int):
        cursor = iter_frames(
            io.BytesIO(data), source="test", chunk_size=chunk_size
        )
        return list(cursor), cursor.torn

    @pytest.mark.parametrize("chunk_size", [1, 2, 7, 64, 1 << 16])
    def test_clean_stream_round_trips(self, chunk_size):
        data = encode_frames(self.RECORDS)
        frames, torn = self._stream(data, chunk_size)
        assert frames == self.RECORDS
        assert torn is None

    @pytest.mark.parametrize("chunk_size", [1, 3, 64])
    def test_every_cut_matches_whole_buffer_decode(self, chunk_size):
        data = encode_frames(self.RECORDS)
        for cut in range(len(data) + 1):
            expected_frames, expected_torn = decode_frames(
                data[:cut], source="test"
            )
            frames, torn = self._stream(data[:cut], chunk_size)
            assert frames == expected_frames, f"cut at {cut}"
            assert torn == expected_torn, f"cut at {cut}"

    def test_bit_flip_raises_mid_iteration(self):
        data = bytearray(encode_frames(self.RECORDS))
        # Flip a payload byte of the third frame.
        third = len(encode_frames(self.RECORDS[:2]))
        data[third + HEADER_LENGTH] ^= 0x01
        cursor = iter_frames(io.BytesIO(bytes(data)), source="seg")
        assert next(cursor) == self.RECORDS[0]
        assert next(cursor) == self.RECORDS[1]
        with pytest.raises(ChecksumMismatch):
            next(cursor)

    def test_torn_attribute_is_none_until_exhausted(self):
        data = encode_frames(self.RECORDS) + b"0000"
        cursor = iter_frames(io.BytesIO(data), source="seg")
        assert cursor.torn is None
        frames = list(cursor)
        assert frames == self.RECORDS
        assert cursor.torn is not None
        assert cursor.torn.reason == "incomplete header"

    def test_buffer_stays_bounded(self):
        """The read buffer never holds more than a frame + a chunk."""

        class MeteredIO(io.BytesIO):
            reads = 0

            def read(self, size=-1):
                MeteredIO.reads += 1
                return super().read(size)

        records = [{"sequence": n, "pad": "x" * 50} for n in range(200)]
        data = encode_frames(records)
        cursor = iter_frames(MeteredIO(data), source="seg", chunk_size=256)
        assert list(cursor) == records
        # Streaming must read in many small chunks, not one slurp.
        assert MeteredIO.reads >= len(data) // 256

    def test_decode_frames_is_wrapper_over_cursor(self):
        data = encode_frames(self.RECORDS)[:-3]
        frames, torn = decode_frames(data, source="seg")
        stream_frames, stream_torn = self._stream(data, 16)
        assert frames == stream_frames
        assert torn == stream_torn
