"""CRC frame codec: round-trip properties and crash-signature triage.

The recovery contract rests on :mod:`repro.persist.framing` being able
to classify any byte-level damage: a truncation (what a torn write
leaves) is reported as a :class:`TornTail`, and a bit flip (what real
corruption looks like) raises :class:`ChecksumMismatch` -- the header
carries its own CRC, so even a flipped length field is corruption, not
a torn tail, and never a silent clean decode.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.persist.errors import ChecksumMismatch
from repro.persist.framing import (
    HEADER_LENGTH,
    TornTail,
    decode_frames,
    encode_frame,
)

payloads = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(
        st.integers(min_value=-(2**40), max_value=2**40),
        st.text(max_size=16),
        st.booleans(),
        st.none(),
        st.lists(st.integers(min_value=0, max_value=99), max_size=4),
    ),
    max_size=5,
)


class TestRoundTrip:
    @given(payload=payloads)
    def test_single_frame_round_trips(self, payload):
        frames, torn = decode_frames(
            encode_frame(payload), source="test"
        )
        assert torn is None
        assert frames == [payload]

    @given(items=st.lists(payloads, max_size=6))
    def test_concatenated_frames_round_trip(self, items):
        data = b"".join(encode_frame(item) for item in items)
        frames, torn = decode_frames(data, source="test")
        assert torn is None
        assert frames == items

    def test_encoding_is_deterministic(self):
        payload = {"b": 2, "a": 1, "nested": [3, 1]}
        assert encode_frame(payload) == encode_frame(dict(payload))
        # Key order must not matter (sorted-keys canonical form).
        assert encode_frame({"a": 1, "b": 2}) == encode_frame(
            {"b": 2, "a": 1}
        )

    def test_header_is_fixed_width(self):
        frame = encode_frame({"x": 1})
        assert frame[8:9] == b" " and frame[17:18] == b" "
        assert frame[26:27] == b" "
        assert frame.endswith(b"\n")
        assert int(frame[0:8], 16) == len(frame) - HEADER_LENGTH - 1

    def test_header_carries_its_own_checksum(self):
        import zlib

        frame = encode_frame({"x": 1})
        assert int(frame[18:26], 16) == zlib.crc32(frame[:18])

    def test_empty_data_decodes_clean(self):
        assert decode_frames(b"", source="test") == ([], None)


class TestTruncation:
    """Every possible truncation reads as a torn tail, never corruption."""

    def test_every_cut_point_is_torn_or_clean(self):
        records = [{"kind": "op", "sequence": n} for n in range(4)]
        data = b"".join(encode_frame(record) for record in records)
        boundaries = set()
        offset = 0
        for record in records:
            offset += len(encode_frame(record))
            boundaries.add(offset)
        boundaries.add(0)
        for cut in range(len(data) + 1):
            frames, torn = decode_frames(data[:cut], source="test")
            assert frames == records[: len(frames)]
            if cut in boundaries:
                assert torn is None, f"cut at boundary {cut}"
            else:
                assert isinstance(torn, TornTail), f"cut at {cut}"
                assert 0 <= torn.offset <= cut

    @given(
        payload=payloads,
        fraction=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
    )
    def test_truncated_single_frame_reports_torn(self, payload, fraction):
        data = encode_frame(payload)
        cut = int(len(data) * fraction)
        frames, torn = decode_frames(data[:cut], source="test")
        assert frames == []
        if cut == 0:
            assert torn is None
        else:
            assert torn is not None and torn.offset == 0


class TestBitFlips:
    """Flipped bits never decode silently clean."""

    @settings(max_examples=200)
    @given(
        position=st.integers(min_value=0),
        bit=st.integers(min_value=0, max_value=7),
    )
    def test_single_bit_flip_is_detected(self, position, bit):
        records = [
            {"kind": "op", "sequence": 1, "row": [4, 2]},
            {"kind": "op", "sequence": 2, "row": [1, 9]},
        ]
        data = bytearray(
            b"".join(encode_frame(record) for record in records)
        )
        position %= len(data)
        data[position] ^= 1 << bit
        # With the header self-checked, every single-bit flip in a
        # complete frame stream is definitively corruption -- a flipped
        # length field can no longer masquerade as a torn tail.
        with pytest.raises(ChecksumMismatch):
            decode_frames(bytes(data), source="test")

    def test_flip_in_body_raises_checksum_mismatch(self):
        data = bytearray(encode_frame({"kind": "op", "sequence": 7}))
        data[HEADER_LENGTH] ^= 0x01
        with pytest.raises(ChecksumMismatch) as excinfo:
            decode_frames(bytes(data), source="seg")
        assert excinfo.value.source == "seg"

    def test_malformed_complete_header_is_corruption(self):
        data = bytearray(encode_frame({"x": 1}))
        data[3] = ord("z")  # not a hex digit: no torn write does this
        with pytest.raises(ChecksumMismatch, match="malformed frame header"):
            decode_frames(bytes(data), source="seg")

    def test_malformed_partial_header_is_corruption(self):
        fragment = b"000000zz"  # ends mid-header but not prefix-shaped
        with pytest.raises(ChecksumMismatch, match="partial header"):
            decode_frames(fragment, source="seg")

    def test_corrupt_terminator_is_corruption(self):
        first = bytearray(encode_frame({"x": 1}))
        first[-1] = ord("X")
        data = bytes(first) + encode_frame({"x": 2})
        with pytest.raises(ChecksumMismatch, match="terminator"):
            decode_frames(data, source="seg")

    def test_corrupt_length_field_is_corruption_not_torn(self):
        # A corrupted length that still parses as hex would make the
        # frame appear to run past EOF -- the header checksum catches
        # it, so tolerant recovery never tail-drops acked records
        # behind a flipped length.
        data = bytearray(encode_frame({"x": 1}))
        data[0:8] = b"0000ffff"
        with pytest.raises(ChecksumMismatch, match="header"):
            decode_frames(bytes(data), source="seg")

    def test_truncation_mid_payload_still_reads_as_torn(self):
        data = encode_frame({"x": 1})
        frames, torn = decode_frames(data[:-3], source="seg")
        assert frames == []
        assert torn is not None and torn.reason == "incomplete payload"
