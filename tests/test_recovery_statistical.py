"""Statistical equivalence of crash-recovered synopses (Theorem 2).

A synopsis restored from checkpoint + log-suffix replay continues with
a *fresh* RNG stream, so it is not bitwise-identical to an uncrashed
twin.  The paper's guarantee is distributional: the maintained sample
stays a uniform random sample of the relation regardless of where the
crash fell.  These tests run an ensemble of crash/recover/continue
pipelines next to uncrashed twins and compare them with proper
goodness-of-fit machinery, in the style of ``tests/test_statistical``.

Every trial is deterministic (fixed seeds), so these cannot flake; the
significance level only calibrates the evidence for these seeds.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

scipy_stats = pytest.importorskip("scipy.stats")

from repro.core.counting import CountingSample
from repro.engine.warehouse import DataWarehouse
from repro.persist import CheckpointStore, RecoveryManager

ALPHA = 1e-4  # reject only on overwhelming evidence
N = 40  # distinct stream values 0..N-1
M = 8  # synopsis footprint bound
CRASH_AT = 20  # prefix length seen before the crash
TRIALS = 400


def crash_recover_continue(root, trial):
    """One pipeline: stream prefix, checkpoint, crash, recover, rest."""
    store = CheckpointStore(root)
    manager = RecoveryManager(store)
    warehouse = DataWarehouse()
    warehouse.create_relation("s", ["v"])
    manager.attach(warehouse)
    sample = CountingSample(M, seed=trial)
    manager.bind("s", "v", sample)
    warehouse.add_observer(
        lambda rel, row, ins: sample.insert(row[0])
    )
    for value in range(CRASH_AT):
        warehouse.insert("s", (value,))
    manager.checkpoint()
    # Crash: abandon the live side without detaching, then recover
    # with a trial-specific seed -- the restored sample's coin flips
    # are a fresh stream, which is exactly what Theorem 2 permits.
    state = RecoveryManager(CheckpointStore(root)).recover(
        seed=50_000 + trial
    )
    recovered = state.synopsis("s", "v")
    for value in range(CRASH_AT, N):
        recovered.insert(value)
    return recovered


def uncrashed_twin(trial):
    sample = CountingSample(M, seed=trial)
    for value in range(N):
        sample.insert(value)
    return sample


@pytest.fixture(scope="module")
def ensembles(tmp_path_factory):
    root = tmp_path_factory.mktemp("recovery-stats")
    recovered = Counter()
    uncrashed = Counter()
    for trial in range(TRIALS):
        survivor = crash_recover_continue(root / f"t{trial}", trial)
        survivor.check_invariants()
        assert survivor.total_inserted == N  # the ledger is exact
        recovered.update(survivor.as_dict().keys())
        uncrashed.update(uncrashed_twin(trial).as_dict().keys())
    return recovered, uncrashed


# A skewed stream for answer-level comparison: value v occurs 12 - v
# times, so low values are "hot" and a counting sample's reported
# counts are exactly the material of a hot-list answer.
SKEWED = [v for v in range(1, 11) for _ in range(12 - v)]
SKEWED_CRASH_AT = 40
SKEWED_TRIALS = 200
SKEWED_M = 6


def skewed_pipeline(root, trial, *, crash):
    store = CheckpointStore(root)
    manager = RecoveryManager(store)
    warehouse = DataWarehouse()
    warehouse.create_relation("s", ["v"])
    manager.attach(warehouse)
    sample = CountingSample(SKEWED_M, seed=1000 + trial)
    manager.bind("s", "v", sample)
    warehouse.add_observer(
        lambda rel, row, ins: sample.insert(row[0])
    )
    if not crash:
        for value in SKEWED:
            warehouse.insert("s", (value,))
        manager.detach()
        return sample
    for value in SKEWED[:SKEWED_CRASH_AT]:
        warehouse.insert("s", (value,))
    manager.checkpoint()
    state = RecoveryManager(CheckpointStore(root)).recover(
        seed=90_000 + trial
    )
    recovered = state.synopsis("s", "v")
    for value in SKEWED[SKEWED_CRASH_AT:]:
        recovered.insert(value)
    return recovered


@pytest.fixture(scope="module")
def skewed_ensembles(tmp_path_factory):
    root = tmp_path_factory.mktemp("recovery-answers")
    recovered_counts = Counter()
    uncrashed_counts = Counter()
    for trial in range(SKEWED_TRIALS):
        survivor = skewed_pipeline(
            root / f"c{trial}", trial, crash=True
        )
        twin = skewed_pipeline(root / f"u{trial}", trial, crash=False)
        recovered_counts.update(survivor.as_dict())
        uncrashed_counts.update(twin.as_dict())
    return recovered_counts, uncrashed_counts


class TestRecoveredAnswers:
    def test_hot_list_reported_counts_match(self, skewed_ensembles):
        """The hot-list answer material -- which values a counting
        sample reports, with what counts -- is homogeneous between
        crash-recovered synopses and uncrashed twins."""
        recovered, uncrashed = skewed_ensembles
        values = sorted(set(recovered) | set(uncrashed))
        table = np.array(
            [
                [recovered[value] for value in values],
                [uncrashed[value] for value in values],
            ]
        )
        statistic, p_value, _, _ = scipy_stats.chi2_contingency(table)
        assert p_value > ALPHA, (
            "recovered hot-list answers diverge from uncrashed twins "
            f"(chi2={statistic:.1f})"
        )

    def test_aggregate_mass_is_unbiased(self, skewed_ensembles):
        """Aggregate answers scale reported counts by n / (mass in
        sample); the total reported mass must agree across ensembles
        within a tight tolerance."""
        recovered, uncrashed = skewed_ensembles
        recovered_mass = sum(recovered.values())
        uncrashed_mass = sum(uncrashed.values())
        assert recovered_mass == pytest.approx(uncrashed_mass, rel=0.05)


class TestRecoveredUniformity:
    def test_inclusion_is_uniform_across_values(self, ensembles):
        """No stream position is privileged by where the crash fell:
        pre-crash values (checkpoint + replay) and post-crash values
        (fresh coin flips) appear equally often across trials."""
        recovered, _ = ensembles
        observed = np.array([recovered[value] for value in range(N)])
        statistic, p_value = scipy_stats.chisquare(observed)
        assert p_value > ALPHA, (
            f"recovered inclusion not uniform (chi2={statistic:.1f})"
        )

    def test_matches_the_uncrashed_ensemble(self, ensembles):
        """Homogeneity: the recovered ensemble's inclusion counts are
        indistinguishable from uncrashed twins over the same stream."""
        recovered, uncrashed = ensembles
        table = np.array(
            [
                [recovered[value] for value in range(N)],
                [uncrashed[value] for value in range(N)],
            ]
        )
        statistic, p_value, _, _ = scipy_stats.chi2_contingency(table)
        assert p_value > ALPHA, (
            "crash-recovered ensemble diverges from uncrashed twins "
            f"(chi2={statistic:.1f})"
        )

    def test_uncrashed_baseline_is_itself_uniform(self, ensembles):
        """Calibration: the same test applied to the twins, so a
        failure above cannot be blamed on the harness."""
        _, uncrashed = ensembles
        observed = np.array([uncrashed[value] for value in range(N)])
        _, p_value = scipy_stats.chisquare(observed)
        assert p_value > ALPHA


# ----------------------------------------------------------------------
# Batch op-record recovery vs per-row ingest (the group-commit path)
# ----------------------------------------------------------------------

BATCH_TRIALS = 300
BATCH_SIZE = 8


def batch_recovered_pipeline(root, trial):
    """Checkpoint empty, load via load_batch, crash, recover.

    Every value reaches the recovered synopsis through a columnar
    batch op-record replayed with ``insert_array`` -- the vectorized
    path whose output must be statistically indistinguishable from
    per-row ingest.
    """
    store = CheckpointStore(root)
    manager = RecoveryManager(store)
    warehouse = DataWarehouse()
    warehouse.create_relation("s", ["v"])
    manager.attach(warehouse)
    sample = CountingSample(M, seed=5_000 + trial)
    manager.bind("s", "v", sample)
    manager.checkpoint()
    for start in range(0, N, BATCH_SIZE):
        warehouse.load_batch(
            "s",
            {
                "v": np.arange(
                    start, min(start + BATCH_SIZE, N), dtype=np.int64
                )
            },
        )
    state = RecoveryManager(CheckpointStore(root)).recover(
        seed=70_000 + trial
    )
    return state.synopsis("s", "v")


def per_row_twin(trial):
    sample = CountingSample(M, seed=5_000 + trial)
    for value in range(N):
        sample.insert(value)
    return sample


@pytest.fixture(scope="module")
def batch_ensembles(tmp_path_factory):
    root = tmp_path_factory.mktemp("recovery-batch-stats")
    recovered = Counter()
    per_row = Counter()
    for trial in range(BATCH_TRIALS):
        survivor = batch_recovered_pipeline(root / f"t{trial}", trial)
        survivor.check_invariants()
        assert survivor.total_inserted == N  # replay saw every row
        recovered.update(survivor.as_dict().keys())
        per_row.update(per_row_twin(trial).as_dict().keys())
    return recovered, per_row


class TestBatchRecoveredEquivalence:
    def test_batch_recovery_matches_per_row_ingest(self, batch_ensembles):
        """Homogeneity: synopses rebuilt from columnar batch op-records
        include each value as often as per-row ingest does."""
        recovered, per_row = batch_ensembles
        table = np.array(
            [
                [recovered[value] for value in range(N)],
                [per_row[value] for value in range(N)],
            ]
        )
        statistic, p_value, _, _ = scipy_stats.chi2_contingency(table)
        assert p_value > ALPHA, (
            "batch-op-record recovery diverges from per-row ingest "
            f"(chi2={statistic:.1f})"
        )

    def test_batch_recovered_inclusion_is_uniform(self, batch_ensembles):
        """No batch boundary is privileged: inclusion is uniform over
        the values regardless of which batch carried them."""
        recovered, _ = batch_ensembles
        observed = np.array([recovered[value] for value in range(N)])
        statistic, p_value = scipy_stats.chisquare(observed)
        assert p_value > ALPHA, (
            f"batch-recovered inclusion not uniform (chi2={statistic:.1f})"
        )
