"""Unit tests for footprint accounting helpers (paper footnote 3)."""

from __future__ import annotations

import pytest

from repro.core import ConciseSample, CountingSample
from repro.core.footprint import bit_footprint, word_footprint
from repro.streams import zipf_stream


class TestWordFootprint:
    def test_empty(self):
        assert word_footprint({}) == 0

    def test_singletons_and_pairs(self):
        assert word_footprint({1: 1, 2: 5, 3: 1}) == 1 + 2 + 1


class TestBitFootprint:
    def test_empty(self):
        assert bit_footprint({}) == 0

    def test_singleton_costs_value_plus_flag(self):
        assert bit_footprint({7: 1}, value_bits=32) == 33

    def test_pair_adds_count_bits(self):
        # count 5 -> 3 bits.
        assert bit_footprint({7: 5}, value_bits=32) == 33 + 3

    def test_count_bits_logarithmic(self):
        small = bit_footprint({1: 2})
        large = bit_footprint({1: 2**20})
        assert large - small == 21 - 2

    def test_validation(self):
        with pytest.raises(ValueError):
            bit_footprint({1: 1}, value_bits=0)
        with pytest.raises(ValueError):
            bit_footprint({1: 0})

    def test_bits_beat_words_on_skewed_samples(self):
        """The footnote's point: variable-length counts reduce the
        footprint relative to whole words."""
        stream = zipf_stream(50_000, 2000, 1.5, seed=1)
        sample = ConciseSample(500, seed=2)
        sample.insert_array(stream)
        assert sample.bit_footprint(32) < sample.footprint * 32

    def test_counting_sample_method(self):
        sample = CountingSample(100, seed=3)
        sample.insert_many([1, 1, 1, 2])
        # {1: 3, 2: 1}: (32+1+2) + (32+1) = 68.
        assert sample.bit_footprint(32) == 68
