"""Unit tests for the full-histogram exact baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hotlist.exact import FullHistogramHotList
from repro.stats.frequency import FrequencyTable
from repro.streams import zipf_stream


class TestExactness:
    def test_reports_exact_top_k(self):
        stream = zipf_stream(20_000, 500, 1.3, seed=1)
        baseline = FullHistogramHotList(1000)
        baseline.insert_array(stream)
        truth = FrequencyTable(stream)
        answer = baseline.report(10)
        assert [
            (entry.value, entry.estimated_count) for entry in answer
        ] == [(v, float(c)) for v, c in truth.top_k(10)]

    def test_exact_count(self):
        baseline = FullHistogramHotList(100)
        baseline.insert_many([5, 5, 7])
        assert baseline.exact_count(5) == 2
        assert baseline.exact_count(99) == 0

    def test_synopsis_capacity_limits_k(self):
        """Only m/2 pairs fit in the in-engine synopsis copy."""
        baseline = FullHistogramHotList(10)  # capacity 5 pairs
        baseline.insert_array(np.repeat(np.arange(1, 21), 3))
        assert len(baseline.report(20)) == 5

    def test_deletes(self):
        baseline = FullHistogramHotList(100)
        baseline.insert_many([1, 1, 2])
        baseline.delete(1)
        assert baseline.exact_count(1) == 1
        with pytest.raises(KeyError):
            baseline.delete(42)


class TestCostModel:
    def test_every_update_costs_a_disk_access(self):
        baseline = FullHistogramHotList(100)
        baseline.insert_many(range(50))
        baseline.delete(0)
        assert baseline.counters.disk_accesses == 51

    def test_bulk_path_charges_per_row(self):
        baseline = FullHistogramHotList(100)
        baseline.insert_array(np.arange(1000))
        assert baseline.counters.disk_accesses == 1000

    def test_disk_footprint_scales_with_distinct(self):
        baseline = FullHistogramHotList(100)
        baseline.insert_array(np.arange(500))
        assert baseline.disk_footprint == 1000  # two words per value

    def test_rejects_tiny_footprint(self):
        with pytest.raises(ValueError):
            FullHistogramHotList(1)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            FullHistogramHotList(10).report(0)

    def test_truth_accessor(self):
        baseline = FullHistogramHotList(10)
        baseline.insert_many([1, 1])
        assert baseline.truth().count(1) == 2
