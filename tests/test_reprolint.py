"""reprolint: one fire + one suppression fixture per rule, CLI, and a
live-tree-clean gate over ``src/``.

Fixture trees are shaped ``tmp/repro/<subpackage>/module.py`` so the
path-based rule scoping resolves exactly as it does on the real
``src/repro`` tree (see :func:`repro.analysis.module.module_parts`).
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.analysis.__main__ import main
from repro.analysis.module import SourceModule, module_parts
from repro.analysis.rules import ALL_PROJECT_RULES, ALL_RULES

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_file(tmp_path: Path, relpath: str, source: str) -> list:
    """Write one fixture module and run the full rule set over it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return list(analyze_paths([tmp_path]))


def codes(findings: list) -> set[str]:
    return {finding.rule for finding in findings}


# ----------------------------------------------------------------------
# RL001: raw randomness outside randkit
# ----------------------------------------------------------------------


class TestRawRandomness:
    def test_stdlib_random_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            import random

            def draw() -> float:
                return random.random()
            """,
        )
        assert codes(findings) == {"RL001"}
        assert len(findings) == 2  # the import and the attribute use

    def test_numpy_default_rng_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/streams/x.py",
            """\
            import numpy as np

            def draw(seed: int):
                return np.random.default_rng(seed)
            """,
        )
        assert codes(findings) == {"RL001"}

    def test_seedless_default_rng_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            from numpy.random import default_rng

            def draw():
                return default_rng()
            """,
        )
        messages = [finding.message for finding in findings]
        assert any("seedless" in message for message in messages)

    def test_os_urandom_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/engine/x.py",
            """\
            import os

            def entropy() -> bytes:
                return os.urandom(8)
            """,
        )
        assert codes(findings) == {"RL001"}

    def test_randkit_is_exempt(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/randkit/x.py",
            """\
            import random

            def draw() -> float:
                return random.random()
            """,
        )
        assert findings == []

    def test_suppression(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            import random  # reprolint: disable=RL001

            def draw() -> float:
                return random.random()  # reprolint: disable=RL001
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# RL002: ledger-less skipper/coin constructions
# ----------------------------------------------------------------------


class TestLedgerRequired:
    def test_missing_ledger_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            def build(rng: object) -> object:
                return VectorCoins(rng)
            """,
        )
        assert codes(findings) == {"RL002"}

    def test_keyword_ledger_is_clean(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            def build(rng: object, counters: object) -> object:
                return GeometricSkipper(rng, counters=counters)
            """,
        )
        assert findings == []

    def test_positional_ledger_is_clean(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            def build(rng: object, counters: object) -> object:
                return EvictionSkipper(rng, counters, 0.5)
            """,
        )
        assert findings == []

    def test_star_args_undecidable_is_clean(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            def build(args: list) -> object:
                return Coin(*args)
            """,
        )
        assert findings == []

    def test_suppression(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            def build(rng: object) -> object:
                return Coin(rng)  # reprolint: disable=RL002
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# RL003: float equality in estimator layers
# ----------------------------------------------------------------------


class TestFloatEquality:
    def test_float_literal_comparison_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/stats/x.py",
            """\
            def check(x):
                return x == 1.5
            """,
        )
        assert codes(findings) == {"RL003"}

    def test_annotated_mapping_value_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/estimators/x.py",
            """\
            from typing import Mapping

            def check(truth: Mapping[int, float], key: int) -> bool:
                return truth[key] != 0
            """,
        )
        assert codes(findings) == {"RL003"}

    def test_int_comparison_is_clean(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/stats/x.py",
            """\
            def check(count: int) -> bool:
                return count == 0
            """,
        )
        assert findings == []

    def test_out_of_scope_is_clean(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/streams/x.py",
            """\
            def check(x):
                return x == 1.5
            """,
        )
        assert findings == []

    def test_suppression(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/stats/x.py",
            """\
            def check(x):
                return x == 1.5  # reprolint: disable=RL003
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# RL004: dict mutated during iteration
# ----------------------------------------------------------------------


class TestDictMutation:
    def test_delete_during_iteration_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/hotlist/x.py",
            """\
            def sweep(counts: dict) -> None:
                for value in counts:
                    del counts[value]
            """,
        )
        assert codes(findings) == {"RL004"}

    def test_items_view_mutation_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/hotlist/x.py",
            """\
            def sweep(counts: dict) -> None:
                for value, count in counts.items():
                    counts[value] = count - 1
            """,
        )
        assert codes(findings) == {"RL004"}

    def test_list_copy_is_clean(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/hotlist/x.py",
            """\
            def sweep(counts: dict) -> None:
                for value in list(counts):
                    del counts[value]
            """,
        )
        assert findings == []

    def test_other_dict_mutation_is_clean(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/hotlist/x.py",
            """\
            def sweep(counts: dict, out: dict) -> None:
                for value in counts:
                    out[value] = 1
            """,
        )
        assert findings == []

    def test_suppression(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/hotlist/x.py",
            """\
            def sweep(counts: dict) -> None:
                for value in counts:
                    del counts[value]  # reprolint: disable=RL004
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# RL005: wall-clock nondeterminism in core layers
# ----------------------------------------------------------------------


class TestWallClock:
    def test_time_import_fires_in_core(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            import time

            def stamp() -> float:
                return time.monotonic()
            """,
        )
        # The import violates the determinism boundary (RL005) and the
        # call bypasses the injected clock (RL009).
        assert codes(findings) == {"RL005", "RL009"}

    def test_datetime_import_fires_in_synopses(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/synopses/x.py",
            """\
            from datetime import datetime
            """,
        )
        assert codes(findings) == {"RL005"}

    def test_experiments_are_exempt(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/experiments/x.py",
            """\
            import time

            def stamp() -> float:
                return time.time()
            """,
        )
        assert findings == []

    def test_suppression(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            import time  # reprolint: disable=RL005
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# RL009: monotonic clocks read only inside repro.obs
# ----------------------------------------------------------------------


class TestInjectedClock:
    def test_direct_call_fires_anywhere(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/estimators/x.py",
            """\
            import time

            def elapsed() -> float:
                return time.perf_counter()
            """,
        )
        assert "RL009" in codes(findings)

    def test_from_import_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/hotlist/x.py",
            """\
            from time import monotonic
            """,
        )
        assert codes(findings) == {"RL009"}

    def test_top_level_script_fires(self, tmp_path: Path) -> None:
        # benchmarks/tests/examples resolve to the empty subpackage and
        # are still in scope.
        findings = lint_file(
            tmp_path,
            "bench_x.py",
            """\
            import time

            START = time.monotonic()
            """,
        )
        assert codes(findings) == {"RL009"}

    def test_obs_is_exempt(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/obs/x.py",
            """\
            import time

            def now() -> float:
                return time.monotonic()
            """,
        )
        assert findings == []

    def test_injected_clock_is_clean(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/stats/x.py",
            """\
            from repro.obs.clock import perf_counter

            def elapsed() -> float:
                return perf_counter()
            """,
        )
        assert findings == []

    def test_non_monotonic_time_is_not_flagged(self, tmp_path: Path) -> None:
        # time.time()/sleep() are RL005's business, not RL009's.
        findings = lint_file(
            tmp_path,
            "repro/experiments/x.py",
            """\
            import time

            def pause() -> None:
                time.sleep(0.1)
            """,
        )
        assert findings == []

    def test_suppression(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/streams/x.py",
            """\
            from time import perf_counter  # reprolint: disable=RL009
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# RL006: public functions fully annotated in engine layers
# ----------------------------------------------------------------------


class TestPublicAnnotations:
    def test_missing_return_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/engine/x.py",
            """\
            def lookup(key: str):
                return key
            """,
        )
        assert codes(findings) == {"RL006"}

    def test_missing_parameter_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            class Sample:
                def insert(self, value) -> None:
                    pass
            """,
        )
        assert codes(findings) == {"RL006"}

    def test_private_and_nested_are_exempt(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            def _internal(value):
                def inner(x):
                    return x
                return inner(value)
            """,
        )
        assert findings == []

    def test_fully_annotated_is_clean(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/synopses/x.py",
            """\
            def estimate(points: int, scale: float = 1.0) -> float:
                return points * scale
            """,
        )
        assert findings == []

    def test_out_of_scope_is_clean(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/experiments/x.py",
            """\
            def run(trials):
                return trials
            """,
        )
        assert findings == []

    def test_suppression(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/engine/x.py",
            """\
            def lookup(key: str):  # reprolint: disable=RL006
                return key
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# RL007: snapshot round-trip field parity
# ----------------------------------------------------------------------


class TestSnapshotRoundTrip:
    def test_ignored_field_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            class Sample:
                def to_dict(self) -> dict:
                    return {"threshold": self.threshold, "extra": 1}

                @classmethod
                def from_dict(cls, payload: dict) -> "Sample":
                    sample = cls()
                    sample.threshold = payload["threshold"]
                    return sample
            """,
        )
        assert "RL007" in codes(findings)
        assert any("extra" in finding.message for finding in findings)

    def test_phantom_field_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            class Sample:
                def to_dict(self) -> dict:
                    return {"threshold": self.threshold}

                @classmethod
                def from_dict(cls, payload: dict) -> "Sample":
                    sample = cls()
                    sample.threshold = payload["threshold"]
                    sample.seen = payload["seen"]
                    return sample
            """,
        )
        assert "RL007" in codes(findings)
        assert any("seen" in finding.message for finding in findings)

    def test_legacy_get_is_clean(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            class Sample:
                def to_dict(self) -> dict:
                    return {"threshold": self.threshold}

                @classmethod
                def from_dict(cls, payload: dict) -> "Sample":
                    sample = cls()
                    sample.threshold = payload["threshold"]
                    sample.seen = payload.get("seen", 0)
                    return sample
            """,
        )
        assert findings == []

    def test_dynamic_payload_is_skipped(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            class Sample:
                def to_dict(self) -> dict:
                    payload = {"threshold": self.threshold}
                    return payload

                @classmethod
                def from_dict(cls, payload: dict) -> "Sample":
                    sample = cls()
                    sample.threshold = payload["missing"]
                    return sample
            """,
        )
        assert findings == []

    def test_suppression(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            class Sample:
                def to_dict(self) -> dict:  # reprolint: disable=RL007
                    return {"threshold": self.threshold, "extra": 1}

                @classmethod
                def from_dict(cls, payload: dict) -> "Sample":
                    sample = cls()
                    sample.threshold = payload["threshold"]
                    return sample
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# RL008: swallowed exceptions in engine layers
# ----------------------------------------------------------------------


class TestSwallowedExceptions:
    def test_bare_except_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/engine/x.py",
            """\
            def run(task: object) -> None:
                try:
                    task()
                except:
                    pass
            """,
        )
        assert codes(findings) == {"RL008"}

    def test_pass_only_handler_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            def run(task: object) -> None:
                try:
                    task()
                except ValueError:
                    pass
            """,
        )
        assert codes(findings) == {"RL008"}

    def test_handled_exception_is_clean(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/engine/x.py",
            """\
            def run(task: object) -> int:
                try:
                    return task()
                except ValueError:
                    return 0
            """,
        )
        assert findings == []

    def test_out_of_scope_is_clean(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/experiments/x.py",
            """\
            def run(task: object) -> None:
                try:
                    task()
                except ValueError:
                    pass
            """,
        )
        assert findings == []

    def test_suppression(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/engine/x.py",
            """\
            def run(task: object) -> None:
                try:
                    task()
                except ValueError:  # reprolint: disable=RL008
                    pass
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# Infrastructure: scoping, suppressions, RL000, CLI
# ----------------------------------------------------------------------


class TestInfrastructure:
    def test_module_parts_from_repro_component(self, tmp_path: Path) -> None:
        path = tmp_path / "repro" / "core" / "concise.py"
        assert module_parts(path, tmp_path)[-3:] == (
            "repro",
            "core",
            "concise",
        )

    def test_module_parts_outside_repro(self, tmp_path: Path) -> None:
        path = tmp_path / "tools" / "helper.py"
        assert module_parts(path, tmp_path) == ("tools", "helper")

    def test_suppression_must_name_the_rule(self, tmp_path: Path) -> None:
        # Naming a different rule does not waive the finding, and there
        # is no disable=all.
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            import time  # reprolint: disable=RL001
            """,
        )
        assert codes(findings) == {"RL005"}

    def test_no_blanket_suppression(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            import time  # reprolint: disable=all
            """,
        )
        assert codes(findings) == {"RL005"}

    def test_suppression_is_line_precise(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            # reprolint: disable=RL005
            import time
            """,
        )
        assert codes(findings) == {"RL005"}

    def test_syntax_error_yields_rl000(self, tmp_path: Path) -> None:
        findings = lint_file(tmp_path, "repro/core/x.py", "def broken(:\n")
        assert codes(findings) == {"RL000"}

    def test_every_rule_has_distinct_code(self) -> None:
        rule_codes = [
            rule.code for rule in (*ALL_RULES, *ALL_PROJECT_RULES)
        ]
        assert len(rule_codes) == len(set(rule_codes)) == 16
        assert sorted(rule_codes) == [
            f"RL{index:03d}" for index in range(1, 17)
        ]

    def test_suppressed_findings_parse(self, tmp_path: Path) -> None:
        module = SourceModule(
            tmp_path / "repro" / "core" / "x.py",
            "x = 1  # reprolint: disable=RL001, RL003\n",
            tmp_path,
        )
        assert module.is_suppressed(1, "RL001")
        assert module.is_suppressed(1, "RL003")
        assert not module.is_suppressed(1, "RL005")
        assert not module.is_suppressed(2, "RL001")

    def test_multiline_signature_covered_by_def_line_comment(
        self, tmp_path: Path
    ) -> None:
        # RL006 anchors at the def line, but the natural comment spot
        # in a multi-line signature is wherever the writer put it; any
        # header line must cover the whole header.
        source = textwrap.dedent(
            """\
            def public_api(
                value,  # reprolint: disable=RL006
                other,
            ):
                return value + other
            """
        )
        module = SourceModule(
            tmp_path / "repro" / "core" / "x.py", source, tmp_path
        )
        for line in (1, 2, 3, 4):
            assert module.is_suppressed(line, "RL006")
        assert not module.is_suppressed(5, "RL006")

    def test_multiline_signature_covers_decorator_line(
        self, tmp_path: Path
    ) -> None:
        source = textwrap.dedent(
            """\
            @decorated
            def public_api(
                value,
            ):  # reprolint: disable=RL006
                return value
            """
        )
        module = SourceModule(
            tmp_path / "repro" / "core" / "x.py", source, tmp_path
        )
        assert module.is_suppressed(1, "RL006")
        assert module.is_suppressed(2, "RL006")
        assert not module.is_suppressed(5, "RL006")

    def test_single_line_def_keeps_exact_line_semantics(
        self, tmp_path: Path
    ) -> None:
        source = textwrap.dedent(
            """\
            def public_api(value):  # reprolint: disable=RL006
                return value

            def other_api(thing):
                return thing
            """
        )
        module = SourceModule(
            tmp_path / "repro" / "core" / "x.py", source, tmp_path
        )
        assert module.is_suppressed(1, "RL006")
        assert not module.is_suppressed(2, "RL006")
        assert not module.is_suppressed(4, "RL006")

    def test_multiline_suppression_waives_annotation_finding(
        self, tmp_path: Path
    ) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/api.py",
            """\
            def public_api(
                value,
                other,
            ):  # reprolint: disable=RL006
                return value + other
            """,
        )
        assert "RL006" not in codes(findings)


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path: Path, capsys) -> None:
        (tmp_path / "clean.py").write_text("VALUE = 1\n", encoding="utf-8")
        assert main([str(tmp_path)]) == 0
        assert "0 findings" in capsys.readouterr().err

    def test_exit_one_on_findings(self, tmp_path: Path, capsys) -> None:
        bad = tmp_path / "repro" / "core" / "x.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n", encoding="utf-8")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr()
        assert "RL005" in out.out

    def test_exit_two_without_paths(self, capsys) -> None:
        assert main([]) == 2
        assert "at least one path" in capsys.readouterr().err

    def test_exit_two_on_missing_path(self, tmp_path: Path, capsys) -> None:
        assert main([str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_json_output(self, tmp_path: Path, capsys) -> None:
        bad = tmp_path / "repro" / "core" / "x.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n", encoding="utf-8")
        assert main(["--json", str(bad)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert len(report) == 1
        assert report[0]["rule"] == "RL005"
        assert report[0]["line"] == 1
        assert report[0]["path"].endswith("x.py")

    def test_list_rules(self, capsys) -> None:
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (*ALL_RULES, *ALL_PROJECT_RULES):
            assert rule.code in out


# ----------------------------------------------------------------------
# The gate: the real tree lints clean, with zero suppressions
# ----------------------------------------------------------------------


@pytest.mark.parametrize("tree", ["src", "tests", "benchmarks", "examples"])
def test_live_tree_is_clean(tree: str) -> None:
    findings = list(analyze_paths([REPO_ROOT / tree]))
    rendered = "\n".join(finding.render() for finding in findings)
    assert findings == [], f"reprolint findings in {tree}/:\n{rendered}"


def test_live_tree_has_no_suppressions() -> None:
    """The acceptance bar: the tree passes with no waivers at all."""
    # The analysis package itself mentions the marker (in its regex and
    # docs); everything else must be waiver-free.
    offenders = [
        str(path.relative_to(REPO_ROOT))
        for path in (REPO_ROOT / "src").rglob("*.py")
        if "analysis" not in path.parts
        and "reprolint: disable" in path.read_text(encoding="utf-8")
    ]
    assert offenders == []


# ----------------------------------------------------------------------
# RL010: file I/O confined to repro.persist
# ----------------------------------------------------------------------


class TestConfinedFileIO:
    def test_open_in_core_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            def slurp(path: str) -> str:
                with open(path) as handle:
                    return handle.read()
            """,
        )
        assert codes(findings) == {"RL010"}

    def test_os_calls_in_engine_fire(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/engine/x.py",
            """\
            import os

            def persist(fd: int, a: str, b: str) -> None:
                os.fsync(fd)
                os.replace(a, b)
            """,
        )
        assert codes(findings) == {"RL010"}
        assert len(findings) == 2

    def test_pathlib_write_methods_fire(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/obs/x.py",
            """\
            from pathlib import Path

            def dump(path: Path, payload: str) -> None:
                path.write_text(payload)
            """,
        )
        assert codes(findings) == {"RL010"}

    def test_from_os_import_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/stats/x.py",
            """\
            from os import replace
            """,
        )
        assert codes(findings) == {"RL010"}

    def test_from_os_import_open_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/stats/x.py",
            """\
            from os import open
            """,
        )
        assert codes(findings) == {"RL010"}

    def test_aliased_os_calls_fire(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/engine/x.py",
            """\
            import os as operating_system

            def persist(fd: int, path: str) -> None:
                operating_system.fsync(fd)
                operating_system.open(path, 0)
            """,
        )
        assert codes(findings) == {"RL010"}
        assert len(findings) == 2

    def test_aliased_os_non_io_calls_do_not_fire(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/engine/x.py",
            """\
            import os as operating_system

            def cores() -> int:
                return operating_system.cpu_count() or 1
            """,
        )
        assert "RL010" not in codes(findings)

    def test_persist_package_is_exempt(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/persist/x.py",
            """\
            import os

            def durable(fd: int, path: str) -> None:
                os.fsync(fd)
                with open(path, "rb") as handle:
                    handle.read()
            """,
        )
        assert "RL010" not in codes(findings)

    def test_tests_and_benchmarks_are_exempt(self, tmp_path: Path) -> None:
        source = """\
            def slurp(path: str) -> str:
                with open(path) as handle:
                    return handle.read()
            """
        for relpath in ("tests/x.py", "benchmarks/x.py"):
            findings = lint_file(tmp_path, relpath, source)
            assert "RL010" not in codes(findings)

    def test_suppression_comment(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            def slurp(path: str) -> str:
                with open(path) as handle:  # reprolint: disable=RL010
                    return handle.read()
            """,
        )
        assert "RL010" not in codes(findings)


# ----------------------------------------------------------------------
# RL011: per-row WAL appends in a loop
# ----------------------------------------------------------------------


class TestPerRowWalAppend:
    def test_append_in_for_loop_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            def ingest(wal: object, records: list) -> None:
                for record in records:
                    wal.append(record)
            """,
        )
        assert codes(findings) == {"RL011"}

    def test_dotted_receiver_in_while_loop_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/engine/x.py",
            """\
            def drain(self, queue: list) -> None:
                while queue:
                    self._store.wal.append(queue.pop())
            """,
        )
        assert codes(findings) == {"RL011"}

    def test_nested_loops_report_once(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            def ingest(wal: object, batches: list) -> None:
                for batch in batches:
                    for record in batch:
                        wal.append(record)
            """,
        )
        assert [finding.rule for finding in findings] == ["RL011"]

    def test_append_outside_loop_does_not_fire(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            def ack(wal: object, record: dict) -> None:
                wal.append(record)
            """,
        )
        assert "RL011" not in codes(findings)

    def test_append_many_in_loop_does_not_fire(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            def ingest(wal: object, batches: list) -> None:
                for batch in batches:
                    wal.append_many(batch)
            """,
        )
        assert "RL011" not in codes(findings)

    def test_list_append_in_loop_does_not_fire(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            def collect(values: list) -> list:
                out: list = []
                for value in values:
                    out.append(value)
                return out
            """,
        )
        assert "RL011" not in codes(findings)

    def test_persist_package_is_exempt(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/persist/x.py",
            """\
            def repair(self, records: list) -> None:
                for record in records:
                    self._wal.append(record)
            """,
        )
        assert "RL011" not in codes(findings)

    def test_tests_and_benchmarks_are_exempt(self, tmp_path: Path) -> None:
        source = """\
            def baseline(wal: object, records: list) -> None:
                for record in records:
                    wal.append(record)
            """
        for relpath in ("tests/x.py", "benchmarks/x.py"):
            findings = lint_file(tmp_path, relpath, source)
            assert "RL011" not in codes(findings)

    def test_suppression_comment(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            def ingest(wal: object, records: list) -> None:
                for record in records:
                    wal.append(record)  # reprolint: disable=RL011
            """,
        )
        assert "RL011" not in codes(findings)


# ----------------------------------------------------------------------
# RL012: per-row loops on the answer path
# ----------------------------------------------------------------------


class TestAnswerPathLoop:
    def test_for_over_tolist_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/hotlist/x.py",
            """\
            def total(values: object) -> int:
                acc = 0
                for value in values.tolist():
                    acc += value
                return acc
            """,
        )
        assert codes(findings) == {"RL012"}

    def test_comprehension_over_tolist_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/estimators/x.py",
            """\
            def doubled(values: object) -> list:
                return [value * 2 for value in values.tolist()]
            """,
        )
        assert codes(findings) == {"RL012"}

    def test_comprehension_over_items_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/hotlist/x.py",
            """\
            def scaled(counts: dict, scale: float) -> dict:
                return {v: c * scale for v, c in counts.items()}
            """,
        )
        assert codes(findings) == {"RL012"}

    def test_genexp_over_values_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/estimators/x.py",
            """\
            def mass(counts: dict) -> int:
                return sum(c for c in counts.values())
            """,
        )
        assert codes(findings) == {"RL012"}

    def test_plain_for_over_items_does_not_fire(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/hotlist/x.py",
            """\
            def rebuild(self, counts: dict) -> None:
                for value, count in counts.items():
                    self.move(value, 0, count)
            """,
        )
        assert "RL012" not in codes(findings)

    def test_tolist_as_call_argument_does_not_fire(
        self, tmp_path: Path
    ) -> None:
        findings = lint_file(
            tmp_path,
            "repro/hotlist/x.py",
            """\
            def forward(self, values: object) -> None:
                self.insert_many(values.tolist())
            """,
        )
        assert "RL012" not in codes(findings)

    def test_genexp_over_zip_does_not_fire(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/hotlist/x.py",
            """\
            def pair(values: list, counts: list) -> tuple:
                return tuple((v, c) for v, c in zip(values, counts))
            """,
        )
        assert "RL012" not in codes(findings)

    def test_for_over_plain_name_does_not_fire(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/engine/engine.py",
            """\
            def forward(insert: object, prepared: object) -> None:
                rows = prepared.tolist()
                for value in rows:
                    insert(value)
            """,
        )
        assert "RL012" not in codes(findings)

    def test_engine_query_router_is_in_scope(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/engine/engine.py",
            """\
            def total(values: object) -> int:
                acc = 0
                for value in values.tolist():
                    acc += value
                return acc
            """,
        )
        assert codes(findings) == {"RL012"}

    def test_other_engine_modules_are_out_of_scope(
        self, tmp_path: Path
    ) -> None:
        findings = lint_file(
            tmp_path,
            "repro/engine/relation.py",
            """\
            def rows(values: object) -> int:
                acc = 0
                for value in values.tolist():
                    acc += value
                return acc
            """,
        )
        assert "RL012" not in codes(findings)

    def test_core_package_is_out_of_scope(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            def pairs(counts: dict) -> list:
                return [(v, c) for v, c in counts.items()]
            """,
        )
        assert "RL012" not in codes(findings)

    def test_tests_and_benchmarks_are_exempt(self, tmp_path: Path) -> None:
        source = """\
            def reference(counts: dict) -> list:
                return [(v, c) for v, c in counts.items()]
            """
        for relpath in ("tests/x.py", "benchmarks/x.py"):
            findings = lint_file(tmp_path, relpath, source)
            assert "RL012" not in codes(findings)

    def test_suppression_comment(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/hotlist/x.py",
            """\
            def scaled(counts: dict, scale: float) -> dict:
                return {
                    v: c * scale
                    for v, c in counts.items()  # reprolint: disable=RL012
                }
            """,
        )
        assert "RL012" not in codes(findings)


# ----------------------------------------------------------------------
# RL016: cluster worker seeds derive via randkit.spawn_seeds
# ----------------------------------------------------------------------


class TestClusterSeedDerivation:
    def test_rng_constructor_in_cluster_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/cluster/x.py",
            """\
            from repro.randkit import ReproRandom

            def worker_rng(seed: int) -> ReproRandom:
                return ReproRandom(seed)
            """,
        )
        assert "RL016" in codes(findings)

    def test_seed_arithmetic_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/cluster/x.py",
            """\
            def configure(build, master: int, shard: int):
                return build(seed=master + shard)
            """,
        )
        assert "RL016" in codes(findings)

    def test_recovery_seed_arithmetic_fires(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/cluster/x.py",
            """\
            def configure(build, master: int, incarnation: int):
                return build(recovery_seed=master * incarnation)
            """,
        )
        assert "RL016" in codes(findings)

    def test_spawn_seeds_chain_is_clean(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/cluster/x.py",
            """\
            from repro.randkit import spawn_seeds

            def configure(build, master: int, shards: int):
                seeds = spawn_seeds(master, shards)
                return [
                    build(seed=seeds[shard]) for shard in range(shards)
                ]
            """,
        )
        assert "RL016" not in codes(findings)

    def test_constant_seed_is_clean(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/cluster/x.py",
            """\
            def configure(build):
                return build(seed=0)
            """,
        )
        assert "RL016" not in codes(findings)

    def test_outside_cluster_is_out_of_scope(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/core/x.py",
            """\
            def configure(build, master: int, shard: int):
                return build(seed=master + shard)
            """,
        )
        assert "RL016" not in codes(findings)

    def test_suppression_comment(self, tmp_path: Path) -> None:
        findings = lint_file(
            tmp_path,
            "repro/cluster/x.py",
            """\
            def configure(build, master: int, shard: int):
                return build(seed=master + shard)  # reprolint: disable=RL016
            """,
        )
        assert "RL016" not in codes(findings)
