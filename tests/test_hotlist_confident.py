"""Tests for the "report all with confidence" mode (Section 5.2).

The paper's accuracy analysis (Theorems 7 and 8) is about queries of
the form "report all pairs that can be reported with confidence".
These tests validate the reporting mode itself and then check Theorem
7's false-positive/negative rates empirically across repeated runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hotlist.concise import ConciseHotList
from repro.hotlist.counting import CountingHotList
from repro.stats.frequency import FrequencyTable
from repro.stats.theory import (
    hotlist_false_positive_bound,
    hotlist_report_probability,
)
from repro.streams import zipf_stream


class TestReportingMode:
    def test_empty(self):
        assert len(ConciseHotList(10, seed=1).report_all_confident()) == 0
        assert len(CountingHotList(10, seed=2).report_all_confident()) == 0

    def test_no_rank_cutoff(self):
        """All values above theta are reported, however many."""
        reporter = ConciseHotList(1000, confidence_threshold=1, seed=3)
        reporter.insert_array(zipf_stream(5000, 50, 0.5, seed=4))
        # Exact regime (domain fits): every distinct value reported.
        answer = reporter.report_all_confident()
        assert len(answer) == 50

    def test_theta_respected(self):
        reporter = ConciseHotList(1000, confidence_threshold=3, seed=5)
        reporter.insert_array(np.arange(400))  # all singletons
        assert len(reporter.report_all_confident()) == 0

    def test_counting_exact_regime_reports_all(self):
        reporter = CountingHotList(1000, seed=6)
        reporter.insert_array(zipf_stream(5000, 50, 1.0, seed=7))
        assert reporter.sample.threshold == 1.0
        answer = reporter.report_all_confident()
        assert len(answer) == 50

    def test_superset_of_topk_report(self):
        stream = zipf_stream(50_000, 2000, 1.3, seed=8)
        reporter = ConciseHotList(500, seed=9)
        reporter.insert_array(stream)
        top_k = set(reporter.report(10).values())
        confident = set(reporter.report_all_confident().values())
        assert top_k <= confident


class TestTheorem7Empirically:
    """Monte-carlo check of the Theorem-7 guarantees for the
    confidence-only report."""

    THETA = 3
    TRIALS = 120

    def _run_trials(self, frequency: int, filler_domain: int = 4000):
        """Return how often a value with the given frequency was
        reported, along with the mean final threshold."""
        reported = 0
        thresholds = []
        base = zipf_stream(40_000, filler_domain, 0.0, seed=77) + 10
        stream = np.concatenate([base[:20_000], np.full(frequency, 1),
                                 base[20_000:]])
        for trial in range(self.TRIALS):
            reporter = ConciseHotList(
                300,
                confidence_threshold=self.THETA,
                seed=10_000 + trial,
            )
            reporter.insert_array(stream)
            thresholds.append(reporter.sample.threshold)
            if 1 in reporter.report_all_confident().values():
                reported += 1
        return reported / self.TRIALS, float(np.mean(thresholds))

    def test_frequent_values_reported(self):
        """Theorem 7(1): f_v >= theta*tau/(1-delta) is reported with
        probability >= 1 - exp(-theta delta^2 / (2(1-delta)))."""
        # First measure the typical threshold of this scenario.
        _, tau = self._run_trials(frequency=1)
        delta = 0.5
        frequency = int(self.THETA * tau / (1 - delta)) + 1
        rate, _ = self._run_trials(frequency)
        lower_bound = hotlist_report_probability(self.THETA, delta)
        assert rate >= lower_bound - 0.1

    def test_infrequent_values_rarely_reported(self):
        """Theorem 7(2): f_v <= theta*tau/(1+delta) is reported with
        probability < exp(-theta delta^2 / (3(1+delta)))."""
        _, tau = self._run_trials(frequency=1)
        delta = 0.9
        frequency = max(1, int(self.THETA * tau / (1 + delta)) - 1)
        rate, _ = self._run_trials(frequency)
        upper_bound = hotlist_false_positive_bound(self.THETA, delta)
        assert rate <= upper_bound + 0.1

    def test_counting_confident_report_precision(self):
        """Counting-sample confident reports should essentially never
        contain values below the Theorem-8 floor."""
        stream = zipf_stream(60_000, 3000, 1.1, seed=11)
        truth = FrequencyTable(stream)
        reporter = CountingHotList(400, seed=12)
        reporter.insert_array(stream)
        floor = 0.582 * reporter.sample.threshold
        for value in reporter.report_all_confident().values():
            assert truth.count(value) >= floor * 0.99
