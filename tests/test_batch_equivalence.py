"""Statistical equivalence of the vectorized and per-element paths.

The batch paths draw their randomness in array form, so they cannot
reproduce the per-element paths bitwise; Theorem 2 (concise) and
Theorem 5 (counting) say they produce samples with the *same law*.
These tests compare the two paths (and the k-shard merge against a
single-stream build) over many independent seeds with KS / chi-square
tests at a fixed, very small alpha, using pinned seeds throughout so
they are deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.core import (
    ConciseSample,
    CountingSample,
    ShardedSynopsis,
    merge_concise,
)
from repro.streams import zipf_stream

# With pinned seeds the tests are deterministic; alpha only needs to
# be small enough that a correct implementation's fixed draw is very
# unlikely to sit in the rejection region.
ALPHA = 1e-4
TRIALS = 60
STREAM = zipf_stream(20_000, 1000, 1.25, seed=424242)
HOT_VALUE = int(np.bincount(STREAM).argmax())
BOUND = 100


def _concise_trials(bound: int, bulk: bool, base_seed: int):
    sizes, hot_counts = [], []
    for trial in range(TRIALS):
        sample = ConciseSample(bound, seed=base_seed + trial)
        if bulk:
            sample.insert_array(STREAM)
        else:
            sample.insert_many(STREAM.tolist())
        sample.check_invariants()
        sizes.append(sample.sample_size)
        hot_counts.append(sample.count_of(HOT_VALUE))
    return np.asarray(sizes), np.asarray(hot_counts)


def _counting_trials(bound: int, bulk: bool, base_seed: int):
    totals, hot_counts = [], []
    for trial in range(TRIALS):
        sample = CountingSample(bound, seed=base_seed + trial)
        if bulk:
            sample.insert_array(STREAM)
        else:
            sample.insert_many(STREAM.tolist())
        sample.check_invariants()
        totals.append(sample.total_count)
        hot_counts.append(sample.count_of(HOT_VALUE))
    return np.asarray(totals), np.asarray(hot_counts)


class TestConciseBatchMatchesPerElement:
    def test_sample_size_distribution(self):
        bulk_sizes, bulk_hot = _concise_trials(BOUND, True, 1000)
        scalar_sizes, scalar_hot = _concise_trials(BOUND, False, 5000)
        assert stats.ks_2samp(bulk_sizes, scalar_sizes).pvalue > ALPHA
        assert stats.ks_2samp(bulk_hot, scalar_hot).pvalue > ALPHA

    def test_relation_size_identical(self):
        bulk = ConciseSample(BOUND, seed=3)
        bulk.insert_array(STREAM)
        scalar = ConciseSample(BOUND, seed=3)
        scalar.insert_many(STREAM.tolist())
        assert bulk.total_inserted == scalar.total_inserted == len(STREAM)


class TestCountingBatchMatchesPerElement:
    def test_total_count_distribution(self):
        bulk_totals, bulk_hot = _counting_trials(BOUND, True, 2000)
        scalar_totals, scalar_hot = _counting_trials(BOUND, False, 6000)
        assert stats.ks_2samp(bulk_totals, scalar_totals).pvalue > ALPHA
        # Hot values are admitted almost immediately on every path, so
        # their exact tail counts concentrate tightly; compare them
        # directly rather than through a rank test.
        assert abs(bulk_hot.mean() - scalar_hot.mean()) < 0.02 * max(
            1.0, scalar_hot.mean()
        )

    def test_admission_indicator_rates(self):
        """Chi-square: a mid-frequency value is present in the sample
        equally often under both paths."""
        value = int(
            np.argsort(np.bincount(STREAM))[-20]
        )  # 20th-hottest value
        present = np.zeros((2, 2), dtype=np.int64)
        for column, bulk in enumerate((False, True)):
            for trial in range(TRIALS):
                sample = CountingSample(BOUND, seed=9000 + trial)
                if bulk:
                    sample.insert_array(STREAM)
                else:
                    sample.insert_many(STREAM.tolist())
                present[column, int(value in sample)] += 1
        result = stats.chi2_contingency(present + 1)  # smoothed
        assert result.pvalue > ALPHA


class TestShardedMergeMatchesSingleStream:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_concise_merge_distribution(self, shards):
        merged_sizes, merged_hot = [], []
        for trial in range(TRIALS):
            sharded = ShardedSynopsis.concise(
                shards, BOUND, seed=7000 + trial, parallel=False
            )
            sharded.insert_array(STREAM)
            merged = sharded.merged()
            merged.check_invariants()
            assert merged.threshold >= max(
                shard.threshold for shard in sharded.shards
            )
            merged_sizes.append(merged.sample_size)
            merged_hot.append(merged.count_of(HOT_VALUE))
        single_sizes, single_hot = _concise_trials(BOUND, True, 8000)
        assert (
            stats.ks_2samp(merged_sizes, single_sizes).pvalue > ALPHA
        )
        assert stats.ks_2samp(merged_hot, single_hot).pvalue > ALPHA

    def test_parallel_ingest_matches_serial_setup(self):
        parallel = ShardedSynopsis.concise(4, BOUND, seed=31)
        parallel.insert_array(STREAM)
        parallel.check_invariants()
        assert parallel.total_inserted == len(STREAM)
        merged = parallel.merged()
        assert merged.total_inserted == len(STREAM)
        assert merged.footprint <= BOUND

    def test_counting_merge_counts_plausible(self):
        sharded = ShardedSynopsis.counting(
            3, BOUND, seed=77, parallel=False
        )
        sharded.insert_array(STREAM)
        merged = sharded.merged()
        merged.check_invariants()
        single = CountingSample(BOUND, seed=78)
        single.insert_array(STREAM)
        true_hot = int(np.count_nonzero(STREAM == HOT_VALUE))
        # Hot values are counted exactly up to per-shard admission
        # delay (see repro.core.merge's caveat).
        assert merged.count_of(HOT_VALUE) > 0.9 * true_hot
        assert merged.total_inserted == len(STREAM)

    def test_merge_concise_respects_footprint_bound(self):
        shards = []
        for index in range(4):
            shard = ConciseSample(BOUND, seed=90 + index)
            shard.insert_array(STREAM)
            shards.append(shard)
        merged = merge_concise(shards, seed=99)
        merged.check_invariants()
        assert merged.footprint <= BOUND
        assert merged.threshold >= max(s.threshold for s in shards)
        assert merged.total_inserted == 4 * len(STREAM)
