"""Calibration auditing: seeded shadowing of approximate answers."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.concise import ConciseSample
from repro.engine.engine import ApproximateAnswerEngine
from repro.engine.queries import CountQuery, FrequencyQuery, HotListQuery
from repro.engine.warehouse import DataWarehouse
from repro.estimators import Predicate
from repro.estimators.intervals import ConfidenceInterval
from repro.hotlist.counting import CountingHotList
from repro.obs.audit import AuditObservation, CalibrationAuditor
from repro.obs.metrics import MetricsRegistry
from repro.randkit import ReproRandom
from repro.streams import zipf_stream


class Response:
    """Attribute-bag stand-in for a QueryResponse."""

    def __init__(self, **fields):
        self.__dict__.update(fields)


def scalar_response(
    answer: float,
    low: float,
    high: float,
    confidence: float = 0.95,
    method: str = "sample",
) -> Response:
    return Response(
        answer=answer,
        method=method,
        interval=ConfidenceInterval(low, high, confidence),
        exact_cost_estimate=7,
    )


class TestShouldAudit:
    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            CalibrationAuditor(-0.1, seed=1)
        with pytest.raises(ValueError):
            CalibrationAuditor(1.5, seed=1)

    def test_fraction_zero_never_audits(self):
        auditor = CalibrationAuditor(0.0, seed=1)
        assert not any(auditor.should_audit(None) for _ in range(100))

    def test_fraction_one_always_audits(self):
        auditor = CalibrationAuditor(1.0, seed=1)
        assert all(auditor.should_audit(None) for _ in range(100))

    def test_selection_is_seed_deterministic(self):
        first = CalibrationAuditor(0.3, seed=42)
        second = CalibrationAuditor(0.3, seed=42)
        decisions = [first.should_audit(None) for _ in range(200)]
        assert decisions == [second.should_audit(None) for _ in range(200)]
        assert any(decisions) and not all(decisions)

    def test_degenerate_fractions_consume_no_draws(self):
        """Toggling auditing off must not perturb other seeded streams."""
        auditor = CalibrationAuditor(0.0, seed=9)
        for _ in range(50):
            auditor.should_audit(None)
        assert auditor._random.uniform() == ReproRandom(9).uniform()


class TestShadowScoring:
    def test_in_bounds_observation(self):
        registry = MetricsRegistry()
        auditor = CalibrationAuditor(1.0, seed=1, registry=registry)
        query = CountQuery("sales", "item", Predicate(high=10))
        response = scalar_response(95.0, 80.0, 110.0)
        obs_ = auditor.shadow(
            query, response, lambda q: Response(answer=100.0)
        )
        assert obs_.query == "CountQuery"
        assert obs_.exact_value == 100.0
        assert obs_.relative_error == pytest.approx(0.05)
        assert obs_.in_bounds is True
        assert obs_.confidence == 0.95
        assert obs_.error is None

    def test_out_of_bounds_and_error_budget(self):
        registry = MetricsRegistry()
        auditor = CalibrationAuditor(1.0, seed=1, registry=registry)
        query = CountQuery("sales", "item", None)
        exact = lambda q: Response(answer=100.0)  # noqa: E731
        auditor.shadow(query, scalar_response(95.0, 80.0, 110.0), exact)
        auditor.shadow(query, scalar_response(50.0, 40.0, 60.0), exact)
        (row,) = auditor.snapshot()
        assert row["shadows"] == 2
        assert row["with_interval"] == 2
        assert row["in_bounds"] == 1
        assert row["coverage"] == pytest.approx(0.5)
        # coverage 0.5 against claimed 0.95 -> budget is deep negative
        assert row["error_budget"] == pytest.approx(-0.45)
        parsed = obs.parse_prometheus(obs.render_prometheus(registry))
        labels = (("method", "sample"), ("query", "CountQuery"))
        assert parsed["repro_audit_in_bounds_total"][labels] == 1.0
        assert parsed["repro_audit_out_of_bounds_total"][labels] == 1.0
        assert parsed["repro_audit_coverage_ratio"][labels] == 0.5
        assert parsed["repro_audit_error_budget"][labels] == pytest.approx(
            -0.45
        )

    def test_no_interval_means_no_claim(self):
        auditor = CalibrationAuditor(1.0, seed=1, registry=MetricsRegistry())
        response = Response(answer=95.0, method="sample", interval=None)
        obs_ = auditor.shadow(
            CountQuery("sales", "item", None),
            response,
            lambda q: Response(answer=100.0),
        )
        assert obs_.in_bounds is None
        (row,) = auditor.snapshot()
        assert row["with_interval"] == 0
        assert row["coverage"] is None
        assert row["error_budget"] is None

    def test_exact_path_failure_is_scored_not_raised(self):
        registry = MetricsRegistry()
        auditor = CalibrationAuditor(1.0, seed=1, registry=registry)

        def broken(query):
            raise RuntimeError("no base data")

        obs_ = auditor.shadow(
            CountQuery("sales", "item", None),
            scalar_response(95.0, 80.0, 110.0),
            broken,
        )
        assert obs_.error == "RuntimeError"
        assert obs_.exact_value is None
        parsed = obs.parse_prometheus(obs.render_prometheus(registry))
        labels = (("error", "RuntimeError"), ("query", "CountQuery"))
        assert parsed["repro_audit_errors_total"][labels] == 1.0

    def test_empty_hotlist_answer_is_skipped(self):
        auditor = CalibrationAuditor(1.0, seed=1, registry=MetricsRegistry())
        response = Response(
            answer=Response(entries=[]), method="CountingHotList"
        )
        result = auditor.shadow(
            HotListQuery("sales", "item", k=5),
            response,
            lambda q: Response(answer=0.0),
        )
        assert result is None
        assert auditor.observations() == ()

    def test_observation_ring_is_bounded(self):
        auditor = CalibrationAuditor(
            1.0, seed=1, registry=MetricsRegistry(), max_observations=4
        )
        exact = lambda q: Response(answer=100.0)  # noqa: E731
        for index in range(10):
            auditor.shadow(
                CountQuery("sales", "item", None),
                scalar_response(90.0 + index, 80.0, 110.0),
                exact,
            )
        kept = auditor.observations()
        assert len(kept) == 4
        assert kept[-1].estimate == 99.0

    def test_observation_round_trips_as_dict(self):
        observation = AuditObservation(
            query="CountQuery",
            method="sample",
            estimate=95.0,
            exact_value=100.0,
            relative_error=0.05,
            interval_low=80.0,
            interval_high=110.0,
            confidence=0.95,
            in_bounds=True,
        )
        as_dict = observation.to_dict()
        assert as_dict["in_bounds"] is True
        assert AuditObservation(**as_dict) == observation


def build_engine(fraction: float, registry: MetricsRegistry):
    warehouse = DataWarehouse()
    warehouse.create_relation("sales", ["item"])
    auditor = CalibrationAuditor(fraction, seed=11, registry=registry)
    engine = ApproximateAnswerEngine(
        warehouse, auditor=auditor, conservative_intervals=True
    )
    engine.register_sample("sales", "item", ConciseSample(800, seed=1))
    engine.register_hotlist(
        "sales", "item", CountingHotList(footprint_bound=400, seed=2)
    )
    values = zipf_stream(20_000, 500, 1.3, seed=3)
    warehouse.load_batch("sales", {"item": values})
    return engine, auditor


class TestEngineIntegration:
    def test_full_fraction_shadows_every_approximate_answer(self):
        registry = MetricsRegistry()
        engine, auditor = build_engine(1.0, registry)
        engine.answer(CountQuery("sales", "item", Predicate(high=100)))
        engine.answer(FrequencyQuery("sales", "item", value=1))
        engine.answer(HotListQuery("sales", "item", k=5))
        engine.answer(CountQuery("sales", "item", None), exact=True)
        observations = auditor.observations()
        # Three approximate answers shadowed; the exact one is not.
        assert len(observations) == 3
        assert {o.query for o in observations} == {
            "CountQuery",
            "FrequencyQuery",
            "HotListQuery",
        }

    def test_hotlist_shadow_scores_top_item_frequency(self):
        registry = MetricsRegistry()
        engine, auditor = build_engine(1.0, registry)
        response = engine.answer(HotListQuery("sales", "item", k=5))
        (observation,) = auditor.observations()
        top = response.answer.entries[0]
        exact = engine.answer(
            FrequencyQuery("sales", "item", value=int(top.value)),
            exact=True,
        )
        assert observation.query == "HotListQuery"
        assert observation.estimate == pytest.approx(top.estimated_count)
        assert observation.exact_value == pytest.approx(exact.answer)
        assert observation.in_bounds is not None

    def test_fraction_zero_disables_auditing(self):
        registry = MetricsRegistry()
        engine, auditor = build_engine(0.0, registry)
        engine.answer(CountQuery("sales", "item", Predicate(high=100)))
        engine.answer(HotListQuery("sales", "item", k=5))
        assert auditor.observations() == ()
        parsed = obs.parse_prometheus(obs.render_prometheus(registry))
        assert not parsed.get("repro_audit_shadows_total")

    def test_conservative_intervals_cover_on_this_workload(self):
        """With distribution-free bounds, every shadow must land inside."""
        registry = MetricsRegistry()
        engine, auditor = build_engine(1.0, registry)
        for high in (50, 100, 200, 400):
            engine.answer(
                CountQuery("sales", "item", Predicate(high=high))
            )
        for row in auditor.snapshot():
            assert row["coverage"] == 1.0
            assert row["error_budget"] >= 0.0
