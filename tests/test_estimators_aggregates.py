"""Unit tests for COUNT/SUM/AVG estimation from samples."""

from __future__ import annotations

import numpy as np
import pytest

from repro.randkit import numpy_generator
from repro.core.concise import ConciseSample
from repro.estimators.aggregates import (
    estimate_average,
    estimate_count,
    estimate_sum,
)
from repro.streams import zipf_stream


class TestEstimateCount:
    def test_no_predicate_counts_population(self):
        points = np.arange(100)
        estimate = estimate_count(points, population=5000)
        assert estimate.value == pytest.approx(5000.0)
        assert estimate.interval.width == pytest.approx(0.0)

    def test_predicate_fraction(self):
        points = np.arange(100)  # 0..99
        estimate = estimate_count(
            points, 1000, predicate=lambda v: v < 50
        )
        assert estimate.value == pytest.approx(500.0)

    def test_interval_contains_truth_usually(self):
        population = zipf_stream(50_000, 1000, 1.0, seed=1)
        truth = float(np.count_nonzero(population <= 20))
        covered = 0
        trials = 60
        for trial in range(trials):
            rng = numpy_generator(trial)
            points = rng.choice(population, size=400, replace=False)
            estimate = estimate_count(
                points, len(population), lambda v: v <= 20, 0.95
            )
            covered += truth in estimate.interval
        assert covered / trials >= 0.85

    def test_rejects_empty_sample(self):
        with pytest.raises(ValueError):
            estimate_count(np.empty(0), 100)

    def test_rejects_negative_population(self):
        with pytest.raises(ValueError):
            estimate_count(np.arange(5), -1)

    def test_rejects_bad_predicate_shape(self):
        with pytest.raises(ValueError):
            estimate_count(np.arange(5), 10, lambda v: np.array([True]))


class TestEstimateSum:
    def test_exact_on_full_information(self):
        points = np.array([2.0, 4.0, 6.0])
        estimate = estimate_sum(points, population=3)
        assert estimate.value == pytest.approx(12.0)

    def test_scaling(self):
        points = np.full(50, 10)
        estimate = estimate_sum(points, population=1000)
        assert estimate.value == pytest.approx(10_000.0)

    def test_predicate_restricts_contributions(self):
        points = np.array([1, 2, 3, 4])
        estimate = estimate_sum(
            points, population=4, predicate=lambda v: v >= 3
        )
        assert estimate.value == pytest.approx(7.0)

    def test_unbiased_across_trials(self):
        population = zipf_stream(20_000, 500, 1.0, seed=2)
        truth = float(population.sum())
        estimates = []
        for trial in range(50):
            rng = numpy_generator(100 + trial)
            points = rng.choice(population, size=500, replace=False)
            estimates.append(
                estimate_sum(points, len(population)).value
            )
        assert float(np.mean(estimates)) == pytest.approx(truth, rel=0.05)

    def test_rejects_empty_sample(self):
        with pytest.raises(ValueError):
            estimate_sum(np.empty(0), 100)


class TestEstimateAverage:
    def test_mean_of_sample(self):
        points = np.array([10.0, 20.0, 30.0])
        estimate = estimate_average(points)
        assert estimate.value == pytest.approx(20.0)

    def test_predicate(self):
        points = np.array([1, 2, 100])
        estimate = estimate_average(points, predicate=lambda v: v < 10)
        assert estimate.value == pytest.approx(1.5)

    def test_no_matching_points_raises(self):
        with pytest.raises(ValueError):
            estimate_average(np.array([1, 2]), predicate=lambda v: v > 10)

    def test_rejects_empty_sample(self):
        with pytest.raises(ValueError):
            estimate_average(np.empty(0))

    def test_single_point_zero_width(self):
        estimate = estimate_average(np.array([5.0]))
        assert estimate.interval.width == 0.0


class TestConciseSampleIntegration:
    def test_concise_sample_points_feed_estimators(self):
        """The paper's point: a concise sample is a drop-in uniform
        sample for aggregate estimation."""
        stream = zipf_stream(100_000, 2000, 1.2, seed=3)
        sample = ConciseSample(1000, seed=4)
        sample.insert_array(stream)
        points = sample.sample_points()
        truth = float(np.count_nonzero(stream <= 10))
        estimate = estimate_count(
            points, len(stream), lambda v: v <= 10
        )
        assert estimate.value == pytest.approx(truth, rel=0.15)

    def test_concise_interval_narrower_than_traditional(self):
        """More sample points at equal footprint => tighter CIs."""
        from repro.core.reservoir import ReservoirSample

        stream = zipf_stream(100_000, 2000, 1.5, seed=5)
        concise = ConciseSample(500, seed=6)
        concise.insert_array(stream)
        traditional = ReservoirSample(500, seed=7)
        traditional.insert_array(stream)
        concise_ci = estimate_count(
            concise.sample_points(), len(stream), lambda v: v <= 10
        ).interval
        traditional_ci = estimate_count(
            traditional.as_array(), len(stream), lambda v: v <= 10
        ).interval
        assert concise_ci.width < traditional_ci.width


class TestConservativeIntervals:
    """``conservative=True`` swaps CLT bounds for distribution-free ones."""

    def test_count_interval_widens_and_covers(self):
        rng = numpy_generator(5)
        points = rng.integers(0, 100, size=400)
        predicate = lambda v: v < 20  # noqa: E731
        clt = estimate_count(points, 10_000, predicate)
        safe = estimate_count(
            points, 10_000, predicate, conservative=True
        )
        assert safe.value == clt.value
        assert safe.interval.width > clt.interval.width
        assert safe.interval.low <= safe.value <= safe.interval.high

    def test_count_degenerate_proportion_still_bounded(self):
        points = np.array([1, 2, 3, 4])
        estimate = estimate_count(
            points, 1_000, lambda v: v > 100, conservative=True
        )
        assert estimate.value == 0.0
        # Hoeffding gives a nonzero-width bound even at p-hat = 0.
        assert estimate.interval.high > 0.0

    def test_sum_interval_widens(self):
        rng = numpy_generator(6)
        points = rng.integers(0, 50, size=300)
        clt = estimate_sum(points, 5_000)
        safe = estimate_sum(points, 5_000, conservative=True)
        assert safe.value == pytest.approx(clt.value)
        assert safe.interval.width > clt.interval.width

    def test_average_interval_widens(self):
        rng = numpy_generator(7)
        points = rng.integers(0, 50, size=300)
        clt = estimate_average(points)
        safe = estimate_average(points, conservative=True)
        assert safe.value == pytest.approx(clt.value)
        assert safe.interval.width > clt.interval.width

    def test_conservative_coverage_never_dips(self):
        """Repeated sampling: distribution-free bounds must cover at
        >= the claimed rate (here far above, being conservative)."""
        rng = numpy_generator(8)
        population = rng.zipf(1.5, size=20_000).clip(max=1_000)
        true_count = int((population < 5).sum())
        misses = 0
        trials = 200
        for _ in range(trials):
            sample = rng.choice(population, size=200, replace=False)
            estimate = estimate_count(
                sample,
                population.size,
                lambda v: v < 5,
                confidence=0.9,
                conservative=True,
            )
            misses += true_count not in estimate.interval
        assert misses / trials <= 0.1
