"""Long-run and edge-regime torture tests.

These exercise the maintenance algorithms in regimes the unit tests
do not: the minimum footprint, single-value floods, adversarial value
patterns (negative values, huge magnitudes), alternating churn, and
very long mixed streams -- always checking the structural invariants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.randkit import numpy_generator
from repro.core import (
    ConciseSample,
    CountingSample,
    ReservoirSample,
    counting_to_concise,
    offline_concise_sample,
)
from repro.streams import zipf_stream


class TestMinimumFootprint:
    def test_concise_footprint_two_survives_long_stream(self):
        sample = ConciseSample(2, seed=1)
        sample.insert_array(zipf_stream(100_000, 10_000, 0.5, seed=2))
        sample.check_invariants()
        assert sample.footprint <= 2

    def test_counting_footprint_two_survives_long_stream(self):
        sample = CountingSample(2, seed=3)
        sample.insert_array(zipf_stream(100_000, 10_000, 0.5, seed=4))
        sample.check_invariants()
        assert sample.footprint <= 2

    def test_concise_footprint_two_single_value_flood(self):
        """One pair can absorb an unbounded flood of one value."""
        sample = ConciseSample(2, seed=5)
        sample.insert_array(np.full(200_000, 7))
        sample.check_invariants()
        assert sample.threshold == 1.0
        assert sample.count_of(7) == 200_000
        assert sample.footprint == 2


class TestAdversarialValues:
    def test_negative_values_supported(self):
        stream = zipf_stream(20_000, 500, 1.2, seed=6) - 250
        sample = ConciseSample(100, seed=7)
        sample.insert_array(stream)
        sample.check_invariants()
        assert any(value < 0 for value, _ in sample.pairs())

    def test_huge_magnitude_values(self):
        base = 10**15
        sample = CountingSample(50, seed=8)
        for value in (zipf_stream(20_000, 100, 1.0, seed=9) + base).tolist():
            sample.insert(value)
        sample.check_invariants()
        assert all(value > base for value, _ in sample.pairs())

    def test_reservoir_with_repeated_single_value(self):
        sample = ReservoirSample(10, seed=10)
        sample.insert_array(np.full(50_000, 3))
        assert sample.points() == [3] * 10


class TestChurn:
    def test_counting_insert_delete_ping_pong(self):
        """Insert/delete the same value forever: footprint stays tiny
        and counts track the live multiplicity."""
        sample = CountingSample(10, seed=11)
        live = 0
        rng = numpy_generator(12)
        for _ in range(50_000):
            if live > 0 and rng.random() < 0.5:
                sample.delete(1)
                live -= 1
            else:
                sample.insert(1)
                live += 1
            assert sample.count_of(1) <= live
        sample.check_invariants()

    def test_counting_full_drain(self):
        """Insert a workload, then delete every single occurrence:
        the sample must end empty."""
        stream = zipf_stream(30_000, 100, 1.0, seed=13)
        sample = CountingSample(150, seed=14)
        sample.insert_array(stream)
        for value in stream.tolist():
            sample.delete(value)
        assert sample.footprint == 0
        assert sample.distinct_in_sample == 0
        sample.check_invariants()

    def test_alternating_hot_value_waves(self):
        """The hot value changes every wave; the sample follows."""
        sample = CountingSample(60, seed=15)
        for wave in range(12):
            hot = wave % 4 + 1
            filler = zipf_stream(4000, 2000, 0.0, seed=100 + wave) + 10
            sample.insert_array(filler)
            for _ in range(2500):
                sample.insert(hot)
            sample.check_invariants()
        # The current wave's hot value dominates the sample.
        counts = sample.as_dict()
        assert counts, "sample drained unexpectedly"
        assert max(counts, key=counts.get) in (1, 2, 3, 4)


class TestLongMixedRuns:
    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_interleaved_apis_long_run(self, seed):
        """Mix per-op inserts, bulk arrays, conversions and reports
        over a long run; all invariants must hold throughout."""
        concise = ConciseSample(80, seed=seed)
        counting = CountingSample(80, seed=seed + 1)
        for round_index in range(8):
            chunk = zipf_stream(
                10_000, 3000, 0.25 * round_index, seed=seed + round_index
            )
            if round_index % 2:
                concise.insert_array(chunk)
                counting.insert_array(chunk)
            else:
                for value in chunk[:2000].tolist():
                    concise.insert(value)
                    counting.insert(value)
                concise.insert_array(chunk[2000:])
                counting.insert_array(chunk[2000:])
            concise.check_invariants()
            counting.check_invariants()
            converted = counting_to_concise(
                counting, seed=seed + 100 + round_index
            )
            converted.check_invariants()
            assert converted.footprint <= counting.footprint

    def test_offline_agrees_with_online_at_scale(self):
        stream = zipf_stream(200_000, 2000, 1.4, seed=24)
        online_sizes = []
        for trial in range(3):
            sample = ConciseSample(300, seed=30 + trial)
            sample.insert_array(stream)
            sample.check_invariants()
            online_sizes.append(sample.sample_size)
        offline = offline_concise_sample(stream, 300, seed=40)
        # Both estimate the same intrinsic size; single offline run, so
        # allow both-sided sampling noise.
        assert np.mean(online_sizes) <= offline.sample_size * 1.25
        assert np.mean(online_sizes) >= offline.sample_size * 0.5
