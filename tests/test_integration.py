"""Cross-module integration tests: small-scale paper-shape checks.

The full paper-profile reproductions live in ``benchmarks/``; these
tests assert the same qualitative shapes at a scale that runs in
seconds, so a regression in any component that would bend a figure is
caught by ``pytest tests/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ConciseSample,
    CountingSample,
    ReservoirSample,
    offline_concise_sample,
)
from repro.hotlist import (
    ConciseHotList,
    CountingHotList,
    FullHistogramHotList,
    TraditionalHotList,
    evaluate_hotlist,
)
from repro.stats.frequency import FrequencyTable
from repro.stats.theory import exponential_sample_size_bound
from repro.streams import exponential_stream, zipf_stream

N = 100_000
FOOTPRINT = 500


class TestFigure3Shape:
    """Sample-size vs skew: concise >> traditional at high skew, online
    within a modest factor of offline."""

    @pytest.mark.parametrize("skew", [0.0, 1.0, 2.0])
    def test_concise_at_least_traditional(self, skew):
        stream = zipf_stream(N, 5000, skew, seed=1)
        concise = ConciseSample(FOOTPRINT, seed=2)
        concise.insert_array(stream)
        # Traditional sample-size == footprint by definition.
        assert concise.sample_size >= FOOTPRINT * 0.8

    def test_gain_grows_with_skew(self):
        sizes = []
        for skew in (0.0, 1.0, 1.5, 2.0):
            stream = zipf_stream(N, 5000, skew, seed=3)
            concise = ConciseSample(FOOTPRINT, seed=4)
            concise.insert_array(stream)
            sizes.append(concise.sample_size)
        assert sizes[0] < sizes[1] < sizes[2] < sizes[3]
        # Orders of magnitude at high skew (paper: up to 3 orders).
        assert sizes[3] > 20 * FOOTPRINT

    def test_online_within_paper_band_of_offline(self):
        """Paper: online within 15% of offline for footprint 1000 and
        within 28% for footprint 100; give a little slack for the
        smaller stream used here."""
        stream = zipf_stream(N, 5000, 1.5, seed=5)
        online_sizes, offline_sizes = [], []
        for trial in range(5):
            online = ConciseSample(FOOTPRINT, seed=10 + trial)
            online.insert_array(stream)
            online_sizes.append(online.sample_size)
            offline_sizes.append(
                offline_concise_sample(
                    stream, FOOTPRINT, seed=20 + trial
                ).sample_size
            )
        ratio = np.mean(online_sizes) / np.mean(offline_sizes)
        assert ratio > 0.6
        assert ratio <= 1.02


class TestTable1Shape:
    """Update overheads: flips and lookups per insert are small and
    grow with skew (until the all-fits regime)."""

    def test_overheads_small_and_monotone_at_moderate_skew(self):
        rates = []
        for skew in (0.0, 1.0, 1.5):
            stream = zipf_stream(N, 5000, skew, seed=6)
            sample = ConciseSample(1000, seed=7)
            sample.insert_array(stream)
            rates.append(
                (
                    sample.counters.flips_per_insert(),
                    sample.counters.lookups_per_insert(),
                )
            )
        assert rates[0][0] < rates[1][0] < rates[2][0]
        assert rates[0][0] < 0.1  # paper: 0.023 at 500K
        assert rates[2][1] < 0.5

    def test_all_fits_regime_one_lookup_zero_flips(self):
        """High skew, D/m <= 1/2 effectively: once every value is held,
        lookups -> 1 and flips -> 0 per insert (paper Table 1, zipf >=
        2.25)."""
        stream = zipf_stream(N, 400, 3.0, seed=8)
        sample = ConciseSample(1000, seed=9)
        counters_before = sample.counters.snapshot()
        sample.insert_many(stream)
        assert sample.threshold == 1.0
        delta = sample.counters - counters_before
        assert delta.flips == 0
        assert delta.lookups == N


class TestFigures456Shape:
    """Hot-list accuracy ordering: full histogram >= counting >=
    concise >= traditional."""

    @pytest.fixture(scope="class")
    def scenario(self):
        stream = zipf_stream(N, 1000, 1.25, seed=10)
        truth = FrequencyTable(stream)
        return stream, truth

    def _evaluate(self, reporter, stream, truth, k=20):
        # The figures measure the paper's per-insert maintenance
        # algorithms, so drive the per-element path here; the batch
        # path is compared distributionally in
        # tests/test_batch_equivalence.py.
        reporter.insert_many(stream)
        return evaluate_hotlist(reporter.report(k), truth, k)

    def test_accuracy_ordering(self, scenario):
        stream, truth = scenario
        exact = self._evaluate(
            FullHistogramHotList(FOOTPRINT), stream, truth
        )
        counting = self._evaluate(
            CountingHotList(FOOTPRINT, seed=11), stream, truth
        )
        concise = self._evaluate(
            ConciseHotList(FOOTPRINT, seed=12), stream, truth
        )
        traditional = self._evaluate(
            TraditionalHotList(FOOTPRINT, seed=13), stream, truth
        )
        assert exact.recall == 1.0
        assert counting.recall >= concise.recall - 0.101
        assert concise.recall > traditional.recall
        assert counting.mean_count_error <= concise.mean_count_error
        assert concise.mean_count_error < traditional.mean_count_error

    def test_overhead_ordering(self, scenario):
        """Table 2 shape: traditional cheapest, counting most
        expensive (lookups dominate)."""
        stream, _ = scenario
        traditional = TraditionalHotList(FOOTPRINT, seed=14)
        concise = ConciseHotList(FOOTPRINT, seed=15)
        counting = CountingHotList(FOOTPRINT, seed=16)
        for reporter in (traditional, concise, counting):
            reporter.insert_many(stream)
        assert (
            traditional.counters.lookups
            < concise.counters.lookups
            < counting.counters.lookups
        )
        assert counting.counters.lookups == N

    def test_concise_sample_size_multiplier(self, scenario):
        """Paper Figure 6 commentary: concise sample-size ~3.5x the
        traditional at zipf 1.25."""
        stream, _ = scenario
        concise = ConciseHotList(FOOTPRINT, seed=17)
        concise.insert_array(stream)
        multiplier = concise.sample.sample_size / FOOTPRINT
        assert 2.0 < multiplier < 8.0


class TestTheorem3Empirical:
    def test_exponential_distribution_sample_size(self):
        """Theorem 3: expected sample-size >= alpha^(m/2) on the
        exponential family (footprint small enough to check)."""
        alpha = 1.4
        footprint = 24
        bound = exponential_sample_size_bound(alpha, footprint)
        stream = exponential_stream(N, alpha, seed=18)
        sizes = []
        for trial in range(5):
            sample = ConciseSample(footprint, seed=30 + trial)
            sample.insert_array(stream)
            sizes.append(sample.sample_size)
        assert np.mean(sizes) >= bound * 0.5  # generous: finite n


class TestDeletionWorkload:
    def test_counting_hotlist_tracks_shifted_distribution(self):
        """After deleting the old hot values, the new hot values must
        surface -- the newly-popular detection problem of Section 1.2."""
        reporter = CountingHotList(200, seed=19)
        hot_phase = zipf_stream(30_000, 500, 1.5, seed=20)
        reporter.insert_array(hot_phase)
        # Delete most occurrences of the old mode.
        old_mode_count = int(np.count_nonzero(hot_phase == 1))
        for _ in range(old_mode_count - 5):
            reporter.delete(1)
        # Insert a new hot value.
        for _ in range(5000):
            reporter.insert(499)
        answer = reporter.report(5)
        assert 499 in answer.values()
        assert answer.values()[0] == 499
