"""Unit tests for the metrics registry and the exposition formats."""

from __future__ import annotations

import json
import math

import pytest

from repro import obs
from repro.obs.metrics import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
)


@pytest.fixture(autouse=True)
def _restore_obs_defaults():
    yield
    obs.disable()


class TestInstruments:
    def test_counter_increments(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_counter_set_monotonic_never_regresses(self):
        counter = MetricsRegistry().counter("c_total")
        counter.set_monotonic(10.0)
        counter.set_monotonic(4.0)
        assert counter.value == 10.0

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(3.0)
        assert gauge.value == 4.0

    def test_histogram_cumulative_buckets(self):
        histogram = Histogram((1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.cumulative() == [
            (1.0, 1),
            (10.0, 2),
            (float("inf"), 3),
        ]
        assert histogram.sum == 55.5
        assert histogram.count == 3

    def test_histogram_boundaries_must_increase(self):
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(())


class TestRegistry:
    def test_same_series_is_shared(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", labels={"a": "1", "b": "2"})
        second = registry.counter("x_total", labels={"b": "2", "a": "1"})
        assert first is second

    def test_distinct_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", labels={"k": "a"})
        b = registry.counter("x_total", labels={"k": "b"})
        assert a is not b

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", "9lives", "has space", "dash-ed"):
            with pytest.raises(ValueError):
                registry.counter(bad)

    def test_value_reads_series(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels={"k": "a"}).inc(7)
        assert registry.value("x_total", {"k": "a"}) == 7.0

    def test_value_rejects_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0)
        with pytest.raises(TypeError):
            registry.value("h")

    def test_collectors_run_on_collect(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        state = {"n": 0}

        def collector():
            state["n"] += 1
            gauge.set(float(state["n"]))

        registry.add_collector(collector)
        registry.collect()
        registry.collect()
        assert state["n"] == 2
        assert gauge.value == 2.0

    def test_remove_collector(self):
        registry = MetricsRegistry()
        calls = []
        registry.add_collector(lambda: calls.append(1))
        registry.remove_collector(registry._collectors[0])
        registry.collect()
        assert calls == []


class TestNullRegistryDefault:
    def test_default_registry_is_null(self):
        assert get_registry() is NULL_REGISTRY
        assert isinstance(get_registry(), NullRegistry)

    def test_null_instruments_discard_writes(self):
        registry = NULL_REGISTRY
        registry.counter("c_total").inc(100)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        assert registry.collect() == []

    def test_enable_disable_swaps_active_registry(self):
        active = obs.enable()
        assert get_registry() is active
        assert not isinstance(active, NullRegistry)
        obs.disable()
        assert get_registry() is NULL_REGISTRY

    def test_set_registry_returns_previous(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        assert previous is NULL_REGISTRY
        assert set_registry(None) is mine


class TestExposition:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter(
            "repro_things_total", "Things counted", {"kind": "x"}
        ).inc(3)
        registry.gauge("repro_level", "A level").set(1.5)
        registry.histogram(
            "repro_latency_seconds",
            "Latencies",
            buckets=(0.1, 1.0),
        ).observe(0.05)
        return registry

    def test_prometheus_text_shape(self):
        text = obs.render_prometheus(self._populated())
        assert "# HELP repro_things_total Things counted" in text
        assert "# TYPE repro_things_total counter" in text
        assert 'repro_things_total{kind="x"} 3' in text
        assert "repro_level 1.5" in text
        assert 'repro_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_latency_seconds_sum 0.05" in text
        assert "repro_latency_seconds_count 1" in text

    def test_round_trip(self):
        registry = self._populated()
        parsed = obs.parse_prometheus(obs.render_prometheus(registry))
        assert parsed["repro_things_total"][(("kind", "x"),)] == 3.0
        assert parsed["repro_level"][()] == 1.5
        assert (
            parsed["repro_latency_seconds_bucket"][(("le", "+Inf"),)]
            == 1.0
        )
        assert parsed["repro_latency_seconds_count"][()] == 1.0

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        tricky = 'quote " slash \\ newline \n end'
        registry.counter("c_total", labels={"k": tricky}).inc()
        parsed = obs.parse_prometheus(obs.render_prometheus(registry))
        assert parsed["c_total"][(("k", tricky),)] == 1.0

    def test_nan_and_inf_values_render(self):
        registry = MetricsRegistry()
        registry.gauge("g_nan").set(float("nan"))
        registry.gauge("g_inf").set(float("inf"))
        parsed = obs.parse_prometheus(obs.render_prometheus(registry))
        assert math.isnan(parsed["g_nan"][()])
        assert math.isinf(parsed["g_inf"][()])

    def test_unparseable_line_raises(self):
        with pytest.raises(ValueError):
            obs.parse_prometheus("!!! not exposition !!!")

    def test_json_snapshot(self):
        payload = obs.render_json(self._populated())
        payload = json.loads(json.dumps(payload))  # must be JSON-able
        by_name = {m["name"]: m for m in payload["metrics"]}
        counter = by_name["repro_things_total"]
        assert counter["type"] == "counter"
        assert counter["series"][0]["labels"] == {"kind": "x"}
        assert counter["series"][0]["value"] == 3.0
        histogram = by_name["repro_latency_seconds"]
        assert histogram["series"][0]["count"] == 1
        assert histogram["series"][0]["sum"] == 0.05

    def test_empty_registry_renders_empty(self):
        registry = MetricsRegistry()
        assert obs.render_prometheus(registry) == ""
        assert obs.render_json(registry) == {"metrics": []}


class TestLabelEscapeRoundTrip:
    """Satellite coverage: escaping survives adversarial label values.

    The scanner in ``_unescape_label`` must invert ``_escape_label``
    one escape at a time -- chained ``str.replace`` calls corrupt
    values where a literal backslash precedes an ``n``.
    """

    CASES = (
        "plain",
        'double "quotes" inside',
        "trailing backslash \\",
        "lone \\ backslash",
        "backslash-n pair \\n stays two chars",
        "real\nnewline",
        "\\\nboth: backslash then newline",
        '\\" escaped-looking quote',
        "\\\\ two backslashes",
        'mix \\ " \n \\n "\\" end \\',
    )

    @pytest.mark.parametrize("value", CASES)
    def test_escape_unescape_inverts(self, value):
        from repro.obs.exposition import _escape_label, _unescape_label

        assert _unescape_label(_escape_label(value)) == value

    @pytest.mark.parametrize("value", CASES)
    def test_full_exposition_round_trip(self, value):
        registry = MetricsRegistry()
        registry.counter("c_total", labels={"k": value}).inc(2.0)
        parsed = obs.parse_prometheus(obs.render_prometheus(registry))
        assert parsed["c_total"][(("k", value),)] == 2.0

    def test_distinct_values_stay_distinct(self):
        """'\\n' (two chars) and a real newline must not collide."""
        registry = MetricsRegistry()
        registry.counter("c_total", labels={"k": "\\n"}).inc()
        registry.counter("c_total", labels={"k": "\n"}).inc(2.0)
        parsed = obs.parse_prometheus(obs.render_prometheus(registry))
        assert parsed["c_total"][(("k", "\\n"),)] == 1.0
        assert parsed["c_total"][(("k", "\n"),)] == 2.0

    def test_multiple_labels_with_hostile_values(self):
        registry = MetricsRegistry()
        labels = {"a": 'x"\\', "b": "y\nz", "c": "\\n"}
        registry.gauge("g", labels=labels).set(4.5)
        parsed = obs.parse_prometheus(obs.render_prometheus(registry))
        assert parsed["g"][tuple(sorted(labels.items()))] == 4.5
