"""Unit and integration tests for the approximate answer engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.concise import ConciseSample
from repro.core.counting import CountingSample
from repro.core.reservoir import ReservoirSample
from repro.engine import (
    ApproximateAnswerEngine,
    AverageQuery,
    CountQuery,
    DataWarehouse,
    DistinctCountQuery,
    FrequencyQuery,
    HotListQuery,
    SelectivityQuery,
    SumQuery,
)
from repro.engine.engine import NoSynopsisError
from repro.estimators.selectivity import Predicate
from repro.hotlist import CountingHotList
from repro.synopses import FlajoletMartinSketch
from repro.streams import zipf_stream


def _build(stream: np.ndarray, *, with_sample=True, with_hotlist=True,
           with_distinct=True):
    warehouse = DataWarehouse()
    warehouse.create_relation("r", ["a"])
    engine = ApproximateAnswerEngine(warehouse)
    if with_sample:
        engine.register_sample("r", "a", ConciseSample(500, seed=1))
    if with_hotlist:
        engine.register_hotlist("r", "a", CountingHotList(500, seed=2))
    if with_distinct:
        engine.register_distinct(
            "r", "a", FlajoletMartinSketch(64, seed=3)
        )
    warehouse.load("r", ((int(v),) for v in stream))
    return warehouse, engine


@pytest.fixture(scope="module")
def loaded():
    stream = zipf_stream(30_000, 1000, 1.2, seed=4)
    warehouse, engine = _build(stream)
    return stream, warehouse, engine


class TestRouting:
    def test_hotlist(self, loaded):
        stream, _, engine = loaded
        response = engine.answer(HotListQuery("r", "a", k=5))
        assert not response.is_exact
        assert response.answer.values()[0] == 1

    def test_count_with_interval(self, loaded):
        stream, _, engine = loaded
        response = engine.answer(
            CountQuery("r", "a", Predicate(high=10))
        )
        truth = float(np.count_nonzero(stream <= 10))
        assert response.interval is not None
        assert response.answer == pytest.approx(truth, rel=0.1)

    def test_sum(self, loaded):
        stream, _, engine = loaded
        response = engine.answer(SumQuery("r", "a"))
        assert response.answer == pytest.approx(
            float(stream.sum()), rel=0.2
        )

    def test_average(self, loaded):
        stream, _, engine = loaded
        response = engine.answer(AverageQuery("r", "a"))
        assert response.answer == pytest.approx(
            float(stream.mean()), rel=0.2
        )

    def test_frequency(self, loaded):
        stream, _, engine = loaded
        response = engine.answer(FrequencyQuery("r", "a", value=1))
        truth = float(np.count_nonzero(stream == 1))
        assert response.answer == pytest.approx(truth, rel=0.2)

    def test_distinct(self, loaded):
        stream, _, engine = loaded
        response = engine.answer(DistinctCountQuery("r", "a"))
        truth = len(np.unique(stream))
        assert response.answer == pytest.approx(truth, rel=0.4)

    def test_selectivity(self, loaded):
        stream, _, engine = loaded
        response = engine.answer(
            SelectivityQuery("r", "a", Predicate(high=10))
        )
        truth = float((stream <= 10).mean())
        assert response.answer == pytest.approx(truth, abs=0.05)

    def test_approximate_answers_cost_no_disk(self, loaded):
        _, warehouse, engine = loaded
        before = warehouse.counters.disk_accesses
        engine.answer(CountQuery("r", "a", Predicate(high=10)))
        engine.answer(HotListQuery("r", "a", k=3))
        assert warehouse.counters.disk_accesses == before

    def test_exact_cost_estimate_attached(self, loaded):
        stream, _, engine = loaded
        response = engine.answer(CountQuery("r", "a"))
        assert response.exact_cost_estimate == len(stream)


class TestExactFallback:
    def test_exact_count(self, loaded):
        stream, warehouse, engine = loaded
        before = warehouse.counters.disk_accesses
        response = engine.answer(
            CountQuery("r", "a", Predicate(high=10)), exact=True
        )
        assert response.is_exact
        assert response.answer == float(np.count_nonzero(stream <= 10))
        assert warehouse.counters.disk_accesses - before == len(stream)

    def test_exact_hotlist(self, loaded):
        stream, _, engine = loaded
        response = engine.answer(HotListQuery("r", "a", k=3), exact=True)
        from repro.stats.frequency import top_k

        assert [
            (entry.value, entry.estimated_count)
            for entry in response.answer
        ] == [(v, float(c)) for v, c in top_k(stream, 3)]

    def test_exact_all_query_types(self, loaded):
        stream, _, engine = loaded
        assert engine.answer(
            SumQuery("r", "a"), exact=True
        ).answer == pytest.approx(float(stream.sum()))
        assert engine.answer(
            AverageQuery("r", "a"), exact=True
        ).answer == pytest.approx(float(stream.mean()))
        assert engine.answer(
            DistinctCountQuery("r", "a"), exact=True
        ).answer == len(np.unique(stream))
        assert engine.answer(
            FrequencyQuery("r", "a", value=1), exact=True
        ).answer == float(np.count_nonzero(stream == 1))
        assert engine.answer(
            SelectivityQuery("r", "a", Predicate(high=10)), exact=True
        ).answer == pytest.approx(float((stream <= 10).mean()))


class TestMissingSynopses:
    def test_no_sample_raises(self):
        stream = zipf_stream(1000, 100, 1.0, seed=5)
        _, engine = _build(stream, with_sample=False)
        with pytest.raises(NoSynopsisError):
            engine.answer(CountQuery("r", "a"))

    def test_no_hotlist_raises(self):
        stream = zipf_stream(1000, 100, 1.0, seed=6)
        _, engine = _build(stream, with_hotlist=False)
        with pytest.raises(NoSynopsisError):
            engine.answer(HotListQuery("r", "a", k=3))

    def test_no_distinct_raises(self):
        stream = zipf_stream(1000, 100, 1.0, seed=7)
        _, engine = _build(stream, with_distinct=False)
        with pytest.raises(NoSynopsisError):
            engine.answer(DistinctCountQuery("r", "a"))

    def test_exact_works_without_synopses(self):
        stream = zipf_stream(1000, 100, 1.0, seed=8)
        _, engine = _build(
            stream,
            with_sample=False,
            with_hotlist=False,
            with_distinct=False,
        )
        response = engine.answer(CountQuery("r", "a"), exact=True)
        assert response.answer == 1000.0


class TestDeletions:
    def test_counting_synopses_track_deletes(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        engine = ApproximateAnswerEngine(warehouse)
        hotlist = CountingHotList(100, seed=9)
        engine.register_hotlist("r", "a", hotlist)
        for _ in range(50):
            warehouse.insert("r", (1,))
        for _ in range(10):
            warehouse.insert("r", (2,))
        for _ in range(45):
            warehouse.delete("r", (1,))
        answer = engine.answer(HotListQuery("r", "a", k=1)).answer
        assert answer.values() == [2]
        assert engine.rows_loaded("r") == 15

    def test_delete_with_nondeletable_synopsis_raises(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        engine = ApproximateAnswerEngine(warehouse)
        engine.register_sample("r", "a", ConciseSample(100, seed=10))
        warehouse.insert("r", (1,))
        with pytest.raises(RuntimeError):
            warehouse.delete("r", (1,))


class TestMultiAttribute:
    def test_synopses_routed_per_attribute(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a", "b"])
        engine = ApproximateAnswerEngine(warehouse)
        engine.register_sample("r", "a", ReservoirSample(50, seed=11))
        engine.register_sample("r", "b", ReservoirSample(50, seed=12))
        warehouse.load("r", [(v, v * 100) for v in range(40)])
        count_a = engine.answer(CountQuery("r", "a", Predicate(high=39)))
        count_b = engine.answer(CountQuery("r", "b", Predicate(high=39)))
        assert count_a.answer == pytest.approx(40.0)
        assert count_b.answer == pytest.approx(1.0, abs=2.0)
