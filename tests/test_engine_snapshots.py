"""Unit tests for synopsis snapshot / restore."""

from __future__ import annotations

import pytest

from repro.core import ConciseSample, CountingSample, ReservoirSample
from repro.engine.snapshots import (
    dumps,
    loads,
    restore_synopsis,
    snapshot_synopsis,
)
from repro.streams import zipf_stream


def _loaded_concise():
    sample = ConciseSample(100, seed=1)
    sample.insert_array(zipf_stream(20_000, 1000, 1.2, seed=2))
    return sample


def _loaded_counting():
    sample = CountingSample(100, seed=3)
    sample.insert_array(zipf_stream(20_000, 1000, 1.2, seed=4))
    return sample


def _loaded_reservoir():
    sample = ReservoirSample(64, seed=5)
    sample.insert_array(zipf_stream(20_000, 1000, 1.2, seed=6))
    return sample


class TestRoundTrips:
    def test_concise_roundtrip_preserves_state(self):
        original = _loaded_concise()
        restored = loads(dumps(original), seed=7)
        assert isinstance(restored, ConciseSample)
        assert restored.as_dict() == original.as_dict()
        assert restored.threshold == original.threshold
        assert restored.footprint == original.footprint
        assert restored.sample_size == original.sample_size
        assert restored.counters.inserts == original.counters.inserts
        restored.check_invariants()

    def test_counting_roundtrip_preserves_state(self):
        original = _loaded_counting()
        restored = loads(dumps(original), seed=8)
        assert isinstance(restored, CountingSample)
        assert restored.as_dict() == original.as_dict()
        assert restored.threshold == original.threshold
        assert restored.footprint == original.footprint
        restored.check_invariants()

    def test_reservoir_roundtrip_preserves_state(self):
        original = _loaded_reservoir()
        restored = loads(dumps(original), seed=9)
        assert isinstance(restored, ReservoirSample)
        assert restored.points() == original.points()
        assert restored.total_inserted == original.total_inserted
        restored.check_invariants()

    def test_snapshot_is_json_compatible(self):
        import json

        payload = dumps(_loaded_concise())
        state = json.loads(payload)
        assert state["kind"] == "concise-sample"
        assert isinstance(state["counts"], list)


class TestContinuation:
    def test_restored_concise_keeps_maintaining(self):
        original = _loaded_concise()
        restored = restore_synopsis(
            snapshot_synopsis(original), seed=10
        )
        more = zipf_stream(20_000, 1000, 1.2, seed=11)
        restored.insert_array(more)
        restored.check_invariants()
        assert restored.footprint <= 100
        assert restored.counters.inserts == 40_000
        # Sample-size remains consistent with the threshold.
        expected = restored.counters.inserts / restored.threshold
        assert restored.sample_size == pytest.approx(expected, rel=0.4)

    def test_restored_counting_handles_deletes(self):
        original = _loaded_counting()
        restored = restore_synopsis(
            snapshot_synopsis(original), seed=12
        )
        value, count = next(iter(restored.pairs()))
        restored.delete(value)
        assert restored.count_of(value) == count - 1
        restored.check_invariants()

    def test_restored_reservoir_keeps_sampling(self):
        original = _loaded_reservoir()
        restored = restore_synopsis(
            snapshot_synopsis(original), seed=13
        )
        restored.insert_many(range(5000))
        assert restored.sample_size == 64
        restored.check_invariants()

    def test_restored_flip_accounting_continues(self):
        original = _loaded_concise()
        flips_before = original.counters.flips
        restored = restore_synopsis(
            snapshot_synopsis(original), seed=14
        )
        restored.insert_array(zipf_stream(20_000, 1000, 1.2, seed=15))
        assert restored.counters.flips > flips_before


class TestErrors:
    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            snapshot_synopsis(object())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            restore_synopsis(
                {"kind": "nonsense", "counters": {}}
            )
