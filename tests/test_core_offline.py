"""Unit tests for the offline/static concise-sample construction."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.base import SynopsisError
from repro.core.offline import offline_concise_sample
from repro.randkit.coins import CostCounters
from repro.streams import zipf_stream


class TestBasics:
    def test_empty_relation(self):
        sample = offline_concise_sample(np.empty(0, dtype=np.int64), 10, 1)
        assert sample.sample_size == 0
        assert sample.footprint == 0

    def test_rejects_tiny_footprint(self):
        with pytest.raises(SynopsisError):
            offline_concise_sample(np.array([1, 2]), 1, seed=1)

    def test_footprint_bound_respected(self):
        values = zipf_stream(20_000, 2000, 1.0, seed=2)
        sample = offline_concise_sample(values, 64, seed=3)
        assert sample.footprint <= 64
        sample.check_invariants()

    def test_single_value_relation_absorbs_everything(self):
        """All-identical data: one pair holds the whole relation."""
        values = np.full(5000, 9)
        sample = offline_concise_sample(values, 10, seed=4)
        assert sample.sample_size == 5000
        assert sample.footprint == 2

    def test_small_domain_exact_histogram(self):
        """Domain <= m/2: the concise sample is the exact histogram."""
        values = zipf_stream(10_000, 20, 1.0, seed=5)
        sample = offline_concise_sample(values, 64, seed=6)
        assert sample.sample_size == 10_000
        assert sample.as_dict() == dict(Counter(values.tolist()))

    def test_sample_is_multisubset_of_data(self):
        values = zipf_stream(5000, 200, 1.0, seed=7)
        truth = Counter(values.tolist())
        sample = offline_concise_sample(values, 40, seed=8)
        for value, count in sample.pairs():
            assert count <= truth[value]

    def test_deterministic(self):
        values = zipf_stream(5000, 500, 1.2, seed=9)
        a = offline_concise_sample(values, 32, seed=10)
        b = offline_concise_sample(values, 32, seed=10)
        assert a.as_dict() == b.as_dict()

    def test_disk_accesses_charged(self):
        counters = CostCounters()
        values = zipf_stream(5000, 500, 1.0, seed=11)
        sample = offline_concise_sample(
            values, 32, seed=12, counters=counters
        )
        # One access per *selected* point, plus the overflow probe.
        assert counters.disk_accesses >= sample.sample_size
        assert counters.disk_accesses <= sample.sample_size + 1


class TestSampleSizeIntrinsics:
    def test_skew_increases_sample_size(self):
        """The offline sample-size grows with skew (the Figure-3
        'concise offline' curve shape)."""
        sizes = []
        for skew in (0.0, 1.0, 2.0):
            values = zipf_stream(50_000, 5000, skew, seed=13)
            sample = offline_concise_sample(values, 100, seed=14)
            sizes.append(sample.sample_size)
        assert sizes[0] < sizes[1] < sizes[2]

    def test_sample_size_at_least_near_footprint(self):
        values = zipf_stream(50_000, 5000, 0.0, seed=15)
        sample = offline_concise_sample(values, 100, seed=16)
        # The maximal prefix fills the footprint up to the last point.
        assert sample.sample_size >= 50

    def test_offline_upper_bounds_online_on_average(self):
        """The offline construction is the intrinsic optimum the
        online algorithm approaches from below (Figure 3)."""
        from repro.core.concise import ConciseSample

        values = zipf_stream(50_000, 5000, 1.5, seed=17)
        offline_sizes = []
        online_sizes = []
        for trial in range(10):
            offline_sizes.append(
                offline_concise_sample(values, 100, seed=100 + trial).sample_size
            )
            online = ConciseSample(100, seed=200 + trial)
            online.insert_array(values)
            online_sizes.append(online.sample_size)
        assert np.mean(online_sizes) <= np.mean(offline_sizes) * 1.05


class TestWithReplacement:
    def test_with_replacement_mode_runs(self):
        values = zipf_stream(10_000, 1000, 1.0, seed=18)
        sample = offline_concise_sample(
            values, 50, seed=19, with_replacement=True
        )
        assert 0 < sample.footprint <= 50
        sample.check_invariants()

    def test_with_replacement_can_overdraw_a_value(self):
        """With replacement the same tuple can be picked twice, so a
        sampled count may exceed the true count."""
        values = np.arange(50)  # all distinct
        overdrawn = False
        for trial in range(50):
            sample = offline_concise_sample(
                values, 100, seed=300 + trial, with_replacement=True
            )
            if any(count > 1 for _, count in sample.pairs()):
                overdrawn = True
                break
        assert overdrawn
