"""Unit tests for the general AMS F_k estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SynopsisError
from repro.stats.frequency import frequency_moment
from repro.streams import zipf_stream
from repro.synopses.ams_fk import AmsFkEstimator


class TestConstruction:
    def test_validation(self):
        with pytest.raises(SynopsisError):
            AmsFkEstimator(0)
        with pytest.raises(SynopsisError):
            AmsFkEstimator(2, group_count=0)
        with pytest.raises(SynopsisError):
            AmsFkEstimator(2, trackers_per_group=0)

    def test_footprint(self):
        estimator = AmsFkEstimator(3, group_count=5, trackers_per_group=8)
        assert estimator.footprint == 80

    def test_empty_estimate(self):
        assert AmsFkEstimator(2, seed=1).estimate() == 0.0


class TestExactness:
    def test_f1_is_stream_length(self):
        """k = 1: X = n(c - (c-1)) = n always -- exact regardless of
        randomness."""
        estimator = AmsFkEstimator(1, seed=2)
        for value in zipf_stream(3000, 100, 1.0, seed=3).tolist():
            estimator.insert(value)
        assert estimator.estimate() == 3000.0

    def test_single_value_stream_exact_for_any_k(self):
        """One value: every tracker holds it; c is uniform on 1..n and
        the telescoped mean still estimates n^k; check within noise."""
        n = 2000
        estimator = AmsFkEstimator(
            2, group_count=5, trackers_per_group=32, seed=4
        )
        for _ in range(n):
            estimator.insert(7)
        assert estimator.estimate() == pytest.approx(n * n, rel=0.25)


class TestAccuracy:
    @pytest.mark.parametrize("k", [2, 3])
    def test_moment_estimate_ballpark(self, k):
        stream = zipf_stream(8000, 100, 1.0, seed=10 + k)
        estimator = AmsFkEstimator(
            k, group_count=7, trackers_per_group=48, seed=20 + k
        )
        for value in stream.tolist():
            estimator.insert(value)
        truth = frequency_moment(stream, k)
        assert estimator.estimate() == pytest.approx(truth, rel=0.5)

    def test_unbiased_across_trials(self):
        stream = zipf_stream(4000, 50, 1.0, seed=30)
        truth = frequency_moment(stream, 2)
        estimates = []
        for trial in range(15):
            estimator = AmsFkEstimator(
                2, group_count=1, trackers_per_group=32,
                seed=100 + trial,
            )
            for value in stream.tolist():
                estimator.insert(value)
            estimates.append(estimator.estimate())
        assert float(np.mean(estimates)) == pytest.approx(truth, rel=0.2)

    def test_total_inserted(self):
        estimator = AmsFkEstimator(2, seed=40)
        estimator.insert_many([1, 2, 3])
        assert estimator.total_inserted == 3
