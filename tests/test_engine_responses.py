"""Unit tests for query/response types."""

from __future__ import annotations

import pytest

from repro.engine.queries import (
    CountQuery,
    DistinctCountQuery,
    HotListQuery,
)
from repro.engine.responses import QueryResponse
from repro.estimators.intervals import ConfidenceInterval
from repro.estimators.selectivity import Predicate
from repro.hotlist.base import HotListAnswer, HotListEntry


class TestQueries:
    def test_queries_are_frozen_and_hashable(self):
        query = HotListQuery("r", "a", k=5)
        with pytest.raises(AttributeError):
            query.k = 6  # type: ignore[misc]
        assert hash(query) == hash(HotListQuery("r", "a", k=5))

    def test_default_parameters(self):
        assert HotListQuery("r", "a").k == 10
        assert CountQuery("r", "a").predicate is None

    def test_predicate_carried(self):
        predicate = Predicate(low=1, high=5)
        query = CountQuery("r", "a", predicate)
        assert query.predicate is predicate

    def test_distinct_query_minimal(self):
        query = DistinctCountQuery("r", "a")
        assert query.relation == "r"
        assert query.attribute == "a"


class TestQueryResponse:
    def test_str_with_interval(self):
        response = QueryResponse(
            answer=123.456,
            interval=ConfidenceInterval(100.0, 150.0, 0.95),
            method="sample",
            is_exact=False,
        )
        text = str(response)
        assert "123.5" in text
        assert "95%" in text
        assert "approximate" in text
        assert "sample" in text

    def test_str_exact_scalar(self):
        response = QueryResponse(
            answer=42.0,
            interval=None,
            method="exact-scan",
            is_exact=True,
            disk_accesses=1000,
        )
        text = str(response)
        assert "42" in text
        assert "exact" in text

    def test_str_hotlist(self):
        answer = HotListAnswer(
            k=3, entries=(HotListEntry(1, 10.0),)
        )
        response = QueryResponse(
            answer=answer,
            interval=None,
            method="CountingHotList",
            is_exact=False,
        )
        assert "hot list of 1 values" in str(response)

    def test_frozen(self):
        response = QueryResponse(
            answer=1.0, interval=None, method="x", is_exact=False
        )
        with pytest.raises(AttributeError):
            response.answer = 2.0  # type: ignore[misc]

    def test_cost_fields_default_zero(self):
        response = QueryResponse(
            answer=1.0, interval=None, method="x", is_exact=False
        )
        assert response.disk_accesses == 0
        assert response.exact_cost_estimate == 0
