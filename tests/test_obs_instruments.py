"""Synopsis instrumentation: collectors, lifecycle probe, round-trip.

The acceptance test for the observability layer lives here:
with metrics enabled, the Prometheus text exposition is parsed back
and every gauge/ledger value must equal the state read directly off
the synopsis objects.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import (
    ConciseSample,
    CountingSample,
    ReservoirSample,
    ShardedSynopsis,
)
from repro.core.merge import merge_concise, merge_counting
from repro.streams import zipf_stream


@pytest.fixture(autouse=True)
def _restore_obs_defaults():
    yield
    obs.disable()


def _labels(name: str, synopsis) -> dict[str, str]:
    return {"synopsis": name, "kind": synopsis.SNAPSHOT_KIND}


class TestPrometheusRoundTrip:
    """Exposition values == direct synopsis reads (acceptance bar)."""

    def test_gauges_and_ledger_match_direct_reads(self):
        registry = obs.enable()
        stream = zipf_stream(50_000, 5_000, 1.25, seed=3)
        synopses = {
            "s.concise": ConciseSample(500, seed=1),
            "s.counting": CountingSample(500, seed=2),
            "s.reservoir": ReservoirSample(300, seed=3),
        }
        for name, synopsis in synopses.items():
            obs.watch_synopsis(registry, synopsis, name)
            synopsis.insert_array(stream)

        parsed = obs.parse_prometheus(obs.render_prometheus(registry))

        def series(metric: str, labels: dict[str, str]) -> float:
            return parsed[metric][tuple(sorted(labels.items()))]

        for name, synopsis in synopses.items():
            labels = _labels(name, synopsis)
            assert series(
                "repro_synopsis_footprint_words", labels
            ) == float(synopsis.footprint)
            assert series(
                "repro_synopsis_stream_length", labels
            ) == float(synopsis.total_inserted)
            if hasattr(synopsis, "sample_size"):
                assert series(
                    "repro_synopsis_sample_size", labels
                ) == float(synopsis.sample_size)
            if hasattr(synopsis, "threshold"):
                assert series(
                    "repro_synopsis_threshold", labels
                ) == float(synopsis.threshold)
            assert series("repro_cost_flips_total", labels) == float(
                synopsis.counters.flips
            )
            assert series("repro_cost_inserts_total", labels) == float(
                synopsis.counters.inserts
            )
            assert series("repro_cost_lookups_total", labels) == float(
                synopsis.counters.lookups
            )

    def test_ledger_bridge_is_monotonic_across_scrapes(self):
        registry = obs.enable()
        sample = ConciseSample(200, seed=5)
        obs.watch_synopsis(registry, sample, "s.a")
        sample.insert_array(zipf_stream(10_000, 1_000, 1.0, seed=6))
        registry.collect()
        first = registry.value(
            "repro_cost_inserts_total", _labels("s.a", sample)
        )
        sample.insert_array(zipf_stream(10_000, 1_000, 1.0, seed=7))
        registry.collect()
        second = registry.value(
            "repro_cost_inserts_total", _labels("s.a", sample)
        )
        assert first == 10_000.0
        assert second == 20_000.0


class TestLifecycleProbe:
    def test_probe_defaults_to_none(self):
        from repro.obs import probe

        assert probe.PROBE is None

    def test_admissions_and_raises_counted(self):
        registry = obs.enable()
        sample = ConciseSample(100, seed=11)
        sample.insert_array(zipf_stream(50_000, 5_000, 1.0, seed=12))
        labels = {"kind": "concise-sample"}
        admissions = registry.value(
            "repro_synopsis_admissions_total", labels
        )
        raises = registry.value(
            "repro_synopsis_threshold_raises_total", labels
        )
        # Every current sample point was admitted at some point, and
        # the 100-word footprint forces many raises over 50K skewed
        # inserts.
        assert admissions >= sample.sample_size
        assert raises == sample.counters.threshold_raises > 0

    def test_per_element_path_counts_admissions_too(self):
        registry = obs.enable()
        sample = CountingSample(64, seed=13)
        for value in range(200):
            sample.insert(value % 40)
        labels = {"kind": "counting-sample"}
        assert (
            registry.value("repro_synopsis_admissions_total", labels) > 0
        )

    def test_eviction_survivor_accounting(self):
        registry = obs.enable()
        sample = ConciseSample(100, seed=14)
        sample.insert_array(zipf_stream(50_000, 50_000, 0.0, seed=15))
        labels = {"kind": "concise-sample"}
        survivors = registry.value(
            "repro_synopsis_eviction_survivors_total", labels
        )
        evictions = registry.value(
            "repro_synopsis_evictions_total", labels
        )
        assert survivors > 0
        assert evictions > 0

    def test_snapshot_events(self):
        registry = obs.enable()
        sample = ReservoirSample(10, seed=16)
        sample.insert_many(range(100))
        restored = ReservoirSample.from_dict(sample.to_dict(), seed=17)
        assert restored.sample_size == sample.sample_size
        assert (
            registry.value(
                "repro_synopsis_snapshot_events_total",
                {"kind": "reservoir-sample", "op": "dump"},
            )
            == 1.0
        )
        assert (
            registry.value(
                "repro_synopsis_snapshot_events_total",
                {"kind": "reservoir-sample", "op": "restore"},
            )
            == 1.0
        )

    def test_merge_events(self):
        registry = obs.enable()
        stream = zipf_stream(20_000, 2_000, 1.0, seed=18)
        concise_shards = [
            ConciseSample(200, seed=20 + i) for i in range(3)
        ]
        counting_shards = [
            CountingSample(200, seed=30 + i) for i in range(2)
        ]
        for shard in concise_shards + counting_shards:
            shard.insert_array(stream)
        merge_concise(concise_shards, seed=40)
        merge_counting(counting_shards, seed=41)
        assert (
            registry.value(
                "repro_synopsis_merges_total",
                {"kind": "concise-sample"},
            )
            == 1.0
        )
        assert (
            registry.value(
                "repro_synopsis_merged_shards_total",
                {"kind": "concise-sample"},
            )
            == 3.0
        )
        assert (
            registry.value(
                "repro_synopsis_merged_shards_total",
                {"kind": "counting-sample"},
            )
            == 2.0
        )

    def test_sharded_ingest_events(self):
        registry = obs.enable()
        sharded = ShardedSynopsis.concise(
            shards=4, footprint_bound=128, seed=50, parallel=False
        )
        sharded.insert_array(zipf_stream(8_000, 500, 1.0, seed=51))
        sharded.insert_array(zipf_stream(8_000, 500, 1.0, seed=52))
        labels = {"kind": "concise-sample"}
        assert (
            registry.value("repro_sharded_ingest_batches_total", labels)
            == 2.0
        )
        assert (
            registry.value("repro_sharded_ingest_rows_total", labels)
            == 16_000.0
        )

    def test_disabled_probe_records_nothing(self):
        # No enable(): the default no-op path must leave no trace and
        # produce an identical synopsis.
        seeded = ConciseSample(100, seed=60)
        seeded.insert_array(zipf_stream(20_000, 2_000, 1.0, seed=61))

        registry = obs.enable()
        obs.disable()
        mirrored = ConciseSample(100, seed=60)
        mirrored.insert_array(zipf_stream(20_000, 2_000, 1.0, seed=61))
        assert mirrored.as_dict() == seeded.as_dict()
        assert obs.render_prometheus(registry) == ""


class TestWatchDuckTyping:
    def test_minimal_synopsis_only_needs_footprint(self):
        class Minimal:
            footprint = 7

        registry = obs.enable()
        obs.watch_synopsis(registry, Minimal(), "m")
        parsed = obs.parse_prometheus(obs.render_prometheus(registry))
        labels = tuple(
            sorted({"synopsis": "m", "kind": "minimal"}.items())
        )
        assert parsed["repro_synopsis_footprint_words"][labels] == 7.0
