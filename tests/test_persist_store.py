"""CheckpointStore and WriteAheadLog unit behaviour.

Atomicity of checkpoint writes, segment rotation/truncation, read-back
contracts (gaps, torn tails), and the retry policy's transient-only
backoff.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    FSYNC_ERROR,
    WRITE_ERROR,
    FaultPlan,
    FaultyFilesystem,
)
from repro.persist import (
    CheckpointStore,
    LocalFileSystem,
    LogGapError,
    RetryPolicy,
    TornWriteError,
    TransientIOError,
    read_operations,
    segment_name,
)
from repro.persist.checkpoint import _checkpoint_name
from repro.persist.errors import ChecksumMismatch


class _PostEffectTransient:
    """A filesystem whose remove/replace take effect, *then* raise once.

    The fault injector always fails before the operation happens; this
    wrapper models the other real-world ordering, where the transient
    error surfaces after the change reached the disk and the retry
    re-runs an operation that already succeeded.
    """

    def __init__(self, inner, ops):
        self._inner = inner
        self._pending = set(ops)

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def remove(self, path):
        self._inner.remove(path)
        if "remove" in self._pending:
            self._pending.discard("remove")
            raise TransientIOError("post-effect remove")

    def replace(self, source, destination):
        self._inner.replace(source, destination)
        if "replace" in self._pending:
            self._pending.discard("replace")
            raise TransientIOError("post-effect replace")


def op(sequence, value=0, insert=True):
    return {
        "kind": "op",
        "sequence": sequence,
        "relation": "r",
        "row": [value],
        "insert": insert,
    }


class TestCheckpointStore:
    def test_write_then_load_round_trips(self, tmp_path):
        store = CheckpointStore(tmp_path)
        state = {"relations": {}, "synopses": [], "note": "x"}
        store.write_checkpoint(12, state)
        assert store.checkpoint_sequences() == [12]
        assert store.load_checkpoint(12) == state
        assert store.latest_checkpoint() == (12, state)

    def test_no_temporaries_survive_a_clean_write(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write_checkpoint(1, {"a": 1})
        names = LocalFileSystem().listdir(tmp_path)
        assert not [n for n in names if n.endswith(".tmp")]

    def test_latest_prefers_newest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.write_checkpoint(5, {"v": "old"})
        store.write_checkpoint(9, {"v": "new"})
        assert store.latest_checkpoint() == (9, {"v": "new"})

    def test_prune_keeps_newest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for sequence in (1, 2, 3):
            store.write_checkpoint(sequence, {"s": sequence})
        assert store.prune_checkpoints(keep=1) == 2
        assert store.checkpoint_sequences() == [3]
        with pytest.raises(ValueError):
            store.prune_checkpoints(keep=0)

    def test_remove_temporaries_cleans_leftovers(self, tmp_path):
        store = CheckpointStore(tmp_path)
        leftover = tmp_path / (_checkpoint_name(4) + ".tmp")
        leftover.write_bytes(b"partial")
        assert store.remove_temporaries() == 1
        assert not leftover.exists()

    def test_truncated_checkpoint_is_torn(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.write_checkpoint(3, {"a": 1})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TornWriteError):
            store.load_checkpoint(3)

    def test_corrupt_checkpoint_is_checksum_mismatch(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.write_checkpoint(3, {"a": 1})
        data = bytearray(path.read_bytes())
        data[25] ^= 0x40
        path.write_bytes(bytes(data))
        with pytest.raises(ChecksumMismatch):
            store.latest_checkpoint()  # no silent fallback either

    def test_newer_format_version_is_rejected(self, tmp_path):
        from repro.persist.framing import encode_frame

        store = CheckpointStore(tmp_path)
        path = tmp_path / _checkpoint_name(2)
        path.write_bytes(
            encode_frame(
                {
                    "kind": "checkpoint",
                    "format_version": 99,
                    "sequence": 2,
                    "state": {},
                }
            )
        )
        with pytest.raises(Exception, match="format 99"):
            store.load_checkpoint(2)


class TestWriteAheadLog:
    def test_append_and_read_back(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.wal.open_segment(1)
        for sequence in (1, 2, 3):
            store.wal.append(op(sequence, value=sequence))
        store.wal.close()
        operations, _schemas, torn = read_operations(
            LocalFileSystem(), store.wal.directory
        )
        assert torn is None
        assert [o["sequence"] for o in operations] == [1, 2, 3]

    def test_rotation_spans_segments(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.wal.open_segment(1)
        store.wal.append(op(1))
        store.wal.append(op(2))
        store.wal.open_segment(3)
        store.wal.append(op(3))
        store.wal.close()
        assert store.wal.segment_bases() == [1, 3]
        operations, _schemas, _torn = read_operations(
            LocalFileSystem(), store.wal.directory
        )
        assert [o["sequence"] for o in operations] == [1, 2, 3]

    def test_truncate_through_drops_covered_segments(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for base in (1, 3, 5):
            store.wal.open_segment(base)
            store.wal.append(op(base))
            store.wal.append(op(base + 1))
        store.wal.close()
        # A checkpoint at sequence 4 covers segments based at 1 and 3.
        assert store.wal.truncate_through(5) == 2
        assert store.wal.segment_bases() == [5]

    def test_missing_segment_is_a_gap(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for base in (1, 3, 5):
            store.wal.open_segment(base)
            store.wal.append(op(base))
            store.wal.append(op(base + 1))
        store.wal.close()
        (store.wal.directory / segment_name(3)).unlink()
        with pytest.raises(LogGapError) as excinfo:
            read_operations(LocalFileSystem(), store.wal.directory)
        assert excinfo.value.expected == 3
        assert excinfo.value.found == 5

    def test_torn_tail_in_last_segment_is_tolerated(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.wal.open_segment(1)
        store.wal.append(op(1))
        store.wal.append(op(2))
        store.wal.close()
        path = store.wal.directory / segment_name(1)
        path.write_bytes(path.read_bytes()[:-5])
        operations, _schemas, torn = read_operations(
            LocalFileSystem(), store.wal.directory
        )
        assert [o["sequence"] for o in operations] == [1]
        assert torn is not None

    def test_torn_tail_strict_mode_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.wal.open_segment(1)
        store.wal.append(op(1))
        store.wal.close()
        path = store.wal.directory / segment_name(1)
        path.write_bytes(path.read_bytes()[:-5])
        with pytest.raises(TornWriteError):
            read_operations(
                LocalFileSystem(),
                store.wal.directory,
                tolerate_torn_tail=False,
            )

    def test_torn_record_mid_wal_is_never_tolerated(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.wal.open_segment(1)
        store.wal.append(op(1))
        store.wal.open_segment(2)
        store.wal.append(op(2))
        store.wal.close()
        first = store.wal.directory / segment_name(1)
        first.write_bytes(first.read_bytes()[:-5])
        with pytest.raises(TornWriteError):
            read_operations(LocalFileSystem(), store.wal.directory)

    def test_append_without_segment_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(RuntimeError, match="open_segment"):
            store.wal.append(op(1))

    def test_sync_every_groups_fsyncs(self, tmp_path):
        plan = FaultPlan.none()
        fs = FaultyFilesystem(LocalFileSystem(), plan)
        grouped = CheckpointStore(tmp_path / "g", fs, sync_every=4)
        grouped.wal.open_segment(1)
        baseline = fs.operations
        for sequence in range(1, 9):
            grouped.wal.append(op(sequence))
        grouped.wal.close()
        # 8 writes + 2 group fsyncs + 1 unconditional fsync at close.
        assert fs.operations - baseline == 11


class TestRetryPolicy:
    def test_transient_faults_are_retried(self, tmp_path):
        sleeps = []
        policy = RetryPolicy(
            attempts=3, base_delay=0.5, sleep=sleeps.append
        )
        failures = iter([TransientIOError("once"), None])

        def flaky():
            error = next(failures)
            if error is not None:
                raise error
            return "ok"

        assert policy.call(flaky) == "ok"
        assert sleeps == [0.5]

    def test_backoff_is_deterministic_and_exhaustible(self):
        sleeps = []
        policy = RetryPolicy(
            attempts=3, base_delay=1.0, multiplier=3.0, sleep=sleeps.append
        )

        def always_failing():
            raise TransientIOError("always")

        with pytest.raises(TransientIOError):
            policy.call(always_failing)
        assert sleeps == [1.0, 3.0]

    def test_non_transient_errors_propagate_immediately(self):
        sleeps = []
        policy = RetryPolicy(attempts=5, sleep=sleeps.append)

        def corrupt():
            raise ChecksumMismatch("f", 0, "bad")

        with pytest.raises(ChecksumMismatch):
            policy.call(corrupt)
        assert sleeps == []

    def test_post_effect_transient_remove_is_idempotent(self, tmp_path):
        # A real transient-I/O source can surface its error *after*
        # the delete took effect; the retried callable must treat
        # "already gone" as success instead of failing the checkpoint.
        fs = _PostEffectTransient(LocalFileSystem(), ops={"remove"})
        store = CheckpointStore(tmp_path, fs)
        for sequence in (1, 2):
            store.write_checkpoint(sequence, {"s": sequence})
        assert store.prune_checkpoints(keep=1) == 1
        assert store.checkpoint_sequences() == [2]

    def test_post_effect_transient_replace_is_idempotent(self, tmp_path):
        fs = _PostEffectTransient(LocalFileSystem(), ops={"replace"})
        store = CheckpointStore(tmp_path, fs)
        store.write_checkpoint(1, {"a": 1})
        assert store.load_checkpoint(1) == {"a": 1}
        names = LocalFileSystem().listdir(tmp_path)
        assert not [n for n in names if n.endswith(".tmp")]

    def test_post_effect_transient_truncate_is_idempotent(self, tmp_path):
        fs = _PostEffectTransient(LocalFileSystem(), ops={"remove"})
        store = CheckpointStore(tmp_path, fs)
        for base in (1, 3):
            store.wal.open_segment(base)
            store.wal.append(op(base))
            store.wal.append(op(base + 1))
        store.wal.close()
        assert store.wal.truncate_through(2) == 1
        assert store.wal.segment_bases() == [3]

    def test_injected_write_fault_is_absorbed_by_store(self, tmp_path):
        # WRITE_ERROR at a write inside write_checkpoint: the retry
        # wrapper re-runs the whole temp-file write and succeeds.
        fs = FaultyFilesystem(
            LocalFileSystem(), FaultPlan.single(0, WRITE_ERROR)
        )
        store = CheckpointStore(tmp_path, fs)
        store.write_checkpoint(1, {"a": 1})
        assert store.load_checkpoint(1) == {"a": 1}

    def test_injected_fsync_fault_is_absorbed_by_wal(self, tmp_path):
        healthy = FaultyFilesystem(LocalFileSystem(), FaultPlan.none())
        probe = CheckpointStore(tmp_path / "probe", healthy)
        probe.wal.open_segment(1)
        probe.wal.append(op(1))
        probe.wal.close()

        for index in range(healthy.operations):
            fs = FaultyFilesystem(
                LocalFileSystem(), FaultPlan.single(index, FSYNC_ERROR)
            )
            store = CheckpointStore(tmp_path / f"run{index}", fs)
            store.wal.open_segment(1)
            store.wal.append(op(1))
            store.wal.close()
            operations, _schemas, torn = read_operations(
                LocalFileSystem(), store.wal.directory
            )
            assert torn is None
            assert [o["sequence"] for o in operations] == [1]
