"""Unit tests for backing samples (GMP97b) under inserts and deletes."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.backing import BackingSample
from repro.core.base import SynopsisError


class TestConstruction:
    def test_default_min_size(self):
        sample = BackingSample(100, seed=1)
        assert sample.min_size == 50

    def test_validation(self):
        with pytest.raises(SynopsisError):
            BackingSample(0)
        with pytest.raises(SynopsisError):
            BackingSample(10, min_size=0)
        with pytest.raises(SynopsisError):
            BackingSample(10, min_size=11)


class TestInserts:
    def test_fill_phase_takes_everything(self):
        sample = BackingSample(10, seed=2)
        for i in range(7):
            sample.insert_row(i, i * 10)
        assert sample.sample_size == 7
        assert sorted(sample.values().tolist()) == [
            i * 10 for i in range(7)
        ]

    def test_capacity_respected(self):
        sample = BackingSample(10, seed=3)
        for i in range(1000):
            sample.insert_row(i, i)
        assert sample.sample_size == 10
        sample.check_invariants()

    def test_duplicate_id_rejected(self):
        sample = BackingSample(10, seed=4)
        sample.insert_row(1, 5)
        with pytest.raises(SynopsisError):
            sample.insert_row(1, 6)

    def test_auto_id_stream_interface(self):
        sample = BackingSample(5, seed=5)
        sample.insert_many(range(100))
        assert sample.sample_size == 5
        assert sample.relation_size == 100

    def test_uniformity_insert_only(self):
        """Classic reservoir property holds for the id-based variant."""
        n, capacity, trials = 50, 5, 4000
        appearance = Counter()
        for trial in range(trials):
            sample = BackingSample(capacity, seed=trial)
            for i in range(n):
                sample.insert_row(i, i)
            appearance.update(dict(sample.items()).keys())
        expected = trials * capacity / n
        for i in range(n):
            assert appearance[i] == pytest.approx(expected, rel=0.3)


class TestDeletes:
    def test_delete_nonmember_keeps_sample(self):
        sample = BackingSample(5, seed=6)
        for i in range(100):
            sample.insert_row(i, i)
        members_before = set(dict(sample.items()))
        victim = next(i for i in range(100) if i not in members_before)
        sample.delete_row(victim)
        assert set(dict(sample.items())) == members_before
        assert sample.relation_size == 99

    def test_delete_member_removes_it(self):
        sample = BackingSample(5, seed=7)
        for i in range(100):
            sample.insert_row(i, i)
        member = next(iter(dict(sample.items())))
        sample.delete_row(member)
        assert member not in sample
        assert sample.sample_size == 4
        sample.check_invariants()

    def test_delete_from_empty_relation_raises(self):
        with pytest.raises(SynopsisError):
            BackingSample(5, seed=8).delete_row(1)

    def test_needs_rescan_flag(self):
        sample = BackingSample(4, min_size=3, seed=9)
        for i in range(100):
            sample.insert_row(i, i)
        # Delete members until the sample dips below min_size.
        while sample.sample_size >= 3:
            member = next(iter(dict(sample.items())))
            sample.delete_row(member)
        assert sample.needs_rescan

    def test_no_rescan_needed_when_relation_tiny(self):
        """A sample below min_size is fine if the relation itself is
        that small."""
        sample = BackingSample(4, min_size=3, seed=10)
        sample.insert_row(1, 1)
        sample.insert_row(2, 2)
        sample.delete_row(1)
        assert not sample.needs_rescan

    def test_uniformity_preserved_under_deletes(self):
        """After deleting some tuples, the survivors are equally
        likely to be in the sample."""
        n, capacity, trials = 40, 6, 4000
        deleted = set(range(0, n, 3))
        survivors = [i for i in range(n) if i not in deleted]
        appearance = Counter()
        for trial in range(trials):
            sample = BackingSample(capacity, seed=5000 + trial)
            for i in range(n):
                sample.insert_row(i, i)
            for i in deleted:
                sample.delete_row(i)
            appearance.update(dict(sample.items()).keys())
        sizes = sum(appearance.values())
        expected = sizes / len(survivors)
        for i in survivors:
            assert appearance[i] == pytest.approx(expected, rel=0.3)

    def test_uniformity_with_interleaved_inserts_after_deletes(self):
        """New inserts after deletions must not be over-represented."""
        capacity, trials = 6, 4000
        appearance = Counter()
        for trial in range(trials):
            sample = BackingSample(capacity, seed=9000 + trial)
            for i in range(30):
                sample.insert_row(i, i)
            for i in range(0, 10):
                sample.delete_row(i)
            for i in range(30, 50):  # late arrivals
                sample.insert_row(i, i)
            appearance.update(dict(sample.items()).keys())
        live = list(range(10, 50))
        total = sum(appearance[i] for i in live)
        expected = total / len(live)
        early = np.mean([appearance[i] for i in range(10, 30)])
        late = np.mean([appearance[i] for i in range(30, 50)])
        assert early == pytest.approx(expected, rel=0.25)
        assert late == pytest.approx(expected, rel=0.25)


class TestRebuild:
    def test_rebuild_restores_size_and_clears_flag(self):
        sample = BackingSample(10, min_size=8, seed=11)
        for i in range(100):
            sample.insert_row(i, i)
        for i in list(dict(sample.items()))[:5]:
            sample.delete_row(i)
        sample.needs_rescan = True
        sample.rebuild(((i, i) for i in range(95)))
        assert sample.sample_size == 10
        assert not sample.needs_rescan
        assert sample.relation_size == 95
        sample.check_invariants()

    def test_rebuild_charges_disk_accesses(self):
        sample = BackingSample(5, seed=12)
        sample.rebuild(((i, i) for i in range(200)))
        assert sample.counters.disk_accesses == 200

    def test_rebuild_small_relation(self):
        sample = BackingSample(10, seed=13)
        sample.rebuild(((i, i * 2) for i in range(3)))
        assert sample.sample_size == 3
        assert sorted(sample.values().tolist()) == [0, 2, 4]
