"""Unit tests for non-Zipf stream generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.distributions import (
    exponential_stream,
    mixture_stream,
    shifting_stream,
    uniform_stream,
)


class TestUniformStream:
    def test_domain(self):
        values = uniform_stream(10_000, 25, seed=1)
        assert values.min() >= 1
        assert values.max() <= 25

    def test_near_uniform_frequencies(self):
        values = uniform_stream(100_000, 10, seed=2)
        counts = np.bincount(values, minlength=11)[1:]
        assert counts.min() > 9_000
        assert counts.max() < 11_000

    def test_reproducible(self):
        assert np.array_equal(
            uniform_stream(100, 5, seed=3), uniform_stream(100, 5, seed=3)
        )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            uniform_stream(-1, 10, seed=1)
        with pytest.raises(ValueError):
            uniform_stream(10, 0, seed=1)


class TestExponentialStream:
    def test_matches_theorem3_distribution(self):
        """Pr(v = i) = alpha^-i (alpha - 1) for the Theorem-3 family."""
        alpha = 2.0
        values = exponential_stream(200_000, alpha, seed=4)
        n = len(values)
        for i in (1, 2, 3):
            expected = alpha**-i * (alpha - 1)
            observed = (values == i).mean()
            assert observed == pytest.approx(expected, abs=0.01)

    def test_values_positive(self):
        assert exponential_stream(10_000, 1.5, seed=5).min() >= 1

    def test_rejects_alpha_at_most_one(self):
        with pytest.raises(ValueError):
            exponential_stream(10, 1.0, seed=6)

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            exponential_stream(-5, 2.0, seed=6)

    def test_higher_alpha_more_concentrated(self):
        low = exponential_stream(50_000, 1.2, seed=7)
        high = exponential_stream(50_000, 4.0, seed=7)
        assert (high == 1).mean() > (low == 1).mean()


class TestMixtureStream:
    def test_single_component_passthrough(self):
        component = np.arange(1, 101)
        mixed = mixture_stream(100, [component], [1.0], seed=8)
        assert np.array_equal(mixed, component)

    def test_weights_respected(self):
        a = np.full(60_000, 1)
        b = np.full(60_000, 2)
        mixed = mixture_stream(50_000, [a, b], [0.8, 0.2], seed=9)
        assert 0.77 < (mixed == 1).mean() < 0.83

    def test_component_order_preserved(self):
        a = np.arange(100)
        b = np.full(100, -1)
        mixed = mixture_stream(100, [a, b], [0.5, 0.5], seed=10)
        from_a = mixed[mixed >= 0]
        assert np.all(np.diff(from_a) > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            mixture_stream(10, [], [], seed=1)
        with pytest.raises(ValueError):
            mixture_stream(10, [np.ones(10)], [1.0, 2.0], seed=1)
        with pytest.raises(ValueError):
            mixture_stream(10, [np.ones(5)], [1.0], seed=1)
        with pytest.raises(ValueError):
            mixture_stream(10, [np.ones(10)], [0.0], seed=1)


class TestShiftingStream:
    def test_length_preserved(self):
        assert len(shifting_stream(1000, 50, 1.5, seed=11)) == 1000

    def test_hot_value_changes_after_shift(self):
        stream = shifting_stream(
            40_000, 100, 2.0, seed=12, shift_at=0.5, shift_offset=50
        )
        first_half = stream[:20_000]
        second_half = stream[20_000:]
        assert np.bincount(first_half).argmax() == 1
        assert np.bincount(second_half).argmax() == 51

    def test_shift_keeps_domain(self):
        stream = shifting_stream(10_000, 30, 1.0, seed=13)
        assert stream.min() >= 1
        assert stream.max() <= 30

    def test_shift_at_bounds_validated(self):
        with pytest.raises(ValueError):
            shifting_stream(10, 5, 1.0, seed=1, shift_at=1.5)

    def test_shift_at_zero_shifts_everything(self):
        stream = shifting_stream(
            5000, 10, 3.0, seed=14, shift_at=0.0, shift_offset=5
        )
        assert np.bincount(stream).argmax() == 6
