"""Crash-consistency battery: random interleavings + exhaustive sweep.

Two complementary attacks on the recovery subsystem:

* a hypothesis state machine interleaving inserts, deletes,
  checkpoints, and crashes (clean kills and torn in-flight records),
  checking after every recovery that the warehouse, the bound
  synopsis, and the insert/delete ledgers all match an exact model;
* an exhaustive fault-point sweep -- every injectable operation index
  of a fixed workload, for every crash kind plus bit flips and
  transient errors -- asserting the contract from ISSUE: recovery
  either reproduces the acknowledged prefix exactly or raises a typed
  error.  Never a silently wrong sample.
"""

from __future__ import annotations

import shutil
import tempfile
from collections import Counter
from pathlib import Path

import numpy as np

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    precondition,
    rule,
)

from repro.core.counting import CountingSample
from repro.engine.warehouse import DataWarehouse
from repro.faults import (
    BIT_FLIP,
    CRASH_KINDS,
    TRANSIENT_KINDS,
    FaultPlan,
    FaultyFilesystem,
    SimulatedCrash,
)
from repro.persist import (
    CheckpointStore,
    LocalFileSystem,
    RecoveryError,
    RecoveryManager,
    segment_name,
)
from repro.persist.framing import encode_frame

# ----------------------------------------------------------------------
# Stateful machine
# ----------------------------------------------------------------------


class CrashRecoveryMachine(RuleBasedStateMachine):
    """Random interleavings of insert/delete/checkpoint/crash/recover.

    The model is exact: a row multiset plus insert/delete ledgers.
    After every recovery the machine checks

    * the recovered warehouse holds exactly the acknowledged rows,
    * the recovered sequence equals the acknowledged op count,
    * a recovered synopsis satisfies its own invariants, never counts
      a value more often than it is live, and its ``total_inserted`` /
      ``total_deleted`` ledgers match the replayed log.
    """

    def __init__(self) -> None:
        super().__init__()
        self.root = Path(tempfile.mkdtemp(prefix="crash-machine-"))

    @initialize(seed=st.integers(min_value=0, max_value=2**16))
    def boot(self, seed):
        self.seed = seed
        self.model: Counter[tuple[int, int]] = Counter()
        self.inserted = 0
        self.deleted = 0
        self.acked = 0
        warehouse = DataWarehouse()
        warehouse.create_relation("sales", ["item", "qty"])
        self._wire(warehouse, CountingSample(64, seed=seed))

    def _wire(self, warehouse, sample):
        """(Re)build the live side around a warehouse and a synopsis."""
        self.store = CheckpointStore(self.root / "state")
        self.manager = RecoveryManager(self.store)
        self.warehouse = warehouse
        self.sample = sample
        self.manager.attach(warehouse)
        self.manager.bind("sales", "item", sample)
        warehouse.add_observer(
            lambda rel, row, ins: (
                sample.insert(row[0]) if ins else sample.delete(row[0])
            )
        )

    @rule(item=st.integers(1, 8), qty=st.integers(0, 50))
    def insert(self, item, qty):
        row = (item, qty)
        self.warehouse.insert("sales", row)
        self.model[row] += 1
        self.inserted += 1
        self.acked += 1

    @precondition(lambda self: +self.model)
    @rule(data=st.data())
    def delete_live_row(self, data):
        rows = sorted(row for row, count in self.model.items() if count)
        row = data.draw(st.sampled_from(rows))
        self.warehouse.delete("sales", row)
        self.model[row] -= 1
        self.deleted += 1
        self.acked += 1

    @rule()
    def checkpoint(self):
        self.manager.checkpoint()

    @rule(torn=st.booleans(), cut=st.integers(min_value=1, max_value=40))
    def crash_and_recover(self, torn, cut):
        # A process kill: abandon the live side without detaching.
        # Every acknowledged op is already fsynced (sync_every=1).
        if torn:
            # An in-flight record torn mid-write: append a strict
            # prefix of the next frame to the newest segment.
            frame = encode_frame(
                {
                    "kind": "op",
                    "sequence": self.acked + 1,
                    "relation": "sales",
                    "row": [1, 1],
                    "insert": True,
                }
            )
            base = self.store.wal.segment_bases()[-1]
            path = self.store.wal.directory / segment_name(base)
            with path.open("ab") as handle:
                handle.write(frame[: min(cut, len(frame) - 1)])

        store = CheckpointStore(self.root / "state")
        survivor = RecoveryManager(store)
        state = survivor.recover(seed=self.seed)

        assert state.sequence == self.acked
        assert (state.torn_tail is not None) == torn
        restored = Counter(state.warehouse.relation("sales").rows())
        assert restored == +self.model

        recovered = state.synopses.get(("sales", "item"))
        if recovered is not None:
            # A checkpoint has happened, so the synopsis survived as
            # snapshot + replayed suffix.
            recovered.check_invariants()
            ledger = recovered.to_dict()
            assert ledger["total_inserted"] == self.inserted
            assert ledger["total_deleted"] == self.deleted
            live = Counter()
            for (item, _qty), count in self.model.items():
                live[item] += count
            for value, count in recovered.as_dict().items():
                assert count <= live[value]
            sample = recovered
        else:
            # Crash before the first checkpoint: the relation survives
            # via the WAL's schema records, but synopsis bindings only
            # live in checkpoints.  Rebuild one from the recovered rows
            # and realign the ledgers with it.
            sample = CountingSample(64, seed=self.seed)
            for row in state.warehouse.relation("sales").rows():
                sample.insert(row[0])
            self.inserted = state.warehouse.relation("sales").size
            self.deleted = 0

        self.store = store
        self.manager = survivor
        self.warehouse = state.warehouse
        self.sample = sample
        survivor.attach(state.warehouse)
        survivor.bind("sales", "item", sample)
        state.warehouse.add_observer(
            lambda rel, row, ins: (
                sample.insert(row[0]) if ins else sample.delete(row[0])
            )
        )

    def teardown(self):
        shutil.rmtree(self.root, ignore_errors=True)


CrashRecoveryMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
CrashRecoveryTest = CrashRecoveryMachine.TestCase


# ----------------------------------------------------------------------
# Exhaustive fault-point sweep
# ----------------------------------------------------------------------

# The fixed workload, op by op; checkpoints fire after the marked
# positions so the sweep can compute the exact expected prefix for any
# recovered sequence number.
OPS: list[tuple[bool, tuple[int, int]]] = (
    [(True, (i % 3, i)) for i in range(6)]
    + [(True, (i % 3, i)) for i in range(6, 12)]
    + [(False, (0, 0))]
    + [(True, (7, 99))]
)
CHECKPOINT_AFTER = {6, 13}


def run_workload(filesystem, root, ledger):
    """Drive the fixed workload; ``ledger['acked']`` survives a crash."""
    store = CheckpointStore(root, filesystem)
    manager = RecoveryManager(store)
    warehouse = DataWarehouse()
    warehouse.create_relation("sales", ["item", "qty"])
    manager.attach(warehouse)
    sample = CountingSample(32, seed=11)
    manager.bind("sales", "item", sample)
    warehouse.add_observer(
        lambda rel, row, ins: (
            sample.insert(row[0]) if ins else sample.delete(row[0])
        )
    )
    for position, (insert, row) in enumerate(OPS, start=1):
        if insert:
            warehouse.insert("sales", row)
        else:
            warehouse.delete("sales", row)
        ledger["acked"] = position
        if position in CHECKPOINT_AFTER:
            manager.checkpoint()
    manager.detach()
    store.close()


def expected_rows(prefix_length):
    model: Counter[tuple[int, int]] = Counter()
    for insert, row in OPS[:prefix_length]:
        model[row] += 1 if insert else -1
    return +model


def count_operations(tmp_path):
    healthy = FaultyFilesystem(LocalFileSystem(), FaultPlan.none())
    run_workload(healthy, tmp_path / "healthy", {"acked": 0})
    return healthy.operations


def crash_then_recover(root, index, kind):
    """One sweep cell: inject, run, recover.  Returns the outcome."""
    fs = FaultyFilesystem(
        LocalFileSystem(), FaultPlan.single(index, kind, seed=index)
    )
    ledger = {"acked": 0}
    crashed = False
    try:
        run_workload(fs, root, ledger)
    except SimulatedCrash:
        crashed = True
    try:
        state = RecoveryManager(CheckpointStore(root)).recover(seed=99)
    except RecoveryError as error:
        return crashed, ledger["acked"], None, error
    return crashed, ledger["acked"], state, None


class TestEveryFaultPoint:
    def test_crash_kinds_always_recover_the_acknowledged_prefix(
        self, tmp_path
    ):
        """Crash at EVERY op index, for every crash kind.

        The durability contract (sync_every=1): an op is acknowledged
        only after its WAL fsync, so recovery lands on the acknowledged
        count, plus at most the single in-flight record.
        """
        total = count_operations(tmp_path)
        assert total > 20  # the sweep is meaningfully wide
        for kind in sorted(CRASH_KINDS):
            for index in range(total):
                root = tmp_path / f"{kind}-{index}"
                crashed, acked, state, error = crash_then_recover(
                    root, index, kind
                )
                assert crashed, f"{kind}@{index} did not crash"
                assert error is None, f"{kind}@{index}: {error!r}"
                assert acked <= state.sequence <= acked + 1, (
                    f"{kind}@{index}: acked {acked}, "
                    f"recovered {state.sequence}"
                )
                if "sales" not in state.warehouse.relation_names():
                    # Crash during the very first segment's header or
                    # schema record: no op was acknowledged, so a
                    # fresh empty warehouse is the consistent outcome.
                    assert acked == 0 and state.sequence == 0
                    continue
                restored = Counter(
                    state.warehouse.relation("sales").rows()
                )
                assert restored == expected_rows(state.sequence), (
                    f"{kind}@{index}: wrong rows at {state.sequence}"
                )
                for synopsis in state.synopses.values():
                    synopsis.check_invariants()

    def test_bit_flips_are_never_silent(self, tmp_path):
        """Flip one bit at every op index: recovery must either raise
        a typed error or land on the exact final state -- never
        quietly serve corrupted rows.  The frame header carries its
        own CRC, so even a flipped length field is classified as
        corruption rather than masquerading as a droppable torn tail
        (a clean recovery that silently lost records is the one
        outcome that must not exist)."""
        total = count_operations(tmp_path)
        full = len(OPS)
        for index in range(total):
            root = tmp_path / f"flip-{index}"
            crashed, acked, state, error = crash_then_recover(
                root, index, BIT_FLIP
            )
            assert not crashed  # bit flips corrupt silently
            assert acked == full
            if error is not None:
                continue  # typed refusal is a correct outcome
            assert state.sequence == full, (
                f"flip@{index}: clean recovery lost records "
                f"({state.sequence} < {full})"
            )
            restored = Counter(state.warehouse.relation("sales").rows())
            assert restored == expected_rows(state.sequence)

    def test_transient_faults_never_reach_recovery(self, tmp_path):
        """Transient write/fsync errors at every index are absorbed by
        the retry policy: the workload completes and recovery is exact."""
        total = count_operations(tmp_path)
        for kind in sorted(TRANSIENT_KINDS):
            for index in range(total):
                root = tmp_path / f"{kind}-{index}"
                crashed, acked, state, error = crash_then_recover(
                    root, index, kind
                )
                assert not crashed and error is None
                assert state.sequence == acked == len(OPS)
                restored = Counter(
                    state.warehouse.relation("sales").rows()
                )
                assert restored == expected_rows(len(OPS))


# ----------------------------------------------------------------------
# Exhaustive fault-point sweep over the batch ingest path
# ----------------------------------------------------------------------

# The fixed batch workload: load_batch calls of varying sizes, with a
# checkpoint after the second batch.  Batches are atomic, so a
# recovered sequence must land on a batch boundary.
BATCH_SIZES = [5, 3, 4, 2]
CHECKPOINT_AFTER_BATCH = {1}
BATCH_BOUNDARIES = {0}
for _size in BATCH_SIZES:
    BATCH_BOUNDARIES.add(max(BATCH_BOUNDARIES) + _size)


def batch_columns(index):
    size = BATCH_SIZES[index]
    return {
        "item": np.asarray(
            [(index + k) % 3 for k in range(size)], dtype=np.int64
        ),
        "qty": np.asarray(
            [index * 10 + k for k in range(size)], dtype=np.int64
        ),
    }


def batch_rows(prefix_length):
    """The exact row multiset after the first ``prefix_length`` rows."""
    rows = []
    for index in range(len(BATCH_SIZES)):
        columns = batch_columns(index)
        rows.extend(
            zip(columns["item"].tolist(), columns["qty"].tolist())
        )
    return Counter(rows[:prefix_length])


def next_batch_size(acked):
    """How many rows the batch in flight after ``acked`` rows carries."""
    total = 0
    for size in BATCH_SIZES:
        if total == acked:
            return size
        total += size
    return 0


def run_batch_workload(filesystem, root, ledger):
    """Drive the batch workload; ``ledger['acked']`` survives a crash."""
    store = CheckpointStore(root, filesystem)
    manager = RecoveryManager(store)
    warehouse = DataWarehouse()
    warehouse.create_relation("sales", ["item", "qty"])
    manager.attach(warehouse)
    sample = CountingSample(32, seed=11)
    manager.bind("sales", "item", sample)
    warehouse.add_observer(
        lambda rel, row, ins: (
            sample.insert(row[0]) if ins else sample.delete(row[0])
        )
    )
    for index in range(len(BATCH_SIZES)):
        warehouse.load_batch("sales", batch_columns(index))
        ledger["acked"] += BATCH_SIZES[index]
        if index in CHECKPOINT_AFTER_BATCH:
            manager.checkpoint()
    manager.detach()
    store.close()


def count_batch_operations(tmp_path):
    healthy = FaultyFilesystem(LocalFileSystem(), FaultPlan.none())
    run_batch_workload(healthy, tmp_path / "healthy", {"acked": 0})
    return healthy.operations


def batch_crash_then_recover(root, index, kind):
    fs = FaultyFilesystem(
        LocalFileSystem(), FaultPlan.single(index, kind, seed=index)
    )
    ledger = {"acked": 0}
    crashed = False
    try:
        run_batch_workload(fs, root, ledger)
    except SimulatedCrash:
        crashed = True
    try:
        state = RecoveryManager(CheckpointStore(root)).recover(seed=99)
    except RecoveryError as error:
        return crashed, ledger["acked"], None, error
    return crashed, ledger["acked"], state, None


class TestEveryBatchFaultPoint:
    def test_crash_kinds_recover_whole_batches_only(self, tmp_path):
        """Crash at EVERY op index of the batch workload.

        The batch durability contract: a batch is acknowledged only
        after its single fsync point, so recovery lands on the
        acknowledged row count plus at most the one in-flight batch --
        and always on a batch boundary, never inside one (a torn write
        mid-batch-frame must not surface a partially-applied batch).
        """
        total = count_batch_operations(tmp_path)
        assert total > 15  # the sweep is meaningfully wide
        full = sum(BATCH_SIZES)
        for kind in sorted(CRASH_KINDS):
            for index in range(total):
                root = tmp_path / f"{kind}-{index}"
                crashed, acked, state, error = batch_crash_then_recover(
                    root, index, kind
                )
                assert crashed, f"{kind}@{index} did not crash"
                assert error is None, f"{kind}@{index}: {error!r}"
                in_flight = next_batch_size(acked) if acked < full else 0
                assert acked <= state.sequence <= acked + in_flight, (
                    f"{kind}@{index}: acked {acked}, "
                    f"recovered {state.sequence}"
                )
                assert state.sequence in BATCH_BOUNDARIES, (
                    f"{kind}@{index}: sequence {state.sequence} is "
                    "inside a batch -- a partially-applied batch "
                    "surfaced"
                )
                if "sales" not in state.warehouse.relation_names():
                    assert acked == 0 and state.sequence == 0
                    continue
                restored = Counter(
                    state.warehouse.relation("sales").rows()
                )
                assert restored == batch_rows(state.sequence), (
                    f"{kind}@{index}: wrong rows at {state.sequence}"
                )
                for synopsis in state.synopses.values():
                    synopsis.check_invariants()

    def test_bit_flips_in_batch_frames_are_never_silent(self, tmp_path):
        """Flip one bit at every op index of the batch workload."""
        total = count_batch_operations(tmp_path)
        full = sum(BATCH_SIZES)
        for index in range(total):
            root = tmp_path / f"flip-{index}"
            crashed, acked, state, error = batch_crash_then_recover(
                root, index, BIT_FLIP
            )
            assert not crashed  # bit flips corrupt silently
            assert acked == full
            if error is not None:
                continue  # typed refusal is a correct outcome
            assert state.sequence == full, (
                f"flip@{index}: clean recovery lost records "
                f"({state.sequence} < {full})"
            )
            restored = Counter(state.warehouse.relation("sales").rows())
            assert restored == batch_rows(state.sequence)

    def test_transient_faults_are_absorbed_by_append_many(self, tmp_path):
        """Transient write/fsync errors at every index: the batched
        write is retried as one unit and the workload completes."""
        total = count_batch_operations(tmp_path)
        full = sum(BATCH_SIZES)
        for kind in sorted(TRANSIENT_KINDS):
            for index in range(total):
                root = tmp_path / f"{kind}-{index}"
                crashed, acked, state, error = batch_crash_then_recover(
                    root, index, kind
                )
                assert not crashed and error is None
                assert state.sequence == acked == full
                restored = Counter(
                    state.warehouse.relation("sales").rows()
                )
                assert restored == batch_rows(full)


class TestTornBatchFrame:
    """A torn write inside a batch frame: atomicity at every cut."""

    def test_every_cut_keeps_acked_batches_and_drops_the_partial(
        self, tmp_path
    ):
        from repro.persist.columns import encode_columns

        ledger = {"acked": 0}
        base = tmp_path / "base"
        run_batch_workload(
            FaultyFilesystem(LocalFileSystem(), FaultPlan.none()),
            base,
            ledger,
        )
        acked = ledger["acked"]
        in_flight = encode_frame(
            {
                "kind": "batch",
                "first_sequence": acked + 1,
                "last_sequence": acked + 3,
                "relation": "sales",
                "columns": encode_columns(
                    {
                        "item": np.asarray([1, 2, 0], dtype=np.int64),
                        "qty": np.asarray([90, 91, 92], dtype=np.int64),
                    }
                ),
            }
        )
        cuts = sorted(set(range(1, len(in_flight), 5)) | {len(in_flight) - 1})
        for cut in cuts:
            root = tmp_path / f"cut-{cut}"
            shutil.copytree(base, root)
            store = CheckpointStore(root)
            segment_base = store.wal.segment_bases()[-1]
            path = store.wal.directory / segment_name(segment_base)
            with path.open("ab") as handle:
                handle.write(in_flight[:cut])
            state = RecoveryManager(CheckpointStore(root)).recover(seed=7)
            assert state.sequence == acked, (
                f"cut@{cut}: torn batch frame changed the recovered "
                f"sequence ({state.sequence} != {acked})"
            )
            assert state.torn_tail is not None
            restored = Counter(state.warehouse.relation("sales").rows())
            assert restored == batch_rows(acked)
