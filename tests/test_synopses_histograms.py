"""Unit tests for the histogram synopses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.randkit import numpy_generator
from repro.core.base import SynopsisError
from repro.hotlist.base import HotListAnswer, HotListEntry
from repro.stats.frequency import FrequencyTable
from repro.streams import zipf_stream
from repro.synopses.histogram_compressed import CompressedHistogram
from repro.synopses.histogram_equidepth import EquiDepthHistogram
from repro.synopses.histogram_highbiased import HighBiasedHistogram


class TestEquiDepth:
    def test_full_range_returns_total(self):
        points = np.arange(1, 1001)
        histogram = EquiDepthHistogram.from_sample(points, 10, 50_000)
        assert histogram.estimate_range(1, 1000) == pytest.approx(50_000)

    def test_half_range_uniform(self):
        points = numpy_generator(1).uniform(0, 100, size=10_000)
        histogram = EquiDepthHistogram.from_sample(points, 20, 10_000)
        assert histogram.estimate_range(0, 50) == pytest.approx(
            5_000, rel=0.1
        )

    def test_empty_range(self):
        points = np.arange(100)
        histogram = EquiDepthHistogram.from_sample(points, 4, 100)
        assert histogram.estimate_range(10, 5) == 0.0

    def test_out_of_domain_range(self):
        points = np.arange(100)
        histogram = EquiDepthHistogram.from_sample(points, 4, 100)
        assert histogram.estimate_range(1000, 2000) == 0.0

    def test_equality_estimate_positive_in_domain(self):
        points = np.arange(1, 101)
        histogram = EquiDepthHistogram.from_sample(points, 4, 100)
        assert histogram.estimate_equality(50) > 0.0
        assert histogram.estimate_equality(-5) == 0.0

    def test_range_estimate_additive(self):
        points = numpy_generator(2).uniform(0, 1000, size=5000)
        histogram = EquiDepthHistogram.from_sample(points, 16, 5000)
        whole = histogram.estimate_range(0, 1000)
        split = histogram.estimate_range(0, 400) + histogram.estimate_range(
            400.0000001, 1000
        )
        assert split == pytest.approx(whole, rel=0.01)

    def test_footprint(self):
        histogram = EquiDepthHistogram.from_sample(np.arange(100), 10, 100)
        assert histogram.footprint == 21  # 11 boundaries + 10 depths

    def test_validation(self):
        with pytest.raises(SynopsisError):
            EquiDepthHistogram.from_sample(np.arange(10), 0, 10)
        with pytest.raises(SynopsisError):
            EquiDepthHistogram.from_sample(np.empty(0), 4, 10)
        with pytest.raises(SynopsisError):
            EquiDepthHistogram.from_sample(np.arange(10), 4, -1)

    def test_skewed_data_better_than_naive_width(self):
        """Quantile boundaries adapt to skew: heavy region estimates
        stay close to truth."""
        stream = zipf_stream(50_000, 1000, 1.2, seed=3)
        histogram = EquiDepthHistogram.from_sample(stream, 50, 50_000)
        true_hot = np.count_nonzero(stream <= 10)
        assert histogram.estimate_range(1, 10) == pytest.approx(
            true_hot, rel=0.25
        )


class TestCompressed:
    def test_heavy_values_become_singletons(self):
        stream = zipf_stream(50_000, 1000, 1.5, seed=4)
        histogram = CompressedHistogram.from_sample(stream, 20, 50_000)
        assert 1 in histogram.singleton_values

    def test_equality_estimate_heavy_value(self):
        stream = zipf_stream(50_000, 1000, 1.5, seed=5)
        histogram = CompressedHistogram.from_sample(stream, 20, 50_000)
        truth = FrequencyTable(stream)
        assert histogram.estimate_equality(1) == pytest.approx(
            truth.count(1), rel=0.1
        )

    def test_range_covers_total(self):
        stream = zipf_stream(20_000, 500, 1.0, seed=6)
        histogram = CompressedHistogram.from_sample(stream, 16, 20_000)
        assert histogram.estimate_range(1, 500) == pytest.approx(
            20_000, rel=0.05
        )

    def test_uniform_data_has_no_singletons(self):
        stream = zipf_stream(50_000, 10_000, 0.0, seed=7)
        histogram = CompressedHistogram.from_sample(stream, 10, 50_000)
        assert histogram.singleton_values == []

    def test_footprint_positive(self):
        stream = zipf_stream(10_000, 100, 1.0, seed=8)
        histogram = CompressedHistogram.from_sample(stream, 8, 10_000)
        assert histogram.footprint > 0

    def test_validation(self):
        with pytest.raises(SynopsisError):
            CompressedHistogram.from_sample(np.arange(10), 1, 10)
        with pytest.raises(SynopsisError):
            CompressedHistogram.from_sample(np.empty(0), 4, 10)


class TestHighBiased:
    def _table(self) -> FrequencyTable:
        table = FrequencyTable()
        for value, count in [(1, 50), (2, 30), (3, 10), (4, 5), (5, 5)]:
            for _ in range(count):
                table.insert(value)
        return table

    def test_exact_construction(self):
        histogram = HighBiasedHistogram.from_frequency_table(
            self._table(), top_m=2
        )
        assert histogram.estimate_equality(1) == 50.0
        assert histogram.estimate_equality(2) == 30.0
        # Residual: 20 rows over 3 distinct values.
        assert histogram.estimate_equality(4) == pytest.approx(20 / 3)

    def test_bucket_count_and_footprint(self):
        histogram = HighBiasedHistogram.from_frequency_table(
            self._table(), top_m=3
        )
        assert histogram.bucket_count == 4
        assert histogram.footprint == 8

    def test_from_hotlist(self):
        answer = HotListAnswer(
            k=2,
            entries=(HotListEntry(1, 48.0), HotListEntry(2, 33.0)),
        )
        histogram = HighBiasedHistogram.from_hotlist(
            answer, total_rows=100, distinct_estimate=5.0
        )
        assert histogram.estimate_equality(1) == 48.0
        assert histogram.residual_rows == pytest.approx(19.0)
        assert histogram.residual_distinct == pytest.approx(3.0)

    def test_join_size_exact_tops(self):
        left = HighBiasedHistogram({1: 10.0}, 0.0, 0.0)
        right = HighBiasedHistogram({1: 5.0}, 0.0, 0.0)
        assert left.estimate_join_size(right) == pytest.approx(50.0)

    def test_join_size_with_residuals(self):
        left = HighBiasedHistogram({}, 100.0, 10.0)
        right = HighBiasedHistogram({}, 200.0, 20.0)
        # shared = 10, per-value 10 and 10: 10 * 10 * 10 = 1000.
        assert left.estimate_join_size(right) == pytest.approx(1000.0)

    def test_empty_residual_equality_zero(self):
        histogram = HighBiasedHistogram({1: 5.0}, 0.0, 0.0)
        assert histogram.estimate_equality(9) == 0.0

    def test_validation(self):
        with pytest.raises(SynopsisError):
            HighBiasedHistogram({}, -1.0, 0.0)
        with pytest.raises(SynopsisError):
            HighBiasedHistogram.from_frequency_table(self._table(), 0)

    def test_join_size_against_truth(self):
        """On skewed self-join, the high-biased estimate lands within
        a small factor of the exact join size."""
        stream = zipf_stream(20_000, 500, 1.5, seed=9)
        table = FrequencyTable(stream)
        histogram = HighBiasedHistogram.from_frequency_table(table, 50)
        exact = sum(c * c for _, c in table.items())
        estimate = histogram.estimate_join_size(histogram)
        assert estimate == pytest.approx(exact, rel=0.2)
