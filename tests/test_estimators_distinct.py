"""Unit tests for sample-based distinct-value estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.randkit import numpy_generator
from repro.estimators.distinct import (
    first_order_jackknife,
    frequency_profile,
    guaranteed_error_estimator,
)
from repro.streams import zipf_stream


class TestFrequencyProfile:
    def test_profile(self):
        points = np.array([1, 1, 2, 3, 3, 3])
        assert frequency_profile(points) == {2: 1, 1: 1, 3: 1}

    def test_empty(self):
        assert frequency_profile(np.empty(0, dtype=np.int64)) == {}


class TestJackknife:
    def test_full_sample_returns_exact(self):
        """Sampling the whole population (m = n) with no singletons'
        correction leaves d unchanged when f1 scaling vanishes."""
        points = np.array([1, 1, 2, 2, 3, 3])
        profile = frequency_profile(points)
        assert first_order_jackknife(profile, population=6) == (
            pytest.approx(3.0)
        )

    def test_empty_profile(self):
        assert first_order_jackknife({}, 100) == 0.0

    def test_population_smaller_than_sample_rejected(self):
        with pytest.raises(ValueError):
            first_order_jackknife({1: 10}, population=5)

    def test_degenerate_all_singletons_huge_population(self):
        profile = {1: 100}
        estimate = first_order_jackknife(profile, population=10**9)
        assert estimate == pytest.approx(10**9)

    def test_reasonable_on_moderate_skew(self):
        stream = zipf_stream(50_000, 800, 0.5, seed=1)
        rng = numpy_generator(2)
        points = rng.choice(stream, size=5000, replace=False)
        estimate = first_order_jackknife(
            frequency_profile(points), len(stream)
        )
        # Known to be biased low; demand the right ballpark.
        assert 400 <= estimate <= 1200


class TestGEE:
    def test_no_singletons_returns_distinct(self):
        points = np.array([1, 1, 2, 2])
        assert guaranteed_error_estimator(
            frequency_profile(points), 100
        ) == pytest.approx(2.0)

    def test_scaling_of_singletons(self):
        # 4 singletons, sample 4, population 64: sqrt(16) * 4 = 16.
        profile = {1: 4}
        assert guaranteed_error_estimator(profile, 64) == pytest.approx(
            16.0
        )

    def test_empty_profile(self):
        assert guaranteed_error_estimator({}, 100) == 0.0

    def test_population_smaller_than_sample_rejected(self):
        with pytest.raises(ValueError):
            guaranteed_error_estimator({1: 10}, population=5)

    def test_between_lower_and_upper_bounds(self):
        """GEE lands between the sample distinct count and the
        population size."""
        stream = zipf_stream(30_000, 2000, 1.0, seed=3)
        rng = numpy_generator(4)
        points = rng.choice(stream, size=2000, replace=False)
        profile = frequency_profile(points)
        sample_distinct = sum(profile.values())
        estimate = guaranteed_error_estimator(profile, len(stream))
        assert sample_distinct <= estimate <= len(stream)

    def test_closer_than_naive_on_uniform(self):
        """On uniform data with many unseen values, GEE beats the raw
        sample distinct count."""
        true_distinct = 5000
        stream = zipf_stream(50_000, true_distinct, 0.0, seed=5)
        rng = numpy_generator(6)
        points = rng.choice(stream, size=2000, replace=False)
        profile = frequency_profile(points)
        naive = sum(profile.values())
        gee = guaranteed_error_estimator(profile, len(stream))
        assert abs(gee - true_distinct) < abs(naive - true_distinct)
