"""Unit tests for the sorted (O(k)-reporting) concise hot list."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hotlist.concise import ConciseHotList
from repro.hotlist.sorted_concise import SortedConciseHotList, _CountIndex
from repro.streams import zipf_stream


class TestCountIndex:
    def test_move_and_top(self):
        index = _CountIndex()
        index.move(1, 0, 1)
        index.move(2, 0, 1)
        index.move(1, 1, 2)
        assert list(index.top(10, 1)) == [(1, 2), (2, 1)]

    def test_minimum_count_cutoff(self):
        index = _CountIndex()
        index.move(1, 0, 5)
        index.move(2, 0, 2)
        assert list(index.top(10, 3)) == [(1, 5)]

    def test_k_limit(self):
        index = _CountIndex()
        for value in range(10):
            index.move(value, 0, 1)
        assert len(list(index.top(4, 1))) == 4

    def test_rebuild(self):
        index = _CountIndex()
        index.rebuild({1: 3, 2: 3, 3: 1})
        assert list(index.top(10, 1)) == [(1, 3), (2, 3), (3, 1)]

    def test_remove_via_zero(self):
        index = _CountIndex()
        index.move(1, 0, 2)
        index.move(1, 2, 0)
        assert list(index.top(10, 1)) == []


class TestSortedConciseHotList:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SortedConciseHotList(100, confidence_threshold=0)
        with pytest.raises(ValueError):
            SortedConciseHotList(100, seed=1).report(0)

    def test_empty(self):
        assert len(SortedConciseHotList(100, seed=1).report(5)) == 0

    def test_index_stays_in_sync(self):
        reporter = SortedConciseHotList(64, seed=2)
        stream = zipf_stream(20_000, 2000, 1.0, seed=3)
        for i, value in enumerate(stream.tolist()):
            reporter.insert(value)
            if i % 2_500 == 0:
                reporter.check_index()
        reporter.check_index()

    def test_matches_unsorted_reporter_distribution(self):
        """Same seed => same underlying sample => same report set
        (up to the top-k truncation at rank ties)."""
        stream = zipf_stream(30_000, 500, 1.5, seed=4)
        sorted_reporter = SortedConciseHotList(200, seed=5)
        plain_reporter = ConciseHotList(200, seed=5)
        sorted_reporter.insert_array(stream)
        # Both reporters now share the sample's vectorized bulk path
        # (the sorted reporter rebuilds its index once per batch), so
        # equal seeds consume identical random streams.
        plain_reporter.insert_array(stream)
        k = 10
        sorted_answer = sorted_reporter.report(k)
        plain_answer = plain_reporter.report(k)
        assert sorted_answer.values() == plain_answer.values()[: len(
            sorted_answer
        )]
        assert sorted_answer.as_dict() == {
            v: plain_answer.as_dict()[v]
            for v in sorted_answer.values()
        }

    def test_report_at_most_k(self):
        reporter = SortedConciseHotList(200, seed=6)
        reporter.insert_array(zipf_stream(30_000, 300, 1.5, seed=7))
        assert len(reporter.report(7)) <= 7

    def test_confidence_threshold_respected(self):
        reporter = SortedConciseHotList(
            300, confidence_threshold=3, seed=8
        )
        reporter.insert_array(np.arange(100))  # all singletons
        assert len(reporter.report(10)) == 0

    def test_estimates_ordered(self):
        reporter = SortedConciseHotList(200, seed=9)
        reporter.insert_array(zipf_stream(30_000, 300, 1.2, seed=10))
        estimates = [
            entry.estimated_count for entry in reporter.report(15)
        ]
        assert estimates == sorted(estimates, reverse=True)

    def test_footprint_delegation(self):
        reporter = SortedConciseHotList(64, seed=11)
        reporter.insert_array(zipf_stream(5000, 1000, 1.0, seed=12))
        assert reporter.footprint <= 64
        assert reporter.footprint_bound == 64
