"""Unit tests for in-memory relations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.relation import Relation, RelationError


class TestSchema:
    def test_requires_attributes(self):
        with pytest.raises(RelationError):
            Relation("r", [])

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(RelationError):
            Relation("r", ["a", "a"])

    def test_attribute_index(self):
        relation = Relation("r", ["a", "b"])
        assert relation.attribute_index("b") == 1
        with pytest.raises(RelationError):
            relation.attribute_index("zzz")


class TestInsertDelete:
    def test_insert_mapping(self):
        relation = Relation("r", ["a", "b"])
        normalised = relation.insert({"b": 2, "a": 1})
        assert normalised == (1, 2)
        assert relation.size == 1

    def test_insert_tuple(self):
        relation = Relation("r", ["a", "b"])
        assert relation.insert((3, 4)) == (3, 4)

    def test_insert_wrong_arity(self):
        relation = Relation("r", ["a", "b"])
        with pytest.raises(RelationError):
            relation.insert((1,))

    def test_insert_missing_attribute(self):
        relation = Relation("r", ["a", "b"])
        with pytest.raises(RelationError):
            relation.insert({"a": 1})

    def test_delete(self):
        relation = Relation("r", ["a"])
        relation.insert((1,))
        relation.insert((1,))
        relation.delete((1,))
        assert relation.size == 1
        relation.delete({"a": 1})
        assert relation.size == 0

    def test_delete_absent_raises(self):
        relation = Relation("r", ["a"])
        with pytest.raises(RelationError):
            relation.delete((9,))

    def test_len(self):
        relation = Relation("r", ["a"])
        relation.insert((1,))
        assert len(relation) == 1


class TestColumnAndRows:
    def test_column_multiset(self):
        relation = Relation("r", ["a", "b"])
        relation.insert((1, 10))
        relation.insert((1, 10))
        relation.insert((2, 20))
        column = relation.column("a")
        assert sorted(column.tolist()) == [1, 1, 2]
        assert column.dtype == np.int64

    def test_column_empty(self):
        relation = Relation("r", ["a"])
        assert len(relation.column("a")) == 0

    def test_column_float_values(self):
        relation = Relation("r", ["a"])
        relation.insert((1.5,))
        column = relation.column("a")
        assert column.dtype == np.float64
        assert column.tolist() == [1.5]

    def test_rows_repeat_multiplicity(self):
        relation = Relation("r", ["a"])
        relation.insert((7,))
        relation.insert((7,))
        assert list(relation.rows()) == [(7,), (7,)]

    def test_column_reflects_deletes(self):
        relation = Relation("r", ["a"])
        relation.insert((1,))
        relation.insert((2,))
        relation.delete((1,))
        assert relation.column("a").tolist() == [2]
