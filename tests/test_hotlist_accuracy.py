"""Unit tests for hot-list accuracy evaluation."""

from __future__ import annotations

import pytest

from repro.hotlist.accuracy import evaluate_hotlist
from repro.hotlist.base import HotListAnswer, HotListEntry
from repro.stats.frequency import FrequencyTable


def _truth() -> FrequencyTable:
    table = FrequencyTable()
    for value, count in [(1, 100), (2, 80), (3, 60), (4, 40), (5, 20)]:
        for _ in range(count):
            table.insert(value)
    return table


def _answer(pairs: list[tuple[int, float]], k: int = 3) -> HotListAnswer:
    return HotListAnswer(
        k=k,
        entries=tuple(HotListEntry(v, c) for v, c in pairs),
    )


class TestEvaluateHotlist:
    def test_perfect_answer(self):
        answer = _answer([(1, 100.0), (2, 80.0), (3, 60.0)])
        evaluation = evaluate_hotlist(answer, _truth())
        assert evaluation.precision == 1.0
        assert evaluation.recall == 1.0
        assert evaluation.false_positives == 0
        assert evaluation.false_negatives == 0
        assert evaluation.top_prefix_correct == 3
        assert evaluation.mean_count_error == 0.0

    def test_false_negative_breaks_prefix(self):
        answer = _answer([(1, 100.0), (3, 60.0)])  # missing rank 2
        evaluation = evaluate_hotlist(answer, _truth())
        assert evaluation.false_negatives == 1
        assert evaluation.top_prefix_correct == 1
        assert evaluation.recall == pytest.approx(2 / 3)

    def test_false_positive_detected(self):
        answer = _answer([(1, 100.0), (2, 80.0), (99, 50.0)])
        evaluation = evaluate_hotlist(answer, _truth())
        assert evaluation.false_positives == 1
        assert evaluation.precision == pytest.approx(2 / 3)

    def test_count_errors(self):
        answer = _answer([(1, 110.0), (2, 80.0), (3, 60.0)])
        evaluation = evaluate_hotlist(answer, _truth())
        assert evaluation.mean_count_error == pytest.approx(0.1 / 3)
        assert evaluation.max_count_error == pytest.approx(0.1)

    def test_unreported_answer(self):
        evaluation = evaluate_hotlist(_answer([], k=3), _truth())
        assert evaluation.reported == 0
        assert evaluation.recall == 0.0
        assert evaluation.precision == 1.0
        assert evaluation.top_prefix_correct == 0

    def test_explicit_k_overrides(self):
        answer = _answer([(1, 100.0)], k=3)
        evaluation = evaluate_hotlist(answer, _truth(), k=1)
        assert evaluation.k == 1
        assert evaluation.recall == 1.0

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            evaluate_hotlist(_answer([]), _truth(), k=0)

    def test_false_positive_counts_ignored_in_error(self):
        """Count error is only over values that truly occur."""
        answer = _answer([(1, 100.0), (99, 1000.0)])
        evaluation = evaluate_hotlist(answer, _truth())
        assert evaluation.mean_count_error == 0.0
