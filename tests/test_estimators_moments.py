"""Unit tests for frequency-moment estimation and the gain predictor."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.randkit import numpy_generator
from repro.estimators.moments import (
    estimate_frequency_moment,
    sample_size_gain,
)
from repro.stats.frequency import frequency_moment
from repro.streams import zipf_stream


class TestEstimateFrequencyMoment:
    def test_f1_is_population(self):
        points = np.array([1, 2, 2, 3])
        assert estimate_frequency_moment(points, 1, 400) == pytest.approx(
            400.0
        )

    def test_f2_single_value(self):
        points = np.full(10, 7)
        # Estimated count of 7 is population; F2 = population^2.
        assert estimate_frequency_moment(points, 2, 1000) == (
            pytest.approx(1_000_000.0)
        )

    def test_f2_skewed_stream_ballpark(self):
        stream = zipf_stream(50_000, 500, 1.5, seed=1)
        truth = frequency_moment(stream, 2)
        rng = numpy_generator(2)
        points = rng.choice(stream, size=2000, replace=False)
        estimate = estimate_frequency_moment(points, 2, len(stream))
        assert estimate == pytest.approx(truth, rel=0.3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            estimate_frequency_moment(np.empty(0), 2, 10)

    def test_rejects_negative_population(self):
        with pytest.raises(ValueError):
            estimate_frequency_moment(np.arange(3), 2, -1)


class TestSampleSizeGain:
    def test_empty(self):
        assert sample_size_gain(Counter(), 100) == 0.0

    def test_single_value_max_gain(self):
        assert sample_size_gain({7: 500}, 20) == pytest.approx(19.0)

    def test_matches_theory_for_counter_input(self):
        from repro.stats.theory import concise_gain_expected

        counts = Counter({1: 30, 2: 20, 3: 10})
        assert sample_size_gain(counts, 15) == pytest.approx(
            concise_gain_expected([30, 20, 10], 15)
        )

    def test_gain_grows_with_skew(self):
        uniform = Counter({v: 10 for v in range(100)})
        skewed = Counter({1: 901, **{v: 1 for v in range(2, 101)}})
        assert sample_size_gain(skewed, 50) > sample_size_gain(
            uniform, 50
        )

    def test_rejects_negative_sample_size(self):
        with pytest.raises(ValueError):
            sample_size_gain({1: 1}, -1)

    def test_ignores_nonpositive_counts(self):
        assert sample_size_gain({1: 10, 2: 0}, 5) == pytest.approx(
            sample_size_gain({1: 10}, 5)
        )
