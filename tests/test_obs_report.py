"""The ops health report and its histogram-quantile arithmetic."""

from __future__ import annotations

import math

import pytest

from repro import obs
from repro.obs.report import histogram_quantile, render_health_report


@pytest.fixture(autouse=True)
def _restore_obs_defaults():
    yield
    obs.disable()


class TestHistogramQuantile:
    BUCKETS = [(0.1, 10.0), (0.5, 30.0), (1.0, 40.0), (math.inf, 40.0)]

    def test_empty_and_zero_total_return_none(self):
        assert histogram_quantile([], 0.5) is None
        assert histogram_quantile([(1.0, 0.0), (math.inf, 0.0)], 0.5) is None

    def test_rejects_out_of_range_quantile(self):
        with pytest.raises(ValueError):
            histogram_quantile(self.BUCKETS, 1.5)

    def test_interpolates_within_bucket(self):
        # p50: target 20 of 40; bucket (0.1, 0.5] holds ranks 10..30,
        # so halfway through it -> 0.1 + 0.5 * 0.4 = 0.3.
        assert histogram_quantile(self.BUCKETS, 0.5) == pytest.approx(0.3)

    def test_quantile_inside_first_bucket_starts_at_zero(self):
        assert histogram_quantile(self.BUCKETS, 0.25) == pytest.approx(0.1)
        assert histogram_quantile(self.BUCKETS, 0.125) == pytest.approx(0.05)

    def test_inf_bucket_clamps_to_last_finite_bound(self):
        rows = [(0.1, 10.0), (1.0, 20.0), (math.inf, 40.0)]
        assert histogram_quantile(rows, 0.99) == pytest.approx(1.0)

    def test_monotone_in_quantile(self):
        values = [
            histogram_quantile(self.BUCKETS, q)
            for q in (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
        ]
        assert values == sorted(values)


def audit_family(budget: float) -> dict:
    labels = {"query": "CountQuery", "method": "sample"}
    return {
        "metrics": [
            {
                "name": "repro_audit_shadows_total",
                "type": "counter",
                "series": [{"labels": labels, "value": 20.0}],
            },
            {
                "name": "repro_audit_in_bounds_total",
                "type": "counter",
                "series": [{"labels": labels, "value": 15.0}],
            },
            {
                "name": "repro_audit_out_of_bounds_total",
                "type": "counter",
                "series": [{"labels": labels, "value": 5.0}],
            },
            {
                "name": "repro_audit_coverage_ratio",
                "type": "gauge",
                "series": [{"labels": labels, "value": 0.75}],
            },
            {
                "name": "repro_audit_error_budget",
                "type": "gauge",
                "series": [{"labels": labels, "value": budget}],
            },
        ]
    }


class TestRenderSections:
    def test_all_sections_present_with_no_data(self):
        report = render_health_report()
        assert report.startswith("repro health report")
        assert "no audit data" in report
        assert "no latency data" in report
        assert "no cache traffic" in report
        assert "no serving data" in report
        assert "no cluster data" in report
        assert "no durability data" in report
        assert "no trace data" in report
        assert "unrecognized series" not in report

    def test_negative_budget_raises_alert(self):
        report = render_health_report(audit_family(-0.20))
        assert "ALERT" in report
        assert "below claimed confidence" in report

    def test_positive_budget_is_ok(self):
        report = render_health_report(audit_family(0.05))
        assert "ALERT" not in report
        assert "ok" in report

    def test_cache_hit_rate(self):
        metrics = {
            "metrics": [
                {
                    "name": "repro_query_cache_hits_total",
                    "type": "counter",
                    "series": [{"labels": {}, "value": 3.0}],
                },
                {
                    "name": "repro_query_cache_misses_total",
                    "type": "counter",
                    "series": [{"labels": {}, "value": 1.0}],
                },
            ]
        }
        report = render_health_report(metrics)
        assert "hit rate 75.0%" in report

    def test_trace_digest(self):
        traces = [
            {
                "trace_id": "t1-1",
                "span_id": "t1-1:0",
                "parent_id": None,
                "query": "CountQuery",
                "relation": "sales",
                "attribute": "item",
                "duration_seconds": 0.25,
            },
            {
                "trace_id": "t1-1",
                "span_id": "t1-1:1",
                "parent_id": "t1-1:0",
                "name": "synopsis_answer",
                "duration_seconds": 0.1,
            },
        ]
        report = render_health_report(None, traces)
        assert "1 root span(s), 1 child span(s)" in report
        assert "slowest: CountQuery on sales.item" in report
        assert "synopsis_answer: 1 span(s)" in report


class TestServingSection:
    def test_summary_and_per_op_table(self):
        metrics = {
            "metrics": [
                {
                    "name": "repro_server_sessions_open",
                    "type": "gauge",
                    "series": [{"labels": {}, "value": 2.0}],
                },
                {
                    "name": "repro_server_queue_depth",
                    "type": "gauge",
                    "series": [{"labels": {}, "value": 3.0}],
                },
                {
                    "name": "repro_server_busy_total",
                    "type": "counter",
                    "series": [{"labels": {}, "value": 7.0}],
                },
                {
                    "name": "repro_server_requests_total",
                    "type": "counter",
                    "series": [
                        {
                            "labels": {"op": "query", "outcome": "ok"},
                            "value": 9.0,
                        },
                        {
                            "labels": {"op": "query", "outcome": "error"},
                            "value": 1.0,
                        },
                    ],
                },
                {
                    "name": "repro_server_request_seconds",
                    "type": "histogram",
                    "series": [
                        {
                            "labels": {"op": "query"},
                            "count": 10,
                            "sum": 0.1,
                            "buckets": [
                                ["0.01", 5.0],
                                ["0.1", 10.0],
                                ["+Inf", 10.0],
                            ],
                        }
                    ],
                },
            ]
        }
        report = render_health_report(metrics)
        assert "no serving data" not in report
        assert "open 2" in report
        assert "queued 3" in report
        assert "busy 7" in report
        # query row: 10 requests, 9 ok, 1 error; the median falls on
        # the first bucket's upper bound (cumulative 5 of 10 at 10ms).
        lines = [line for line in report.splitlines() if "query " in line]
        assert any(
            line.split()[:5] == ["query", "10", "9", "1", "0"]
            for line in lines
        )
        assert "10.00ms" in report

    def test_live_server_workload_populates_section(self):
        """The demo serving round feeds every summary instrument."""
        from repro.obs.__main__ import serving_round

        registry = obs.enable()
        try:
            serving_round(registry, rows=500, seed=13)
            report = render_health_report(obs.render_json(registry))
        finally:
            obs.disable()
        assert "no serving data" not in report
        assert "connections 1" in report
        assert "hello" in report and "ingest" in report
        # The deliberately-failing query registers an error outcome.
        query_rows = [
            fields
            for fields in map(str.split, report.splitlines())
            if fields[:1] == ["query"] and len(fields) > 4 and fields[1].isdigit()
        ]
        assert query_rows and query_rows[0][3] == "1"


def cluster_family(up: float, degraded: float) -> dict:
    return {
        "metrics": [
            {
                "name": "repro_cluster_shards_total",
                "type": "gauge",
                "series": [{"labels": {}, "value": 2.0}],
            },
            {
                "name": "repro_cluster_shards_up",
                "type": "gauge",
                "series": [{"labels": {}, "value": up}],
            },
            {
                "name": "repro_cluster_degraded",
                "type": "gauge",
                "series": [{"labels": {}, "value": degraded}],
            },
            {
                "name": "repro_cluster_failovers_total",
                "type": "counter",
                "series": [{"labels": {}, "value": 1.0}],
            },
            {
                "name": "repro_cluster_restarts_total",
                "type": "counter",
                "series": [{"labels": {}, "value": 1.0}],
            },
            {
                "name": "repro_cluster_degraded_answers_total",
                "type": "counter",
                "series": [{"labels": {}, "value": 4.0}],
            },
            {
                "name": "repro_cluster_ingest_rows_total",
                "type": "counter",
                "series": [
                    {"labels": {"shard": "0"}, "value": 600.0},
                    {"labels": {"shard": "1"}, "value": 400.0},
                ],
            },
            {
                "name": "repro_cluster_shard_query_seconds",
                "type": "histogram",
                "series": [
                    {
                        "labels": {"shard": "0"},
                        "count": 8,
                        "sum": 0.08,
                        "buckets": [
                            ["0.01", 4.0],
                            ["0.1", 8.0],
                            ["+Inf", 8.0],
                        ],
                    }
                ],
            },
        ]
    }


class TestClusterSection:
    def test_summary_and_per_shard_table(self):
        report = render_health_report(cluster_family(up=1.0, degraded=1.0))
        assert "no cluster data" not in report
        assert "shards 1/2" in report
        assert "DEGRADED" in report
        assert "failovers 1" in report
        assert "restarts 1" in report
        assert "degraded-answers 4" in report
        # Shard 0: 600 rows, 8 queries with the p50 on the first
        # bucket's upper bound (cumulative 4 of 8 at 10ms); shard 1
        # appears from its row counter alone with dashed latencies.
        shard_rows = [
            fields
            for fields in map(str.split, report.splitlines())
            if fields[:1] in (["0"], ["1"])
        ]
        assert ["0", "600", "-", "-", "8", "10.00ms", "98.20ms"] in shard_rows
        assert ["1", "400", "-", "-", "0", "-", "-"] in shard_rows

    def test_healthy_fleet_has_no_banner(self):
        report = render_health_report(cluster_family(up=2.0, degraded=0.0))
        assert "shards 2/2" in report
        assert "DEGRADED" not in report

    def test_live_cluster_round_populates_section(self):
        """The demo cluster round feeds every summary instrument."""
        from repro.obs.__main__ import cluster_round

        registry = obs.enable()
        try:
            cluster_round(registry, rows=400, seed=23)
            report = render_health_report(obs.render_json(registry))
        finally:
            obs.disable()
        assert "no cluster data" not in report
        # One shard was killed, answered around, and restarted.
        assert "failovers 1" in report
        assert "restarts 1" in report
        assert "degraded-answers 1" in report
        shard_rows = [
            fields
            for fields in map(str.split, report.splitlines())
            if fields[:1] in (["0"], ["1"]) and len(fields) == 7
        ]
        assert len(shard_rows) == 2
        assert sum(int(fields[1]) for fields in shard_rows) == 400


class TestUnrecognizedFooter:
    def test_unknown_family_is_named(self):
        metrics = {
            "metrics": [
                {
                    "name": "repro_mystery_widgets_total",
                    "type": "counter",
                    "series": [{"labels": {}, "value": 2.0}],
                },
                {
                    "name": "repro_wal_appends_total",
                    "type": "counter",
                    "series": [{"labels": {}, "value": 5.0}],
                },
            ]
        }
        report = render_health_report(metrics)
        assert "unrecognized series" in report
        assert "repro_mystery_widgets_total" in report

    def test_known_families_produce_no_footer(self):
        report = render_health_report(audit_family(0.05))
        assert "unrecognized series" not in report

    def test_live_registry_is_fully_recognized(self):
        """Every series the demo workload exports has a section."""
        from repro.obs.__main__ import build_workload, ingest_round

        registry = obs.enable()
        try:
            workload = build_workload(registry, seed=7)
            ingest_round(workload, 5_000, seed=17)
            report = render_health_report(obs.render_json(registry))
        finally:
            obs.disable()
        assert "unrecognized series" not in report


class TestEndToEnd:
    def test_report_over_live_workload(self):
        """The report renders real sections from a live registry."""
        from repro.obs.__main__ import build_workload, ingest_round

        registry = obs.enable()
        try:
            workload = build_workload(registry, seed=7)
            ingest_round(workload, 20_000, seed=17)
            workload["sink"].drain(workload["tracer"])
            report = render_health_report(
                obs.render_json(registry), list(workload["sink"].records())
            )
        finally:
            obs.disable()
        assert "CountQuery" in report
        assert "p50" in report
        assert "hit rate" in report
        assert "root span(s)" in report
        assert "no audit data" not in report
        assert "no latency data" not in report
