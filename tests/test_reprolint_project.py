"""Tests for reprolint's project pass: the model and rules RL013-RL015.

Fixture trees are written under ``tmp_path/repro/...`` so they scope
exactly like the real package (``module_parts`` anchors at the last
``repro`` path component).  The acceptance battery at the bottom
mutates a *copy* of the live tree and asserts the rules catch every
deleted invalidation line -- the property the whole pass exists for.
"""

from __future__ import annotations

import json
import re
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.analysis.__main__ import main
from repro.analysis.module import SourceModule
from repro.analysis.project import (
    AnalysisCache,
    ProjectModel,
    content_hash,
    summarize_module,
)
from repro.analysis.runner import default_root

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "reprolint_fixtures"


def write_tree(tmp_path: Path, files: dict[str, str]) -> None:
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def lint_tree(tmp_path: Path, files: dict[str, str]) -> list:
    write_tree(tmp_path, files)
    return list(analyze_paths([tmp_path]))


def build_model(tmp_path: Path, files: dict[str, str]) -> ProjectModel:
    write_tree(tmp_path, files)
    summaries = [
        summarize_module(SourceModule.load(path, tmp_path))
        for path in sorted(tmp_path.rglob("*.py"))
    ]
    return ProjectModel(summaries, root=tmp_path)


def codes(findings: list) -> set[str]:
    return {finding.rule for finding in findings}


# ----------------------------------------------------------------------
# The project model: resolution, hierarchy, dataflow extraction
# ----------------------------------------------------------------------


class TestProjectModel:
    def test_reexport_resolution_through_init(self, tmp_path: Path) -> None:
        model = build_model(
            tmp_path,
            {
                "repro/core/__init__.py": (
                    "from repro.core.base import Thing\n"
                ),
                "repro/core/base.py": "class Thing:\n    pass\n",
            },
        )
        assert model.resolve_symbol("repro.core", "Thing") == (
            "class",
            "repro.core.base.Thing",
        )

    def test_aliased_from_import_resolution(self, tmp_path: Path) -> None:
        model = build_model(
            tmp_path,
            {
                "repro/core/__init__.py": (
                    "from repro.core.base import Thing\n"
                ),
                "repro/core/base.py": "class Thing:\n    pass\n",
                "repro/core/user.py": (
                    "from repro.core import Thing as T\n"
                    "class Sub(T):\n    pass\n"
                ),
            },
        )
        ancestors, resolved = model.ancestors("repro.core.user.Sub")
        assert ancestors == ["repro.core.base.Thing"]
        assert resolved

    def test_module_alias_dotted_base(self, tmp_path: Path) -> None:
        model = build_model(
            tmp_path,
            {
                "repro/core/base.py": "class Core:\n    pass\n",
                "repro/core/user.py": (
                    "import repro.core.base as cb\n"
                    "class Sub(cb.Core):\n    pass\n"
                ),
            },
        )
        ancestors, resolved = model.ancestors("repro.core.user.Sub")
        assert ancestors == ["repro.core.base.Core"]
        assert resolved

    def test_import_cycle_resolution_terminates(
        self, tmp_path: Path
    ) -> None:
        # Neither module defines Ghost; the chain loops a <-> b and
        # must come back None rather than recursing forever.
        model = build_model(
            tmp_path,
            {
                "repro/pkg/a.py": "from repro.pkg.b import Ghost\n",
                "repro/pkg/b.py": "from repro.pkg.a import Ghost\n",
            },
        )
        assert model.resolve_symbol("repro.pkg.a", "Ghost") is None

    def test_relative_import_resolution(self, tmp_path: Path) -> None:
        model = build_model(
            tmp_path,
            {
                "repro/core/__init__.py": "from .base import Thing\n",
                "repro/core/base.py": "class Thing:\n    pass\n",
            },
        )
        assert model.resolve_symbol("repro.core", "Thing") == (
            "class",
            "repro.core.base.Thing",
        )

    def test_unresolvable_base_flagged(self, tmp_path: Path) -> None:
        model = build_model(
            tmp_path,
            {
                "repro/core/user.py": (
                    "from mystery import Unknown\n"
                    "class Sub(Unknown):\n    pass\n"
                ),
            },
        )
        ancestors, resolved = model.ancestors("repro.core.user.Sub")
        assert ancestors == []
        assert not resolved

    def test_attrless_external_base_stays_resolved(
        self, tmp_path: Path
    ) -> None:
        model = build_model(
            tmp_path,
            {
                "repro/core/user.py": (
                    "from abc import ABC\n"
                    "class Sub(ABC):\n    pass\n"
                ),
            },
        )
        ancestors, resolved = model.ancestors("repro.core.user.Sub")
        assert ancestors == []
        assert resolved

    def test_attribute_surface_includes_inherited_init(
        self, tmp_path: Path
    ) -> None:
        model = build_model(
            tmp_path,
            {
                "repro/core/base.py": (
                    "class Base:\n"
                    "    def __init__(self):\n"
                    "        self.ledger = {}\n"
                ),
                "repro/core/user.py": (
                    "from repro.core.base import Base\n"
                    "class Sub(Base):\n"
                    "    LIMIT = 3\n"
                    "    def tally(self):\n"
                    "        self.local = 1\n"
                ),
            },
        )
        surface = model.attribute_surface("repro.core.user.Sub")
        assert {"ledger", "local", "LIMIT", "tally", "__init__"} <= surface

    def test_resolved_methods_nearest_wins(self, tmp_path: Path) -> None:
        model = build_model(
            tmp_path,
            {
                "repro/core/base.py": (
                    "class Base:\n"
                    "    def hook(self):\n"
                    "        self.base_attr = 1\n"
                ),
                "repro/core/user.py": (
                    "from repro.core.base import Base\n"
                    "class Sub(Base):\n"
                    "    def hook(self):\n"
                    "        self.sub_attr = 1\n"
                ),
            },
        )
        table, _ = model.resolved_methods("repro.core.user.Sub")
        assert table["hook"].owner == "repro.core.user.Sub"
        assert "sub_attr" in table["hook"].summary.writes

    def test_alias_write_tracked(self, tmp_path: Path) -> None:
        source = textwrap.dedent(
            """\
            class S:
                def mutate(self):
                    counts = self._counts
                    counts[1] = 2
            """
        )
        summary = summarize_module(
            SourceModule(tmp_path / "repro" / "m.py", source, tmp_path)
        )
        method = summary.classes[0].methods["mutate"]
        assert "_counts" in method.writes

    def test_alias_rebinding_unbinds(self, tmp_path: Path) -> None:
        source = textwrap.dedent(
            """\
            class S:
                def mutate(self):
                    counts = self._counts
                    counts = {}
                    counts[1] = 2
            """
        )
        summary = summarize_module(
            SourceModule(tmp_path / "repro" / "m.py", source, tmp_path)
        )
        method = summary.classes[0].methods["mutate"]
        assert "_counts" not in method.writes

    def test_mutator_method_call_tracked(self, tmp_path: Path) -> None:
        source = textwrap.dedent(
            """\
            class S:
                def merge(self, other):
                    self._rows.update(other)
                    self._queue.append(other)
            """
        )
        summary = summarize_module(
            SourceModule(tmp_path / "repro" / "m.py", source, tmp_path)
        )
        method = summary.classes[0].methods["merge"]
        assert {"_rows", "_queue"} <= set(method.writes)

    def test_subscript_store_tracked(self, tmp_path: Path) -> None:
        source = textwrap.dedent(
            """\
            class S:
                def poke(self):
                    self._grid[0][1] = 5
                    del self._cells[3]
            """
        )
        summary = summarize_module(
            SourceModule(tmp_path / "repro" / "m.py", source, tmp_path)
        )
        method = summary.classes[0].methods["poke"]
        assert {"_grid", "_cells"} <= set(method.writes)

    def test_summary_json_round_trip(self, tmp_path: Path) -> None:
        source = textwrap.dedent(
            """\
            from repro.core import Thing  # noqa
            class S(Thing):
                KIND = 1
                SNAPSHOT_KIND = "s"
                def mutate(self, value):
                    self._counts[value] = 1
                    self.helper()
                def helper(self):
                    return self._counts
            """
        )
        summary = summarize_module(
            SourceModule(tmp_path / "repro" / "m.py", source, tmp_path)
        )
        from repro.analysis.project import ModuleSummary

        rebuilt = ModuleSummary.from_json(
            json.loads(json.dumps(summary.to_json()))
        )
        assert rebuilt.parts == summary.parts
        assert rebuilt.sha256 == summary.sha256
        cls, rebuilt_cls = summary.classes[0], rebuilt.classes[0]
        assert rebuilt_cls.snapshot_kind == "s"
        assert rebuilt_cls.class_assigns == cls.class_assigns
        assert (
            rebuilt_cls.methods["mutate"].writes
            == cls.methods["mutate"].writes
        )
        assert rebuilt_cls.methods["mutate"].calls == {"helper"}


# ----------------------------------------------------------------------
# RL013: invalidation completeness
# ----------------------------------------------------------------------

_COLUMNAR_BASE = """\
class Sample:
    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._counts: dict[int, int] = {}
        self._columnar: tuple[int, ...] | None = None

    def columnar_view(self) -> tuple[int, ...]:
        if self._columnar is None:
            self._columnar = tuple(sorted(self._counts))
        return self._columnar
"""


class TestInvalidationRule:
    def test_missing_columnar_reset_fires(self, tmp_path: Path) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/s.py": _COLUMNAR_BASE
                + textwrap.indent(
                    textwrap.dedent(
                        """\

                        def insert(self, value: int) -> None:
                            self._counts[value] = 1
                        """
                    ),
                    "    ",
                )
            },
        )
        assert "RL013" in codes(findings)

    def test_reset_via_alias_write_is_clean(self, tmp_path: Path) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/s.py": _COLUMNAR_BASE
                + textwrap.indent(
                    textwrap.dedent(
                        """\

                        def insert(self, value: int) -> None:
                            counts = self._counts
                            counts[value] = 1
                            self._columnar = None
                        """
                    ),
                    "    ",
                )
            },
        )
        assert "RL013" not in codes(findings)

    def test_inherited_mutator_missing_reset_fires(
        self, tmp_path: Path
    ) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/base.py": _COLUMNAR_BASE,
                "repro/core/sub.py": (
                    "from repro.core.base import Sample\n\n\n"
                    "class Sub(Sample):\n"
                    "    def bulk(self, values: list[int]) -> None:\n"
                    "        self._counts.update(dict.fromkeys(values, 1))\n"
                ),
            },
        )
        rl013 = [f for f in findings if f.rule == "RL013"]
        assert rl013 and rl013[0].path.endswith("sub.py")

    def test_materialising_view_inside_mutator_is_no_excuse(
        self, tmp_path: Path
    ) -> None:
        # Calling columnar_view() writes the memo as a side effect;
        # the traversal must not credit that as an invalidation.
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/s.py": _COLUMNAR_BASE
                + textwrap.indent(
                    textwrap.dedent(
                        """\

                        def evict(self) -> None:
                            view = self.columnar_view()
                            self._counts = dict.fromkeys(view, 1)
                        """
                    ),
                    "    ",
                )
            },
        )
        assert "RL013" in codes(findings)

    def test_suppression_on_mutator_line(self, tmp_path: Path) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/s.py": _COLUMNAR_BASE
                + "\n"
                + "    def insert(self, value: int) -> None:"
                + "  # reprolint: disable=RL013\n"
                + "        self._counts[value] = 1\n"
            },
        )
        assert "RL013" not in codes(findings)

    def test_missing_epoch_bump_fires(self, tmp_path: Path) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/engine/r.py": textwrap.dedent(
                    """\
                    class Rel:
                        def __init__(self, name: str) -> None:
                            self.name = name
                            self._rows: dict[int, int] = {}
                            self._epoch = 0

                        def insert(self, row: int) -> None:
                            self._rows[row] = 1
                            self._epoch += 1

                        def sneaky(self, row: int) -> None:
                            self._rows[row] = 1
                    """
                )
            },
        )
        rl013 = [f for f in findings if f.rule == "RL013"]
        assert len(rl013) == 1
        assert "sneaky" in rl013[0].message

    def test_reader_methods_do_not_fire(self, tmp_path: Path) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/engine/r.py": textwrap.dedent(
                    """\
                    class Rel:
                        def __init__(self, name: str) -> None:
                            self.name = name
                            self._rows: dict[int, int] = {}
                            self._epoch = 0

                        def insert(self, row: int) -> None:
                            self._rows[row] = 1
                            self._epoch += 1

                        def size(self) -> int:
                            return len(self._rows)

                        def note(self, text: str) -> None:
                            self._label = text
                    """
                )
            },
        )
        assert "RL013" not in codes(findings)

    def test_bump_through_self_call_counts(self, tmp_path: Path) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/engine/r.py": textwrap.dedent(
                    """\
                    class Eng:
                        def __init__(self) -> None:
                            self._epochs: dict[str, int] = {}
                            self._tables: dict[str, int] = {}

                        def bump_epoch(self, name: str) -> None:
                            self._epochs[name] = self._epochs.get(name, 0) + 1

                        def register(self, name: str) -> None:
                            self._tables[name] = 1
                            self.bump_epoch(name)
                    """
                )
            },
        )
        assert "RL013" not in codes(findings)


# ----------------------------------------------------------------------
# RL014: the metric-name registry
# ----------------------------------------------------------------------


class TestMetricNameRule:
    def test_fstring_name_fires(self, tmp_path: Path) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/obs/x.py": textwrap.dedent(
                    """\
                    def export(registry, outcome):
                        registry.counter(f"repro_{outcome}_total", "x").inc()
                    """
                )
            },
        )
        assert "RL014" in codes(findings)

    def test_misnamed_literal_fires(self, tmp_path: Path) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/obs/x.py": textwrap.dedent(
                    """\
                    def export(registry):
                        registry.gauge("QueueDepth", "x").set(1.0)
                    """
                )
            },
        )
        assert "RL014" in codes(findings)

    def test_kind_conflict_fires(self, tmp_path: Path) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/obs/x.py": textwrap.dedent(
                    """\
                    def export(registry):
                        registry.counter("repro_depth_total", "x").inc()
                    """
                ),
                "repro/obs/y.py": textwrap.dedent(
                    """\
                    def export(registry):
                        registry.gauge("repro_depth_total", "x").set(1.0)
                    """
                ),
            },
        )
        rl014 = [f for f in findings if f.rule == "RL014"]
        assert len(rl014) == 1
        assert "already used as" in rl014[0].message

    def test_undocumented_metric_fires_with_docs(
        self, tmp_path: Path
    ) -> None:
        write_tree(
            tmp_path,
            {
                "docs/observability.md": "| `repro_known_total` |\n",
                "scan/repro/obs/x.py": textwrap.dedent(
                    """\
                    def export(registry):
                        registry.counter("repro_known_total", "x").inc()
                        registry.counter("repro_unknown_total", "x").inc()
                    """
                ),
            },
        )
        findings = list(analyze_paths([tmp_path / "scan"]))
        rl014 = [f for f in findings if f.rule == "RL014"]
        assert len(rl014) == 1
        assert "repro_unknown_total" in rl014[0].message

    def test_substring_doc_match_is_not_enough(
        self, tmp_path: Path
    ) -> None:
        # repro_cost appears inside repro_cost_flips_total; the word-
        # boundary match must not count that as documentation.
        write_tree(
            tmp_path,
            {
                "docs/observability.md": "| `repro_cost_flips_total` |\n",
                "scan/repro/obs/x.py": textwrap.dedent(
                    """\
                    def export(registry):
                        registry.counter("repro_cost", "x").inc()
                    """
                ),
            },
        )
        findings = list(analyze_paths([tmp_path / "scan"]))
        assert any(
            f.rule == "RL014" and "repro_cost" in f.message
            for f in findings
        )

    def test_doc_check_skipped_without_docs(self, tmp_path: Path) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/obs/x.py": textwrap.dedent(
                    """\
                    def export(registry):
                        registry.counter("repro_any_total", "x").inc()
                    """
                )
            },
        )
        assert "RL014" not in codes(findings)

    def test_non_repro_scoped_files_exempt(self, tmp_path: Path) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "tools/x.py": textwrap.dedent(
                    """\
                    def export(registry):
                        registry.counter(f"dyn_{1}", "x").inc()
                    """
                )
            },
        )
        assert "RL014" not in codes(findings)

    def test_suppression(self, tmp_path: Path) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/obs/x.py": (
                    "def export(registry, outcome):\n"
                    "    registry.counter(\n"
                    "        f\"repro_{outcome}_total\","
                    "  # reprolint: disable=RL014\n"
                    '        "x",\n'
                    "    ).inc()\n"
                )
            },
        )
        assert "RL014" not in codes(findings)


# ----------------------------------------------------------------------
# RL015: cross-class snapshot parity
# ----------------------------------------------------------------------


class TestSnapshotParityRule:
    def test_duplicate_snapshot_kind_fires(self, tmp_path: Path) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/a.py": (
                    "class A:\n    SNAPSHOT_KIND = 'dup'\n"
                ),
                "repro/core/b.py": (
                    "class B:\n    SNAPSHOT_KIND = 'dup'\n"
                ),
            },
        )
        rl015 = [f for f in findings if f.rule == "RL015"]
        assert len(rl015) == 1
        assert rl015[0].path.endswith("b.py")

    def test_split_pair_phantom_field_fires(self, tmp_path: Path) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/base.py": textwrap.dedent(
                    """\
                    class Base:
                        def __init__(self, size: int) -> None:
                            self.size = size

                        def to_dict(self) -> dict[str, object]:
                            return {"size": self.size}
                    """
                ),
                "repro/core/sub.py": textwrap.dedent(
                    """\
                    from repro.core.base import Base


                    class Sub(Base):
                        @classmethod
                        def from_dict(cls, payload: dict) -> "Sub":
                            out = cls(int(payload["size"]))
                            out.extra = payload["extra"]
                            return out
                    """
                ),
            },
        )
        rl015 = [f for f in findings if f.rule == "RL015"]
        assert any("extra" in f.message for f in rl015)

    def test_split_pair_parity_clean(self, tmp_path: Path) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/base.py": textwrap.dedent(
                    """\
                    class Base:
                        def __init__(self, size: int) -> None:
                            self.size = size

                        def to_dict(self) -> dict[str, object]:
                            return {"size": self.size}
                    """
                ),
                "repro/core/sub.py": textwrap.dedent(
                    """\
                    from repro.core.base import Base


                    class Sub(Base):
                        @classmethod
                        def from_dict(cls, payload: dict) -> "Sub":
                            return cls(int(payload["size"]))
                    """
                ),
            },
        )
        assert "RL015" not in codes(findings)

    def test_to_dict_reading_unassigned_attr_fires(
        self, tmp_path: Path
    ) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/s.py": textwrap.dedent(
                    """\
                    class S:
                        def __init__(self, size: int) -> None:
                            self.size = size

                        def to_dict(self) -> dict[str, object]:
                            return {
                                "size": self.size,
                                "ghost": self._ghost,
                            }
                    """
                )
            },
        )
        rl015 = [f for f in findings if f.rule == "RL015"]
        assert any("_ghost" in f.message for f in rl015)

    def test_inherited_init_assignment_counts(self, tmp_path: Path) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/base.py": textwrap.dedent(
                    """\
                    class Base:
                        def __init__(self) -> None:
                            self.counters = {}
                    """
                ),
                "repro/core/sub.py": textwrap.dedent(
                    """\
                    from repro.core.base import Base


                    class Sub(Base):
                        def to_dict(self) -> dict[str, object]:
                            return {"counters": self.counters}
                    """
                ),
            },
        )
        assert "RL015" not in codes(findings)

    def test_no_init_hierarchy_stands_down(self, tmp_path: Path) -> None:
        # Mirrors the RL007 fixtures: an ad-hoc class with no __init__
        # anywhere must not trip the existence check.
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/s.py": textwrap.dedent(
                    """\
                    class S:
                        def to_dict(self) -> dict[str, object]:
                            return {"threshold": self.threshold}
                    """
                )
            },
        )
        assert "RL015" not in codes(findings)

    def test_unresolved_base_stands_down(self, tmp_path: Path) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/s.py": textwrap.dedent(
                    """\
                    from mystery import Mixin


                    class S(Mixin):
                        def __init__(self) -> None:
                            self.size = 1

                        def to_dict(self) -> dict[str, object]:
                            return {"exotic": self.from_the_mixin}
                    """
                )
            },
        )
        assert "RL015" not in codes(findings)

    def test_suppression(self, tmp_path: Path) -> None:
        findings = lint_tree(
            tmp_path,
            {
                "repro/core/a.py": (
                    "class A:\n    SNAPSHOT_KIND = 'dup'\n"
                ),
                "repro/core/b.py": (
                    "class B:  # reprolint: disable=RL015\n"
                    "    SNAPSHOT_KIND = 'dup'\n"
                ),
            },
        )
        assert "RL015" not in codes(findings)


# ----------------------------------------------------------------------
# The committed self-check trees (mirrors the CI selfcheck step)
# ----------------------------------------------------------------------


class TestSelfcheckFixtures:
    def test_expected_fire_fires_every_project_rule(self) -> None:
        findings = list(analyze_paths([FIXTURES / "expected_fire" / "tree"]))
        by_rule: dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        assert by_rule == {"RL013": 2, "RL014": 4, "RL015": 3}

    def test_expected_clean_is_clean(self) -> None:
        findings = list(
            analyze_paths([FIXTURES / "expected_clean" / "tree"])
        )
        assert findings == []


# ----------------------------------------------------------------------
# Acceptance: mutations of a live-tree copy are caught
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def live_copy(tmp_path_factory: pytest.TempPathFactory) -> Path:
    """A mutable copy of src/ + docs/ (copied once per module)."""
    base = tmp_path_factory.mktemp("live_copy")
    shutil.copytree(REPO_ROOT / "src", base / "src")
    shutil.copytree(REPO_ROOT / "docs", base / "docs")
    return base


def _mutate_lines(
    path: Path, pattern: str, replacement: str = "        pass"
) -> list[int]:
    """Line numbers matching ``pattern`` (for one-at-a-time mutation)."""
    return [
        index
        for index, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        )
        if re.search(pattern, line)
    ]


def _with_line_replaced(original: str, line_number: int) -> str:
    lines = original.splitlines()
    indent = len(lines[line_number - 1]) - len(
        lines[line_number - 1].lstrip()
    )
    lines[line_number - 1] = " " * indent + "pass"
    return "\n".join(lines) + "\n"


class TestMutationAcceptance:
    def test_unmutated_copy_is_clean(self, live_copy: Path) -> None:
        assert list(analyze_paths([live_copy / "src"])) == []

    def test_every_columnar_reset_is_load_bearing(
        self, live_copy: Path
    ) -> None:
        target = live_copy / "src" / "repro" / "core" / "concise.py"
        original = target.read_text(encoding="utf-8")
        lines = _mutate_lines(target, r"^\s*self\._columnar = None$")
        assert len(lines) == 4, "concise.py invalidation lines moved"
        try:
            for line_number in lines:
                target.write_text(
                    _with_line_replaced(original, line_number),
                    encoding="utf-8",
                )
                findings = list(analyze_paths([live_copy / "src"]))
                assert "RL013" in codes(findings), (
                    f"deleting concise.py:{line_number} went unnoticed"
                )
        finally:
            target.write_text(original, encoding="utf-8")

    def test_every_epoch_bump_is_load_bearing(
        self, live_copy: Path
    ) -> None:
        target = live_copy / "src" / "repro" / "engine" / "relation.py"
        original = target.read_text(encoding="utf-8")
        lines = _mutate_lines(target, r"^\s*self\._epoch \+= 1$")
        assert len(lines) == 3, "relation.py epoch bumps moved"
        try:
            for line_number in lines:
                target.write_text(
                    _with_line_replaced(original, line_number),
                    encoding="utf-8",
                )
                findings = list(analyze_paths([live_copy / "src"]))
                assert "RL013" in codes(findings), (
                    f"deleting relation.py:{line_number} went unnoticed"
                )
        finally:
            target.write_text(original, encoding="utf-8")

    def test_renamed_metric_literal_is_caught(
        self, live_copy: Path
    ) -> None:
        target = (
            live_copy / "src" / "repro" / "persist" / "checkpoint.py"
        )
        original = target.read_text(encoding="utf-8")
        assert '"repro_checkpoint_writes_total"' in original
        try:
            target.write_text(
                original.replace(
                    '"repro_checkpoint_writes_total"',
                    '"repro_checkpoint_scribbles_total"',
                    1,
                ),
                encoding="utf-8",
            )
            findings = list(analyze_paths([live_copy / "src"]))
            assert any(
                f.rule == "RL014" and "scribbles" in f.message
                for f in findings
            )
        finally:
            target.write_text(original, encoding="utf-8")


# ----------------------------------------------------------------------
# The content-hash cache: incremental runs skip unchanged files
# ----------------------------------------------------------------------


class TestAnalysisCache:
    def _tree(self, tmp_path: Path) -> dict[str, str]:
        return {
            "repro/core/clean.py": "VALUE = 1\n",
            "repro/core/bad.py": "import time\n",
        }

    def test_second_run_parses_nothing(
        self, tmp_path: Path, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        import repro.analysis.runner as runner_module

        write_tree(tmp_path / "tree", self._tree(tmp_path))
        cache_file = tmp_path / "cache.json"
        parsed: list[Path] = []
        real = runner_module.SourceModule

        class CountingModule(real):  # type: ignore[misc,valid-type]
            def __init__(self, path, source, root):
                parsed.append(path)
                super().__init__(path, source, root)

        monkeypatch.setattr(runner_module, "SourceModule", CountingModule)
        first = analyze_paths([tmp_path / "tree"], cache_path=cache_file)
        assert parsed, "first run must parse"
        parsed.clear()
        second = analyze_paths([tmp_path / "tree"], cache_path=cache_file)
        assert parsed == [], "second run must be served from the cache"
        assert first == second
        assert any(f.rule == "RL005" for f in second)

    def test_only_changed_file_reparsed(
        self, tmp_path: Path, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        import repro.analysis.runner as runner_module

        write_tree(tmp_path / "tree", self._tree(tmp_path))
        cache_file = tmp_path / "cache.json"
        analyze_paths([tmp_path / "tree"], cache_path=cache_file)

        parsed: list[Path] = []
        real = runner_module.SourceModule

        class CountingModule(real):  # type: ignore[misc,valid-type]
            def __init__(self, path, source, root):
                parsed.append(path)
                super().__init__(path, source, root)

        monkeypatch.setattr(runner_module, "SourceModule", CountingModule)
        changed = tmp_path / "tree" / "repro" / "core" / "clean.py"
        changed.write_text("VALUE = 2\n", encoding="utf-8")
        analyze_paths([tmp_path / "tree"], cache_path=cache_file)
        assert [p.name for p in parsed] == ["clean.py"]

    def test_project_rules_rerun_over_cached_summaries(
        self, tmp_path: Path
    ) -> None:
        files = {
            "repro/core/a.py": "class A:\n    SNAPSHOT_KIND = 'dup'\n",
            "repro/core/b.py": "class B:\n    SNAPSHOT_KIND = 'dup'\n",
        }
        write_tree(tmp_path / "tree", files)
        cache_file = tmp_path / "cache.json"
        first = analyze_paths([tmp_path / "tree"], cache_path=cache_file)
        second = analyze_paths([tmp_path / "tree"], cache_path=cache_file)
        assert [f.rule for f in first] == ["RL015"]
        assert first == second

    def test_cache_invalidated_by_content_change(
        self, tmp_path: Path
    ) -> None:
        path = tmp_path / "m.py"
        path.write_text("A = 1\n", encoding="utf-8")
        cache = AnalysisCache(tmp_path / "c.json")
        digest = content_hash(path.read_text(encoding="utf-8"))
        cache.store(str(path), digest, [], None)
        cache.save()
        reloaded = AnalysisCache(tmp_path / "c.json")
        assert reloaded.lookup(str(path), digest) is not None
        assert reloaded.lookup(str(path), content_hash("A = 2\n")) is None

    def test_corrupt_cache_file_is_ignored(self, tmp_path: Path) -> None:
        cache_file = tmp_path / "c.json"
        cache_file.write_text("{not json", encoding="utf-8")
        write_tree(tmp_path / "tree", {"repro/core/x.py": "V = 1\n"})
        findings = analyze_paths(
            [tmp_path / "tree"], cache_path=cache_file
        )
        assert findings == []
        # And the cache was rewritten into a loadable state.
        assert json.loads(cache_file.read_text(encoding="utf-8"))[
            "version"
        ] == AnalysisCache.VERSION


# ----------------------------------------------------------------------
# Root scoping: results must not depend on the invocation cwd
# ----------------------------------------------------------------------


class TestRootScoping:
    def test_default_root_is_common_parent(self, tmp_path: Path) -> None:
        (tmp_path / "a" / "b").mkdir(parents=True)
        (tmp_path / "a" / "c").mkdir(parents=True)
        root = default_root([tmp_path / "a" / "b", tmp_path / "a" / "c"])
        assert root == tmp_path / "a"

    def test_scan_from_inside_tree_keeps_exemptions(
        self, tmp_path: Path, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        # tests/ files are RL010-exempt because "tests" is a path
        # component; scanning "." from inside tests/ must preserve
        # that (the old cwd-derived root lost it).
        write_tree(
            tmp_path,
            {
                "tests/test_thing.py": (
                    "def test_write(tmp_path):\n"
                    "    (tmp_path / 'x').write_text('hi')\n"
                )
            },
        )
        monkeypatch.chdir(tmp_path / "tests")
        findings = list(analyze_paths([Path(".")]))
        assert findings == []

    def test_absolute_scan_is_cwd_independent(
        self, tmp_path: Path, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        write_tree(
            tmp_path,
            {"scan/repro/core/x.py": "import time\n"},
        )
        here = list(analyze_paths([tmp_path / "scan"]))
        monkeypatch.chdir(tmp_path)
        there = list(analyze_paths([(tmp_path / "scan")]))
        assert here == there
        assert any(f.rule == "RL005" for f in here)

    def test_explicit_root_flag(
        self, tmp_path: Path, capsys: pytest.CaptureFixture
    ) -> None:
        write_tree(tmp_path, {"scan/tools/x.py": "V = 1\n"})
        assert (
            main(
                [
                    "--root",
                    str(tmp_path),
                    "--json",
                    str(tmp_path / "scan"),
                ]
            )
            == 0
        )
        json.loads(capsys.readouterr().out)


# ----------------------------------------------------------------------
# SARIF output
# ----------------------------------------------------------------------


class TestSarifOutput:
    def test_sarif_document_shape(
        self, tmp_path: Path, capsys: pytest.CaptureFixture
    ) -> None:
        bad = tmp_path / "repro" / "core" / "x.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\n", encoding="utf-8")
        assert main(["--sarif", str(bad)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == "2.1.0"
        run = report["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"RL005", "RL013", "RL014", "RL015"} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "RL005"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 1
        assert region["startColumn"] >= 1

    def test_sarif_clean_tree(
        self, tmp_path: Path, capsys: pytest.CaptureFixture
    ) -> None:
        (tmp_path / "ok.py").write_text("V = 1\n", encoding="utf-8")
        assert main(["--sarif", str(tmp_path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["runs"][0]["results"] == []

    def test_sarif_and_json_are_exclusive(self, tmp_path: Path) -> None:
        with pytest.raises(SystemExit):
            main(["--sarif", "--json", str(tmp_path)])
