"""Concurrency and snapshot-isolation battery for the AQP service.

The contract under test: a session that pins a snapshot sees one
frozen synopsis state -- every subsequent pinned answer is
byte-identical to the serial oracle (a fresh engine fed exactly the
batch prefix the snapshot captured), no matter how many writers ingest
concurrently.  Torn reads are impossible: re-asking the same pinned
query while batches stream in returns the same bytes every time.

The oracle comparison goes through the wire codec on both sides --
``json.dumps(..., sort_keys=True)`` equality of the raw response
payloads -- so any drift (float formatting, interval bounds, hotlist
ordering) fails loudly.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    consumes,
    precondition,
    rule,
)

from repro.core.concise import ConciseSample
from repro.engine import ApproximateAnswerEngine, DataWarehouse, NoSynopsisError
from repro.engine.cache import QueryResultCache
from repro.engine.queries import (
    AverageQuery,
    CountQuery,
    DistinctCountQuery,
    FrequencyQuery,
    HotListQuery,
    Query,
    SelectivityQuery,
    SumQuery,
)
from repro.estimators.selectivity import Predicate
from repro.hotlist import CountingHotList
from repro.obs.metrics import MetricsRegistry
from repro.randkit import numpy_generator
from repro.serving import AQPClient, AQPServer, NoSynopsisRemote, ServerError
from repro.serving import codec as wire_codec
from repro.synopses import FlajoletMartinSketch

RELATION = "sales"
ATTRIBUTE = "price"

SCENARIO_TIMEOUT = 60.0


def run_scenario(coro):
    """``asyncio.run`` with a hard deadline: a wedged server fails the
    test instead of hanging the shard."""
    return asyncio.run(asyncio.wait_for(coro, SCENARIO_TIMEOUT))

QUERIES: list[tuple[str, Query]] = [
    ("count-range", CountQuery(RELATION, ATTRIBUTE, Predicate(low=5, high=30))),
    ("count-all", CountQuery(RELATION, ATTRIBUTE, None)),
    ("sum", SumQuery(RELATION, ATTRIBUTE, None)),
    ("average", AverageQuery(RELATION, ATTRIBUTE, None)),
    ("selectivity", SelectivityQuery(RELATION, ATTRIBUTE, Predicate(equals=7))),
    ("frequency", FrequencyQuery(RELATION, ATTRIBUTE, value=3)),
    ("distinct", DistinctCountQuery(RELATION, ATTRIBUTE)),
    ("hotlist", HotListQuery(RELATION, ATTRIBUTE, k=5)),
]


def build_stack(
    *, cache: bool = False
) -> tuple[DataWarehouse, ApproximateAnswerEngine]:
    """Warehouse + engine with fixed synopsis seeds.

    Server and oracle both build through here, so identical batch
    prefixes produce identical synopsis state by construction.
    """
    warehouse = DataWarehouse()
    warehouse.create_relation(RELATION, [ATTRIBUTE])
    engine = ApproximateAnswerEngine(
        warehouse,
        cache=QueryResultCache(registry=MetricsRegistry()) if cache else None,
    )
    engine.register_sample(RELATION, ATTRIBUTE, ConciseSample(128, seed=11))
    engine.register_hotlist(RELATION, ATTRIBUTE, CountingHotList(64, seed=12))
    engine.register_distinct(
        RELATION, ATTRIBUTE, FlajoletMartinSketch(64, seed=13)
    )
    return warehouse, engine


def batch_values(index: int) -> list[int]:
    """Deterministic batch ``index`` of the shared ingest stream."""
    rng = numpy_generator(1_000 + index)
    return [int(v) for v in rng.integers(0, 50, size=120)]


def canon(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True)


def oracle_answer(batches: list[list[int]], query: Query) -> str:
    """Serial oracle: fresh engine fed exactly ``batches``, pinned,
    answered, and rendered through the same wire codec.

    Raises whatever the answer path raises, so callers can also match
    error behaviour.
    """
    warehouse, engine = build_stack()
    for values in batches:
        warehouse.load_batch(
            RELATION, {ATTRIBUTE: np.asarray(values, dtype=np.int64)}
        )
    response = engine.pin_view().answer(query)
    return canon(wire_codec.encode_response(response))


def fresh_server(
    *, cache: bool = False
) -> tuple[AQPServer, DataWarehouse, ApproximateAnswerEngine]:
    warehouse, engine = build_stack(cache=cache)
    server = AQPServer(warehouse, engine, registry=MetricsRegistry())
    return server, warehouse, engine


class TestSnapshotIsolationUnderLoad:
    def test_readers_see_frozen_bytes_while_writer_streams(self):
        """Four readers pin snapshots at different points while a
        writer streams six more batches; every pinned answer matches
        the serial oracle at that reader's epoch, byte for byte, on
        every re-ask."""

        async def reader(
            host: str, port: int
        ) -> tuple[int, dict[str, str]]:
            client = await AQPClient.connect(host, port)
            try:
                await client.hello()
                epochs = await client.snapshot()
                prefix = epochs[RELATION][0]
                baseline: dict[str, str] = {}
                for name, query in QUERIES:
                    raw = await client.query_raw(query)
                    assert raw["mode"] == "pinned"
                    baseline[name] = canon(raw["response"])
                # Re-ask everything repeatedly while the writer runs;
                # any torn read shows up as a byte difference.
                for _ in range(3):
                    await asyncio.sleep(0)
                    for name, query in QUERIES:
                        raw = await client.query_raw(query)
                        assert canon(raw["response"]) == baseline[name], (
                            f"torn read on {name} at prefix {prefix}"
                        )
                return prefix, baseline
            finally:
                await client.close()

        async def writer(host: str, port: int, start: int, stop: int):
            client = await AQPClient.connect(host, port)
            try:
                await client.hello()
                for index in range(start, stop):
                    rows = await client.ingest(
                        RELATION, {ATTRIBUTE: batch_values(index)}
                    )
                    assert rows == len(batch_values(index))
                    await asyncio.sleep(0)
            finally:
                await client.close()

        async def scenario():
            server, _, _ = fresh_server()
            host, port = await server.start()
            # Seed one batch so the first snapshots have data.
            await writer(host, port, 0, 1)
            results = await asyncio.gather(
                writer(host, port, 1, 7),
                *(reader(host, port) for _ in range(4)),
            )
            await server.shutdown()
            return results[1:]

        outcomes = run_scenario(scenario())
        by_prefix: dict[int, dict[str, str]] = {}
        for prefix, baseline in outcomes:
            assert prefix >= 1
            expected = by_prefix.setdefault(prefix, baseline)
            # Readers pinned at the same epoch agree exactly.
            assert baseline == expected
            for name, query in QUERIES:
                assert baseline[name] == oracle_answer(
                    [batch_values(i) for i in range(prefix)], query
                ), f"{name} diverged from the serial oracle at {prefix}"

    def test_pinned_survives_ingest_but_live_moves(self):
        """Sanity check that the isolation is doing real work: after
        more ingest the pinned count is frozen while the live count
        has grown."""

        async def scenario():
            server, _, _ = fresh_server()
            host, port = await server.start()
            client = await AQPClient.connect(host, port)
            await client.hello()
            await client.ingest(RELATION, {ATTRIBUTE: batch_values(0)})
            await client.snapshot()
            query = CountQuery(RELATION, ATTRIBUTE, None)
            pinned_before = canon(
                (await client.query_raw(query))["response"]
            )
            for index in range(1, 5):
                await client.ingest(
                    RELATION, {ATTRIBUTE: batch_values(index)}
                )
            pinned_after = canon(
                (await client.query_raw(query))["response"]
            )
            live = await client.query(query, mode="live")
            await client.bye()
            await server.shutdown()
            return pinned_before, pinned_after, live.answer

        pinned_before, pinned_after, live_answer = run_scenario(scenario())
        assert pinned_before == pinned_after
        pinned_answer = json.loads(pinned_before)["answer"]["value"]
        assert live_answer > pinned_answer


class TestCacheTransparency:
    def test_cached_and_uncached_servers_answer_identically(self):
        """Live-mode answers from a cache-backed server are
        byte-identical to an uncached twin -- on cold misses, warm
        hits, and after ingest invalidates the cache."""

        async def drive(cache: bool) -> list[str]:
            server, _, _ = fresh_server(cache=cache)
            host, port = await server.start()
            client = await AQPClient.connect(host, port)
            await client.hello()
            transcript: list[str] = []
            for index in range(3):
                await client.ingest(
                    RELATION, {ATTRIBUTE: batch_values(index)}
                )
                # Two passes: the second is a cache hit on the cached
                # server and a recompute on the uncached one.
                for _ in range(2):
                    for _, query in QUERIES:
                        raw = await client.query_raw(query, mode="live")
                        transcript.append(canon(raw["response"]))
            await client.bye()
            await server.shutdown()
            return transcript

        cached = run_scenario(drive(True))
        uncached = run_scenario(drive(False))
        assert cached == uncached


def _raise_like_oracle(batches: list[list[int]], query: Query):
    """Run the oracle, mapping its exceptions to the server's typed
    error codes so properties can match behaviour, not just values."""
    try:
        return "ok", oracle_answer(batches, query)
    except NoSynopsisError:
        return "error", "no-synopsis"
    except ValueError:
        return "error", "query-error"


@given(
    initial=st.lists(
        st.lists(st.integers(0, 40), min_size=1, max_size=30),
        min_size=1,
        max_size=3,
    ),
    extra=st.lists(
        st.lists(st.integers(0, 40), min_size=1, max_size=30),
        max_size=2,
    ),
    query_index=st.integers(0, len(QUERIES) - 1),
)
@settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_snapshot_isolation_property(initial, extra, query_index):
    """The core property, 200 examples deep: pin after ``initial``
    batches, ingest ``extra`` more, and the pinned answer still equals
    the serial oracle over ``initial`` alone -- byte-identical results
    and matching typed errors alike."""
    _, query = QUERIES[query_index]

    async def scenario():
        server, _, _ = fresh_server()
        host, port = await server.start()
        client = await AQPClient.connect(host, port)
        try:
            await client.hello()
            for values in initial:
                await client.ingest(RELATION, {ATTRIBUTE: values})
            epochs = await client.snapshot()
            assert epochs[RELATION][0] == len(initial)
            for values in extra:
                await client.ingest(RELATION, {ATTRIBUTE: values})
            try:
                raw = await client.query_raw(query)
            except NoSynopsisRemote:
                return "error", "no-synopsis"
            except ServerError as error:
                return "error", error.code
            assert raw["mode"] == "pinned"
            return "ok", canon(raw["response"])
        finally:
            await client.close()
            await server.shutdown()

    assert run_scenario(scenario()) == _raise_like_oracle(initial, query)


class ServingMachine(RuleBasedStateMachine):
    """Random interleavings of connect / snapshot / register / query /
    ingest / disconnect against one live server, checked step by step
    against the batch-prefix oracle."""

    clients = Bundle("clients")

    def __init__(self):
        super().__init__()
        self.loop = asyncio.new_event_loop()
        server, warehouse, engine = fresh_server()
        self.server = server
        self.run(server.start())
        host, port = server.address
        self.host, self.port = host, port
        self.batches: list[list[int]] = [batch_values(0)]
        self.writer = self.run(AQPClient.connect(host, port))
        self.run(self.writer.hello())
        self.run(
            self.writer.ingest(RELATION, {ATTRIBUTE: self.batches[0]})
        )
        self.open_clients = 0

    def run(self, coro):
        return self.loop.run_until_complete(
            asyncio.wait_for(coro, SCENARIO_TIMEOUT)
        )

    @rule(target=clients)
    def connect(self):
        client = self.run(AQPClient.connect(self.host, self.port))
        self.run(client.hello())
        epochs = self.run(client.snapshot())
        prefix = epochs[RELATION][0]
        assert prefix == len(self.batches)
        self.open_clients += 1
        return {
            "client": client,
            "prefix": prefix,
            "handles": {},
            "counter": 0,
        }

    @rule(values=st.lists(st.integers(0, 40), min_size=1, max_size=20))
    def ingest(self, values):
        rows = self.run(
            self.writer.ingest(RELATION, {ATTRIBUTE: values})
        )
        assert rows == len(values)
        self.batches.append(values)

    @rule(entry=clients, query_index=st.integers(0, len(QUERIES) - 1))
    def register(self, entry, query_index):
        _, query = QUERIES[query_index]
        entry["counter"] += 1
        handle = f"h{entry['counter']}"
        assert (
            self.run(entry["client"].register(handle, query)) == handle
        )
        entry["handles"][handle] = query

    @rule(entry=clients, query_index=st.integers(0, len(QUERIES) - 1))
    def query_pinned(self, entry, query_index):
        _, query = QUERIES[query_index]
        self._check(entry, query, {"query": query})

    @precondition(lambda self: True)
    @rule(entry=clients, pick=st.integers(0, 7))
    def query_by_handle(self, entry, pick):
        if not entry["handles"]:
            return
        handles = sorted(entry["handles"])
        handle = handles[pick % len(handles)]
        self._check(
            entry, entry["handles"][handle], {"handle": handle}
        )

    def _check(self, entry, query, how):
        oracle = _raise_like_oracle(
            self.batches[: entry["prefix"]], query
        )
        try:
            raw = self.run(entry["client"].query_raw(**how))
        except NoSynopsisRemote:
            observed = ("error", "no-synopsis")
        except ServerError as error:
            observed = ("error", error.code)
        else:
            assert raw["mode"] == "pinned"
            observed = ("ok", canon(raw["response"]))
        assert observed == oracle, (
            f"session at prefix {entry['prefix']} diverged on {query}"
        )

    @rule(entry=consumes(clients))
    def disconnect(self, entry):
        self.run(entry["client"].bye())
        self.open_clients -= 1

    def teardown(self):
        try:
            self.run(self.writer.bye())
        except (ConnectionError, RuntimeError):
            pass
        self.run(self.server.shutdown())
        self.loop.close()


ServingMachine.TestCase.settings = settings(
    max_examples=20,
    stateful_step_count=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TestServingMachine = ServingMachine.TestCase
