"""Unit tests for the traditional-sample hot-list algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hotlist.traditional import TraditionalHotList
from repro.streams import zipf_stream


class TestReporting:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TraditionalHotList(100, confidence_threshold=0)
        reporter = TraditionalHotList(100, seed=1)
        with pytest.raises(ValueError):
            reporter.report(0)

    def test_empty_stream_reports_nothing(self):
        reporter = TraditionalHotList(100, seed=2)
        assert len(reporter.report(5)) == 0

    def test_confidence_threshold_filters_rare(self):
        """Values with fewer than theta sample points are never
        reported."""
        reporter = TraditionalHotList(100, confidence_threshold=3, seed=3)
        reporter.insert_array(np.arange(100))  # fill: all distinct
        # Every sample count is 1 < theta: nothing reported.
        assert len(reporter.report(10)) == 0

    def test_reports_hot_value(self):
        stream = zipf_stream(50_000, 500, 2.0, seed=4)
        reporter = TraditionalHotList(1000, seed=5)
        reporter.insert_array(stream)
        answer = reporter.report(5)
        assert 1 in answer.values()

    def test_counts_scaled_by_n_over_m(self):
        """With a pure single-value stream the estimate is ~n."""
        reporter = TraditionalHotList(100, seed=6)
        n = 10_000
        reporter.insert_array(np.full(n, 7))
        answer = reporter.report(1)
        assert answer.as_dict()[7] == pytest.approx(n)

    def test_at_most_k_reported(self):
        stream = zipf_stream(50_000, 100, 1.5, seed=7)
        reporter = TraditionalHotList(1000, seed=8)
        reporter.insert_array(stream)
        for k in (1, 3, 10):
            assert len(reporter.report(k)) <= k

    def test_fewer_than_k_on_uniform_data(self):
        """Near-uniform data yields almost no reportable values
        (Section 5.2's inevitability discussion)."""
        stream = zipf_stream(100_000, 50_000, 0.0, seed=9)
        reporter = TraditionalHotList(1000, seed=10)
        reporter.insert_array(stream)
        assert len(reporter.report(20)) < 20

    def test_estimates_nonincreasing(self):
        stream = zipf_stream(30_000, 200, 1.5, seed=11)
        reporter = TraditionalHotList(500, seed=12)
        reporter.insert_array(stream)
        estimates = [e.estimated_count for e in reporter.report(10)]
        assert estimates == sorted(estimates, reverse=True)

    def test_quantised_counts(self):
        """Reported counts are multiples of n/m -- the 'horizontal
        rows' artifact the paper shows in Figure 5."""
        n, m = 50_000, 1000
        stream = zipf_stream(n, 5000, 1.0, seed=13)
        reporter = TraditionalHotList(m, seed=14)
        reporter.insert_array(stream)
        quantum = n / m
        for entry in reporter.report(30):
            ratio = entry.estimated_count / quantum
            assert ratio == pytest.approx(round(ratio))

    def test_footprint_delegation(self):
        reporter = TraditionalHotList(64, seed=15)
        reporter.insert_array(np.arange(1000))
        assert reporter.footprint == 64
        assert reporter.footprint_bound == 64
