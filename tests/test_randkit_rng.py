"""Unit tests for the seeded RNG wrapper."""

from __future__ import annotations

import math

import pytest

from repro.randkit.rng import ReproRandom, seed_stream, spawn_seeds


class TestReproRandom:
    def test_same_seed_same_stream(self):
        a = ReproRandom(7)
        b = ReproRandom(7)
        assert [a.uniform() for _ in range(10)] == [
            b.uniform() for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a = ReproRandom(7)
        b = ReproRandom(8)
        assert [a.uniform() for _ in range(5)] != [
            b.uniform() for _ in range(5)
        ]

    def test_seed_property(self):
        assert ReproRandom(123).seed == 123

    def test_uniform_in_unit_interval(self):
        rng = ReproRandom(1)
        for _ in range(1000):
            u = rng.uniform()
            assert 0.0 <= u < 1.0

    def test_randint_bounds_inclusive(self):
        rng = ReproRandom(2)
        draws = {rng.randint(1, 3) for _ in range(200)}
        assert draws == {1, 2, 3}

    def test_bernoulli_degenerate_probabilities(self):
        rng = ReproRandom(3)
        assert rng.bernoulli(1.0) is True
        assert rng.bernoulli(0.0) is False
        assert rng.bernoulli(1.5) is True
        assert rng.bernoulli(-0.5) is False

    def test_bernoulli_frequency(self):
        rng = ReproRandom(4)
        hits = sum(rng.bernoulli(0.3) for _ in range(20_000))
        assert 0.27 < hits / 20_000 < 0.33

    def test_geometric_skip_certain_success(self):
        rng = ReproRandom(5)
        assert all(rng.geometric_skip(1.0) == 0 for _ in range(10))

    def test_geometric_skip_mean(self):
        rng = ReproRandom(6)
        p = 0.2
        draws = [rng.geometric_skip(p) for _ in range(20_000)]
        expected_mean = (1 - p) / p  # failures before first success
        assert abs(sum(draws) / len(draws) - expected_mean) < 0.15

    def test_geometric_skip_distribution_head(self):
        rng = ReproRandom(7)
        p = 0.5
        draws = [rng.geometric_skip(p) for _ in range(40_000)]
        frac_zero = sum(d == 0 for d in draws) / len(draws)
        assert abs(frac_zero - p) < 0.02

    def test_geometric_skip_rejects_tiny_probability(self):
        rng = ReproRandom(8)
        with pytest.raises(ValueError):
            rng.geometric_skip(1e-15)

    def test_geometric_skip_never_negative(self):
        rng = ReproRandom(9)
        assert all(rng.geometric_skip(0.01) >= 0 for _ in range(1000))

    def test_shuffled_is_permutation_and_copies(self):
        rng = ReproRandom(10)
        items = list(range(20))
        shuffled = rng.shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(20))  # input untouched

    def test_choice_index_bounds(self):
        rng = ReproRandom(11)
        assert all(0 <= rng.choice_index(7) < 7 for _ in range(500))

    def test_fork_independent_and_reproducible(self):
        a1 = ReproRandom(12)
        a2 = ReproRandom(12)
        f1 = a1.fork()
        f2 = a2.fork()
        assert [f1.uniform() for _ in range(5)] == [
            f2.uniform() for _ in range(5)
        ]


class TestSeedDerivation:
    def test_spawn_seeds_reproducible(self):
        assert spawn_seeds(99, 5) == spawn_seeds(99, 5)

    def test_spawn_seeds_count(self):
        assert len(spawn_seeds(1, 17)) == 17
        assert spawn_seeds(1, 0) == []

    def test_spawn_seeds_distinct(self):
        seeds = spawn_seeds(2, 100)
        assert len(set(seeds)) == 100

    def test_spawn_seeds_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_seed_stream_matches_spawn(self):
        stream = seed_stream(42)
        first_three = [next(stream) for _ in range(3)]
        assert first_three == spawn_seeds(42, 3)


class TestGeometricInversion:
    """The closed-form inversion must match the definition
    P(skip = i) = (1-p)^i * p."""

    def test_tail_probability(self):
        rng = ReproRandom(77)
        p = 0.1
        n = 50_000
        draws = [rng.geometric_skip(p) for _ in range(n)]
        for i in (0, 1, 5, 10):
            expected = (1 - p) ** i * p
            observed = sum(d == i for d in draws) / n
            # 5-sigma binomial tolerance.
            sigma = math.sqrt(expected * (1 - expected) / n)
            assert abs(observed - expected) < 5 * sigma + 1e-9
