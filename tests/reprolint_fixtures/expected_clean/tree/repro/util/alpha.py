"""Half of a deliberate import cycle (resolution must not loop)."""

from __future__ import annotations

from repro.util.beta import BetaMixin


class Alpha(BetaMixin):
    def describe(self) -> str:
        return "alpha"
