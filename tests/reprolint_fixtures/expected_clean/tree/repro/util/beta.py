"""Other half of the import cycle."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.util.alpha import Alpha

__all__ = ["Alpha", "BetaMixin"]


class BetaMixin:
    def mixin_tag(self) -> str:
        return "beta"
