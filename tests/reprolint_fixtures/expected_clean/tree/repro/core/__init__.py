from repro.core.base import CleanBase

__all__ = ["CleanBase"]
