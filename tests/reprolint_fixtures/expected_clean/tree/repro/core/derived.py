"""Inherited mutators, aliased imports, and a split snapshot pair.

``CleanDerived`` reaches its base through the package re-export under
an alias, mutates the inherited backing store through a local alias
*and* a mutator-method call (both must be seen as writes), and
overrides only ``from_dict`` -- parity holds against the inherited
``to_dict``.
"""

from __future__ import annotations

from repro.core import CleanBase as Base


class CleanDerived(Base):
    SNAPSHOT_KIND = "clean-derived"

    def bulk_load(self, values: list[int]) -> None:
        counts = self._counts
        for value in values:
            counts[value] = counts.get(value, 0) + 1
        self._columnar = None

    def absorb(self, other: dict[int, int]) -> None:
        self._counts.update(other)
        self._columnar = None

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "CleanDerived":
        if payload["kind"] != "clean-derived":
            raise ValueError("wrong snapshot kind")
        sample = cls(int(payload.get("capacity", 0)))
        for value, count in dict(payload["counts"]).items():
            sample._counts[int(value)] = int(count)
        return sample
