"""Clean base class: memoized view with complete invalidation."""

from __future__ import annotations


class CleanBase:
    SNAPSHOT_KIND = "clean-base"

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._counts: dict[int, int] = {}
        self._columnar: tuple[int, ...] | None = None

    def columnar_view(self) -> tuple[int, ...]:
        if self._columnar is None:
            self._columnar = tuple(sorted(self._counts))
        return self._columnar

    def insert(self, value: int) -> None:
        self._counts[value] = self._counts.get(value, 0) + 1
        self._columnar = None

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.SNAPSHOT_KIND, "counts": dict(self._counts)}

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "CleanBase":
        if payload["kind"] != cls.SNAPSHOT_KIND:
            raise ValueError("wrong snapshot kind")
        sample = cls(int(payload.get("capacity", 0)))
        for value, count in dict(payload["counts"]).items():
            sample._counts[int(value)] = int(count)
        return sample
