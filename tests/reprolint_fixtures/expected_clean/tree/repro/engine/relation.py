"""Epoch discipline done right: every mutator bumps."""

from __future__ import annotations


class CleanRelation:
    def __init__(self, name: str) -> None:
        self.name = name
        self._rows: dict[tuple[int, ...], int] = {}
        self._epoch = 0

    def insert(self, row: tuple[int, ...]) -> None:
        self._rows[row] = self._rows.get(row, 0) + 1
        self._epoch += 1

    def insert_batch(self, rows: list[tuple[int, ...]]) -> None:
        for row in rows:
            self._rows[row] = self._rows.get(row, 0) + 1
        self._epoch += 1

    def size(self) -> int:
        return sum(self._rows.values())
