"""Conforming metric exports: documented, canonical, kind-stable."""

from __future__ import annotations

from typing import Any


def export(registry: Any, depth: int) -> None:
    registry.counter("repro_clean_events_total", "Fixture events").inc()
    registry.gauge("repro_clean_depth", "Fixture depth").set(float(depth))
