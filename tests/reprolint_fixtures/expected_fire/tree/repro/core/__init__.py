from repro.core.base import BaseSample

__all__ = ["BaseSample"]
