"""Deliberate RL013/RL015 violations on top of the clean base."""

from __future__ import annotations

from repro.core import BaseSample


class EagerSample(BaseSample):
    # Same tag as BaseSample: snapshot routing is ambiguous (RL015).
    SNAPSHOT_KIND = "fixture-sample"

    def bulk_load(self, values: list[int]) -> None:
        # Writes the columnar backing store without resetting the
        # memoized view (RL013).
        for value in values:
            self._counts[value] = self._counts.get(value, 0) + 1

    def to_dict(self) -> dict[str, object]:
        # "phantom" is never read by the inherited from_dict, and
        # `_watermark` is assigned nowhere in the hierarchy (RL015).
        return {
            "kind": self.SNAPSHOT_KIND,
            "counts": dict(self._counts),
            "phantom": self._watermark,
        }
