"""Deliberate RL014 violations: every way a metric name can go wrong."""

from __future__ import annotations

from typing import Any


def export(registry: Any, outcome: str) -> None:
    # f-string name: the registry cannot be audited statically.
    registry.counter(
        f"repro_fixture_{outcome}_total",
        "Fixture outcomes",
    ).inc()
    # Not repro_-prefixed snake_case.
    registry.counter("FixtureEvents", "Misnamed").inc()
    # Same name as two different metric kinds.
    registry.gauge("repro_fixture_conflicted_total", "As a gauge").set(1.0)
    registry.counter("repro_fixture_conflicted_total", "As a counter").inc()
    # Well-formed but absent from docs/observability.md.
    registry.counter(
        "repro_fixture_undocumented_total", "Doc drift"
    ).inc()
    # The one fully conforming series.
    registry.counter(
        "repro_fixture_documented_total", "Documented"
    ).inc()
