"""An epoch-carrying relation with one mutator that forgets to bump."""

from __future__ import annotations


class FixtureRelation:
    def __init__(self, name: str) -> None:
        self.name = name
        self._rows: dict[tuple[int, ...], int] = {}
        self._epoch = 0

    def insert(self, row: tuple[int, ...]) -> None:
        self._rows[row] = self._rows.get(row, 0) + 1
        self._epoch += 1

    def sneaky_insert(self, row: tuple[int, ...]) -> None:
        # Mutates epoch-guarded state without bumping (RL013).
        self._rows[row] = self._rows.get(row, 0) + 1

    def size(self) -> int:
        return sum(self._rows.values())
