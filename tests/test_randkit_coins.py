"""Unit tests for instrumented coins and skip counters."""

from __future__ import annotations

import pytest

from repro.randkit.coins import (
    Coin,
    CostCounters,
    EvictionSkipper,
    GeometricSkipper,
)
from repro.randkit.rng import ReproRandom


class TestCostCounters:
    def test_defaults_zero(self):
        counters = CostCounters()
        assert counters.flips == 0
        assert counters.lookups == 0
        assert counters.inserts == 0
        assert counters.disk_accesses == 0

    def test_rates_with_zero_inserts(self):
        counters = CostCounters()
        assert counters.flips_per_insert() == 0.0
        assert counters.lookups_per_insert() == 0.0

    def test_rates(self):
        counters = CostCounters(flips=30, lookups=10, inserts=100)
        assert counters.flips_per_insert() == pytest.approx(0.3)
        assert counters.lookups_per_insert() == pytest.approx(0.1)

    def test_snapshot_is_independent(self):
        counters = CostCounters(flips=1)
        snap = counters.snapshot()
        counters.flips = 99
        assert snap.flips == 1

    def test_reset(self):
        counters = CostCounters(flips=5, lookups=3, inserts=9, deletes=2)
        counters.reset()
        assert counters == CostCounters()

    def test_subtraction(self):
        a = CostCounters(flips=10, lookups=5, inserts=20)
        b = CostCounters(flips=4, lookups=2, inserts=8)
        delta = a - b
        assert delta.flips == 6
        assert delta.lookups == 3
        assert delta.inserts == 12


class TestCoin:
    def test_flip_counts(self):
        counters = CostCounters()
        coin = Coin(ReproRandom(1), counters)
        for _ in range(50):
            coin.flip(0.5)
        assert counters.flips == 50

    def test_flip_bias(self):
        coin = Coin(ReproRandom(2), CostCounters())
        heads = sum(coin.flip(0.8) for _ in range(10_000))
        assert 0.77 < heads / 10_000 < 0.83


class TestGeometricSkipper:
    def test_threshold_one_admits_everything_without_flips(self):
        counters = CostCounters()
        skipper = GeometricSkipper(ReproRandom(1), counters, 1.0)
        assert all(skipper.offer() for _ in range(100))
        assert counters.flips == 0

    def test_rejects_threshold_below_one(self):
        with pytest.raises(ValueError):
            GeometricSkipper(ReproRandom(1), CostCounters(), 0.5)

    def test_admission_rate_matches_threshold(self):
        counters = CostCounters()
        skipper = GeometricSkipper(ReproRandom(2), counters, 4.0)
        admitted = sum(skipper.offer() for _ in range(40_000))
        assert 0.23 < admitted / 40_000 < 0.27

    def test_one_flip_per_admission(self):
        counters = CostCounters()
        skipper = GeometricSkipper(ReproRandom(3), counters, 10.0)
        admitted = sum(skipper.offer() for _ in range(10_000))
        # One initial draw plus one draw per admission.
        assert counters.flips == admitted + 1

    def test_raise_threshold_rejects_lowering(self):
        skipper = GeometricSkipper(ReproRandom(4), CostCounters(), 5.0)
        with pytest.raises(ValueError):
            skipper.raise_threshold(2.0)

    def test_raise_threshold_noop_when_equal(self):
        counters = CostCounters()
        skipper = GeometricSkipper(ReproRandom(5), counters, 5.0)
        flips_before = counters.flips
        skipper.raise_threshold(5.0)
        assert counters.flips == flips_before

    def test_raise_threshold_changes_rate(self):
        counters = CostCounters()
        skipper = GeometricSkipper(ReproRandom(6), counters, 2.0)
        skipper.raise_threshold(20.0)
        admitted = sum(skipper.offer() for _ in range(40_000))
        assert 0.04 < admitted / 40_000 < 0.06

    def test_next_admission_within_matches_offer_semantics(self):
        """Bulk jumping must admit the same stream positions as
        element-by-element offers under the same random stream."""
        threshold = 7.0
        sequential = GeometricSkipper(
            ReproRandom(7), CostCounters(), threshold
        )
        bulk = GeometricSkipper(ReproRandom(7), CostCounters(), threshold)
        n = 5000
        admitted_sequential = [
            position for position in range(n) if sequential.offer()
        ]
        admitted_bulk = []
        position = 0
        while position < n:
            offset = bulk.next_admission_within(n - position)
            if offset is None:
                break
            position += offset
            admitted_bulk.append(position)
            position += 1
        assert admitted_sequential == admitted_bulk

    def test_next_admission_within_empty_block(self):
        skipper = GeometricSkipper(ReproRandom(8), CostCounters(), 3.0)
        assert skipper.next_admission_within(0) is None

    def test_next_admission_threshold_one(self):
        skipper = GeometricSkipper(ReproRandom(9), CostCounters(), 1.0)
        assert skipper.next_admission_within(10) == 0


class TestEvictionSkipper:
    def test_zero_probability_evicts_nothing_without_flips(self):
        counters = CostCounters()
        sweeper = EvictionSkipper(ReproRandom(1), counters, 0.0)
        assert sweeper.evictions_within(1000) == 0
        assert counters.flips == 0

    def test_probability_one_evicts_everything(self):
        sweeper = EvictionSkipper(ReproRandom(2), CostCounters(), 1.0)
        assert sweeper.evictions_within(57) == 57

    def test_rejects_probability_out_of_range(self):
        with pytest.raises(ValueError):
            EvictionSkipper(ReproRandom(3), CostCounters(), 1.5)
        with pytest.raises(ValueError):
            EvictionSkipper(ReproRandom(3), CostCounters(), -0.1)

    def test_rejects_negative_run(self):
        sweeper = EvictionSkipper(ReproRandom(4), CostCounters(), 0.5)
        with pytest.raises(ValueError):
            sweeper.evictions_within(-1)

    def test_eviction_rate(self):
        sweeper = EvictionSkipper(ReproRandom(5), CostCounters(), 0.1)
        total = sum(sweeper.evictions_within(100) for _ in range(400))
        assert 0.08 < total / 40_000 < 0.12

    def test_flip_count_tracks_evictions(self):
        counters = CostCounters()
        sweeper = EvictionSkipper(ReproRandom(6), counters, 0.09)
        evicted = sweeper.evictions_within(20_000)
        # One flip per eviction plus the initial draw.
        assert counters.flips == evicted + 1

    def test_split_runs_equal_single_run(self):
        """Splitting a sweep into runs must not change the total
        distribution (same seed, same totals)."""
        single = EvictionSkipper(ReproRandom(7), CostCounters(), 0.2)
        split = EvictionSkipper(ReproRandom(7), CostCounters(), 0.2)
        total_single = single.evictions_within(1000)
        total_split = sum(split.evictions_within(100) for _ in range(10))
        assert total_single == total_split

    def test_evictions_never_exceed_run(self):
        sweeper = EvictionSkipper(ReproRandom(8), CostCounters(), 0.9)
        for _ in range(200):
            assert sweeper.evictions_within(3) <= 3
