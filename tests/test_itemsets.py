"""Unit tests for k-itemset hot lists and association rules."""

from __future__ import annotations

from collections import Counter
from itertools import combinations

import pytest

from repro.itemsets.encoding import decode_itemset, encode_itemset
from repro.itemsets.hotlist import ItemsetHotList
from repro.itemsets.rules import derive_rules
from repro.itemsets.transactions import BasketGenerator


class TestEncoding:
    def test_roundtrip(self):
        for itemset in [(1,), (1, 2), (5, 9, 1000), (1, 2, 3, 4, 5)]:
            assert decode_itemset(encode_itemset(itemset)) == itemset

    def test_sizes_never_collide(self):
        assert encode_itemset((1, 2)) != encode_itemset((1, 2, 3))
        # A pair can't alias a singleton with a big id.
        pairs = {encode_itemset(p) for p in combinations(range(1, 20), 2)}
        singles = {encode_itemset((i,)) for i in range(1, 400)}
        assert not pairs & singles

    def test_distinct_itemsets_distinct_codes(self):
        codes = {
            encode_itemset(p) for p in combinations(range(1, 30), 3)
        }
        assert len(codes) == len(list(combinations(range(1, 30), 3)))

    def test_validation(self):
        with pytest.raises(ValueError):
            encode_itemset(())
        with pytest.raises(ValueError):
            encode_itemset((2, 1))  # not increasing
        with pytest.raises(ValueError):
            encode_itemset((1, 1))  # duplicate
        with pytest.raises(ValueError):
            encode_itemset((0,))  # out of range
        with pytest.raises(ValueError):
            decode_itemset(0)


class TestBasketGenerator:
    def test_baskets_sorted_distinct(self):
        generator = BasketGenerator(100, seed=1)
        for basket in generator.baskets(200):
            assert list(basket) == sorted(set(basket))

    def test_reproducible(self):
        a = list(BasketGenerator(100, seed=2).baskets(50))
        b = list(BasketGenerator(100, seed=2).baskets(50))
        assert a == b

    def test_planted_itemset_support(self):
        generator = BasketGenerator(
            200, planted=[((5, 6), 0.2)], seed=3
        )
        hits = sum(
            {5, 6} <= set(basket) for basket in generator.baskets(10_000)
        )
        assert hits / 10_000 == pytest.approx(0.2, abs=0.04)

    def test_expected_support_lookup(self):
        generator = BasketGenerator(
            100, planted=[((3, 9), 0.1)], seed=4
        )
        assert generator.expected_support((9, 3)) == 0.1
        assert generator.expected_support((1, 2)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BasketGenerator(0)
        with pytest.raises(ValueError):
            BasketGenerator(10, planted=[((1, 2), 1.5)])
        with pytest.raises(ValueError):
            BasketGenerator(10, planted=[((1, 1), 0.1)])
        with pytest.raises(ValueError):
            BasketGenerator(10, planted=[((99,), 0.1)])
        with pytest.raises(ValueError):
            BasketGenerator(10, basket_size_mean=0.5)


class TestItemsetHotList:
    def test_exact_while_small(self):
        """With a roomy footprint the synopsis counts pairs exactly."""
        baskets = [(1, 2, 3), (1, 2), (2, 3), (1, 2, 3)]
        hotlist = ItemsetHotList(2, 1000, seed=1)
        hotlist.observe_many(baskets)
        truth = Counter()
        for basket in baskets:
            truth.update(combinations(basket, 2))
        for pair, count in truth.items():
            assert hotlist.estimated_count(pair) == count

    def test_short_baskets_skipped(self):
        hotlist = ItemsetHotList(3, 100, seed=2)
        hotlist.observe((1, 2))  # too small for triples
        assert hotlist.itemsets_observed == 0
        assert hotlist.baskets_observed == 1

    def test_planted_pairs_surface(self):
        generator = BasketGenerator(
            500,
            planted=[((10, 20), 0.15), ((30, 40), 0.10)],
            seed=3,
        )
        hotlist = ItemsetHotList(2, 400, seed=4)
        hotlist.observe_many(generator.baskets(15_000))
        top = [itemset for itemset, _ in hotlist.report_itemsets(5)]
        assert (10, 20) in top
        assert (30, 40) in top

    def test_support_estimate(self):
        generator = BasketGenerator(
            300, planted=[((7, 8), 0.25)], seed=5
        )
        hotlist = ItemsetHotList(2, 500, seed=6)
        hotlist.observe_many(generator.baskets(10_000))
        # Planted support is a lower bound (background co-occurrence
        # adds a little).
        assert hotlist.support((7, 8)) == pytest.approx(0.25, abs=0.06)

    def test_footprint_bounded(self):
        generator = BasketGenerator(2000, skew=0.3, seed=7)
        hotlist = ItemsetHotList(2, 100, seed=8)
        hotlist.observe_many(generator.baskets(5_000))
        assert hotlist.footprint <= 100
        hotlist.sample.check_invariants()

    def test_basket_truncation_guard(self):
        hotlist = ItemsetHotList(2, 100, max_basket_items=5, seed=9)
        hotlist.observe(tuple(range(1, 101)))
        # C(5, 2) = 10 itemsets, not C(100, 2).
        assert hotlist.itemsets_observed == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ItemsetHotList(0, 100)
        with pytest.raises(ValueError):
            ItemsetHotList(3, 100, max_basket_items=2)
        with pytest.raises(ValueError):
            ItemsetHotList(2, 100, seed=1).report(0)


class TestAssociationRules:
    @pytest.fixture(scope="class")
    def hotlists(self):
        generator = BasketGenerator(
            400,
            planted=[((10, 20), 0.2), ((10, 30), 0.05)],
            seed=10,
        )
        pairs = ItemsetHotList(2, 600, seed=11)
        items = ItemsetHotList(1, 600, seed=12)
        for basket in generator.baskets(20_000):
            pairs.observe(basket)
            items.observe(basket)
        return pairs, items

    def test_planted_rule_found(self, hotlists):
        pairs, items = hotlists
        rules = derive_rules(
            pairs, items, min_support=0.1, min_confidence=0.2
        )
        endpoints = {
            (rule.antecedent, rule.consequent) for rule in rules
        }
        assert ((20,), (10,)) in endpoints

    def test_confidence_in_unit_interval(self, hotlists):
        pairs, items = hotlists
        for rule in derive_rules(
            pairs, items, min_support=0.0, min_confidence=0.0
        ):
            assert 0.0 <= rule.confidence <= 1.0
            assert rule.support >= 0.0

    def test_confidence_close_to_truth(self, hotlists):
        pairs, items = hotlists
        rules = derive_rules(
            pairs, items, min_support=0.1, min_confidence=0.2
        )
        rule = next(
            r
            for r in rules
            if r.antecedent == (20,) and r.consequent == (10,)
        )
        # Item 20 essentially only appears via the planted pair, so
        # confidence of {20} -> {10} should be high.
        assert rule.confidence > 0.7

    def test_thresholds_filter(self, hotlists):
        pairs, items = hotlists
        strict = derive_rules(
            pairs, items, min_support=0.5, min_confidence=0.99
        )
        assert strict == []

    def test_validation(self, hotlists):
        pairs, items = hotlists
        with pytest.raises(ValueError):
            derive_rules(items, items)  # size-1 itemsets
        with pytest.raises(ValueError):
            derive_rules(pairs, pairs)  # antecedent size mismatch

    def test_empty_stream(self):
        pairs = ItemsetHotList(2, 100, seed=13)
        items = ItemsetHotList(1, 100, seed=14)
        assert derive_rules(pairs, items) == []

    def test_rule_str(self, hotlists):
        pairs, items = hotlists
        rules = derive_rules(
            pairs, items, min_support=0.05, min_confidence=0.1
        )
        assert "->" in str(rules[0])
