"""Tests for answer policies and engine-level join-size queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConciseSample
from repro.engine import (
    AnswerPolicy,
    ApproximateAnswerEngine,
    CountQuery,
    DataWarehouse,
    JoinSizeQuery,
    answer_with_policy,
)
from repro.engine.engine import NoSynopsisError
from repro.estimators.selectivity import Predicate
from repro.hotlist import CountingHotList
from repro.stats.frequency import FrequencyTable
from repro.streams import zipf_stream
from repro.synopses import FlajoletMartinSketch


def _join_setup(with_distinct=True, with_sample=False):
    warehouse = DataWarehouse()
    warehouse.create_relation("left", ["key"])
    warehouse.create_relation("right", ["key"])
    engine = ApproximateAnswerEngine(warehouse)
    left_stream = zipf_stream(40_000, 2_000, 1.4, seed=1)
    right_stream = zipf_stream(50_000, 2_000, 1.4, seed=2)
    for index, (name, stream) in enumerate(
        [("left", left_stream), ("right", right_stream)]
    ):
        engine.register_hotlist(
            name, "key", CountingHotList(600, seed=10 + index)
        )
        if with_distinct:
            engine.register_distinct(
                name, "key", FlajoletMartinSketch(256, seed=20 + index)
            )
        if with_sample:
            engine.register_sample(
                name, "key", ConciseSample(600, seed=30 + index)
            )
        warehouse.load(name, ((int(v),) for v in stream))
    return warehouse, engine, left_stream, right_stream


def _exact_join(left, right) -> float:
    right_table = FrequencyTable(right)
    return float(
        sum(
            count * right_table.count(value)
            for value, count in FrequencyTable(left).items()
        )
    )


class TestJoinSizeQuery:
    def test_approximate_join_accuracy(self):
        _, engine, left_stream, right_stream = _join_setup()
        response = engine.answer(
            JoinSizeQuery("left", "key", "right", "key")
        )
        truth = _exact_join(left_stream, right_stream)
        assert not response.is_exact
        assert response.method == "hotlist-join"
        assert response.answer == pytest.approx(truth, rel=0.3)

    def test_exact_join(self):
        warehouse, engine, left_stream, right_stream = _join_setup()
        response = engine.answer(
            JoinSizeQuery("left", "key", "right", "key"), exact=True
        )
        assert response.is_exact
        assert response.answer == _exact_join(left_stream, right_stream)
        assert response.disk_accesses == len(left_stream) + len(
            right_stream
        )

    def test_distinct_fallback_to_sample(self):
        _, engine, left_stream, right_stream = _join_setup(
            with_distinct=False, with_sample=True
        )
        response = engine.answer(
            JoinSizeQuery("left", "key", "right", "key")
        )
        truth = _exact_join(left_stream, right_stream)
        assert response.answer == pytest.approx(truth, rel=0.35)

    def test_distinct_fallback_to_hotlist_support(self):
        _, engine, left_stream, right_stream = _join_setup(
            with_distinct=False, with_sample=False
        )
        response = engine.answer(
            JoinSizeQuery("left", "key", "right", "key")
        )
        assert response.answer > 0

    def test_missing_hotlist_raises(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("left", ["key"])
        warehouse.create_relation("right", ["key"])
        engine = ApproximateAnswerEngine(warehouse)
        with pytest.raises(NoSynopsisError):
            engine.answer(JoinSizeQuery("left", "key", "right", "key"))

    def test_cost_estimate_covers_both_scans(self):
        _, engine, left_stream, right_stream = _join_setup()
        response = engine.answer(
            JoinSizeQuery("left", "key", "right", "key")
        )
        assert response.exact_cost_estimate == len(left_stream) + len(
            right_stream
        )


class TestAnswerPolicy:
    def _engine(self, footprint=2_000):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        engine = ApproximateAnswerEngine(warehouse)
        engine.register_sample(
            "r", "a", ConciseSample(footprint, seed=1)
        )
        warehouse.load(
            "r",
            ((int(v),) for v in zipf_stream(30_000, 500, 1.0, seed=2)),
        )
        return engine

    def test_tight_interval_accepted(self):
        engine = self._engine()
        decision = answer_with_policy(
            engine,
            CountQuery("r", "a", Predicate(high=250)),
            AnswerPolicy(max_relative_width=0.5),
        )
        assert not decision.escalated
        assert not decision.response.is_exact

    def test_wide_interval_escalates(self):
        engine = self._engine(footprint=16)
        decision = answer_with_policy(
            engine,
            CountQuery("r", "a", Predicate(equals=400)),  # rare value
            AnswerPolicy(max_relative_width=0.01),
        )
        assert decision.escalated
        assert decision.response.is_exact

    def test_cost_budget_blocks_escalation(self):
        engine = self._engine(footprint=16)
        decision = answer_with_policy(
            engine,
            CountQuery("r", "a", Predicate(equals=400)),
            AnswerPolicy(max_relative_width=0.01, max_exact_cost=10),
        )
        assert not decision.escalated
        assert not decision.response.is_exact
        assert "budget" in decision.reason

    def test_intervalless_answers_accepted(self):
        _, engine, *_ = _join_setup()
        decision = answer_with_policy(
            engine,
            JoinSizeQuery("left", "key", "right", "key"),
            AnswerPolicy(max_relative_width=0.0),
        )
        assert not decision.escalated

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AnswerPolicy(max_relative_width=-0.1)
        with pytest.raises(ValueError):
            AnswerPolicy(max_exact_cost=-1)
