"""The scatter/gather coordinator over live worker processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterError, ShardedWarehouse
from repro.core import ConciseSample, CountingSample
from repro.engine import (
    AverageQuery,
    CountQuery,
    DistinctCountQuery,
    FrequencyQuery,
    HotListQuery,
    JoinSizeQuery,
    SelectivityQuery,
    SumQuery,
)
from repro.estimators import Predicate
from repro.streams import zipf_stream

SHARDS = 2
ITEMS = zipf_stream(12_000, 300, 1.25, seed=77)
QTYS = (ITEMS % 7 + 1).astype(np.int64)
HOT_ITEM = int(np.bincount(ITEMS).argmax())
TRUE_HOT_FREQ = int(np.count_nonzero(ITEMS == HOT_ITEM))


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cluster-coord")
    with ShardedWarehouse(
        SHARDS, str(directory), seed=1234, sync_every=64
    ) as warehouse:
        warehouse.create_relation("orders", ["item", "qty"])
        warehouse.register_synopsis(
            "orders", "item", footprint_bound=600, hotlist=True
        )
        warehouse.register_synopsis("orders", "qty", footprint_bound=600)
        warehouse.load_batch("orders", {"item": ITEMS, "qty": QTYS})
        warehouse.create_relation("events", ["kind"])
        warehouse.register_synopsis(
            "events", "kind", kind="counting-sample", footprint_bound=400
        )
        warehouse.load_batch("events", {"kind": ITEMS[:6_000]})
        yield warehouse


class TestAnswering:
    def test_routed_frequency_has_full_coverage(self, cluster):
        answer = cluster.answer(
            FrequencyQuery("orders", "item", value=HOT_ITEM)
        )
        assert answer.shards_responding == SHARDS
        assert answer.shards_total == SHARDS
        assert not answer.degraded
        assert float(answer.answer) == pytest.approx(
            TRUE_HOT_FREQ, rel=0.15
        )

    def test_count_without_predicate_covers_every_row(self, cluster):
        answer = cluster.answer(CountQuery("orders", "item"))
        assert float(answer.answer) == pytest.approx(len(ITEMS))
        assert not answer.degraded

    def test_sum_average_selectivity_near_truth(self, cluster):
        total = cluster.answer(SumQuery("orders", "qty"))
        assert float(total.answer) == pytest.approx(
            float(QTYS.sum()), rel=0.15
        )
        mean = cluster.answer(AverageQuery("orders", "qty"))
        assert mean.response.method == "cluster:average"
        assert float(mean.answer) == pytest.approx(
            float(QTYS.mean()), rel=0.15
        )
        fraction = cluster.answer(
            SelectivityQuery("orders", "qty", Predicate(low=1, high=3))
        )
        assert fraction.response.method == "cluster:selectivity"
        true_fraction = float(np.mean((QTYS >= 1) & (QTYS <= 3)))
        assert float(fraction.answer) == pytest.approx(
            true_fraction, rel=0.2
        )

    def test_hot_list_unions_disjoint_partitions(self, cluster):
        answer = cluster.answer(HotListQuery("orders", "item", k=5))
        entries = answer.answer.entries
        assert entries, "hot list came back empty"
        assert entries[0].value == HOT_ITEM
        counts = [entry.estimated_count for entry in entries]
        assert counts == sorted(counts, reverse=True)

    def test_answer_batch_matches_individual_answers(self, cluster):
        values = sorted(set(ITEMS[:40].tolist()))[:6]
        queries = [
            FrequencyQuery("orders", "item", value=value)
            for value in values
        ]
        queries.append(CountQuery("orders", "item"))
        batched = cluster.answer_batch(queries)
        assert len(batched) == len(queries)
        for query, answer in zip(queries, batched):
            single = cluster.answer(query)
            assert float(answer.answer) == pytest.approx(
                float(single.answer)
            )
            assert not answer.degraded

    def test_join_size_is_rejected(self, cluster):
        with pytest.raises(ClusterError, match="join-size"):
            cluster.answer(
                JoinSizeQuery("orders", "item", "events", "kind")
            )

    def test_distinct_count_needs_the_partition_key(self, cluster):
        # qty is not the orders partition key: per-shard distinct sets
        # overlap, so shard answers cannot be combined honestly.
        with pytest.raises(ClusterError):
            cluster.answer(DistinctCountQuery("orders", "qty"))


class TestMergedSynopses:
    def test_concise_merge_invariants(self, cluster):
        merged = cluster.merged_synopsis("orders", "item")
        assert isinstance(merged, ConciseSample)
        merged.check_invariants()
        assert merged.total_inserted == len(ITEMS)
        # The default bound is the sum of the shard bounds.
        assert merged.footprint_bound == SHARDS * 600

    def test_counting_merge_invariants(self, cluster):
        merged = cluster.merged_synopsis("events", "kind")
        assert isinstance(merged, CountingSample)
        merged.check_invariants()
        assert merged.total_inserted == 6_000

    def test_explicit_bound_is_respected(self, cluster):
        merged = cluster.merged_synopsis(
            "orders", "item", footprint_bound=300
        )
        merged.check_invariants()
        assert merged.footprint <= 300


class TestIntrospection:
    def test_stats_rows_sum_to_loaded(self, cluster):
        stats = cluster.stats()
        assert sorted(stats) == list(range(SHARDS))
        assert (
            sum(entry["rows"]["orders"] for entry in stats.values())
            == len(ITEMS)
        )

    def test_shard_states_and_hello(self, cluster):
        assert cluster.shard_states() == ["up"] * SHARDS
        assert cluster.shards == SHARDS
        assert cluster.shards_up == SHARDS
        for index in range(SHARDS):
            hello = cluster.hello_of(index)
            assert hello is not None
            assert hello["shard"] == index

    def test_unknown_relation_load_rejected(self, cluster):
        with pytest.raises(KeyError):
            cluster.load_batch("nope", {"v": ITEMS})


class TestDeterminism:
    def test_same_seed_reproduces_the_merged_synopsis(self, tmp_path):
        """The whole cluster is a pure function of its master seed:
        two fleets with equal seeds over equal streams merge to
        byte-identical synopses."""
        states = []
        for run in range(2):
            with ShardedWarehouse(
                SHARDS, str(tmp_path / f"run{run}"), seed=99, sync_every=64
            ) as warehouse:
                warehouse.create_relation("s", ["v"])
                warehouse.register_synopsis("s", "v", footprint_bound=200)
                warehouse.load_batch("s", {"v": ITEMS[:4_000]})
                states.append(warehouse.merged_synopsis("s", "v").to_dict())
        assert states[0] == states[1]
