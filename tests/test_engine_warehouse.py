"""Unit tests for the data warehouse and its load-stream observers."""

from __future__ import annotations

import pytest

from repro.engine.relation import RelationError
from repro.engine.warehouse import DataWarehouse


class TestSchema:
    def test_create_and_lookup(self):
        warehouse = DataWarehouse()
        relation = warehouse.create_relation("r", ["a"])
        assert warehouse.relation("r") is relation

    def test_duplicate_relation_rejected(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        with pytest.raises(RelationError):
            warehouse.create_relation("r", ["a"])

    def test_unknown_relation(self):
        with pytest.raises(RelationError):
            DataWarehouse().relation("zzz")


class TestLoadsAndObservers:
    def test_insert_updates_relation_and_counters(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        warehouse.insert("r", {"a": 5})
        assert warehouse.relation("r").size == 1
        assert warehouse.counters.inserts == 1

    def test_observers_see_inserts_and_deletes(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a", "b"])
        events = []
        warehouse.add_observer(
            lambda name, row, is_insert: events.append(
                (name, row, is_insert)
            )
        )
        warehouse.insert("r", {"a": 1, "b": 2})
        warehouse.delete("r", {"a": 1, "b": 2})
        assert events == [("r", (1, 2), True), ("r", (1, 2), False)]

    def test_load_bulk(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        loaded = warehouse.load("r", [{"a": v} for v in range(10)])
        assert loaded == 10
        assert warehouse.relation("r").size == 10

    def test_delete_absent_row_raises_before_notifying(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        events = []
        warehouse.add_observer(lambda *args: events.append(args))
        with pytest.raises(RelationError):
            warehouse.delete("r", {"a": 1})
        assert events == []


class TestExactCosts:
    def test_scan_cost_is_relation_size(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        warehouse.load("r", [{"a": v} for v in range(25)])
        assert warehouse.scan_cost("r") == 25

    def test_exact_column_charges_disk(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        warehouse.load("r", [{"a": v} for v in range(25)])
        column = warehouse.exact_column("r", "a")
        assert sorted(column.tolist()) == list(range(25))
        assert warehouse.counters.disk_accesses == 25
