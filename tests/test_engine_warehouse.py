"""Unit tests for the data warehouse and its load-stream observers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.relation import RelationError
from repro.engine.warehouse import DataWarehouse


class TestSchema:
    def test_create_and_lookup(self):
        warehouse = DataWarehouse()
        relation = warehouse.create_relation("r", ["a"])
        assert warehouse.relation("r") is relation

    def test_duplicate_relation_rejected(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        with pytest.raises(RelationError):
            warehouse.create_relation("r", ["a"])

    def test_unknown_relation(self):
        with pytest.raises(RelationError):
            DataWarehouse().relation("zzz")


class TestLoadsAndObservers:
    def test_insert_updates_relation_and_counters(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        warehouse.insert("r", {"a": 5})
        assert warehouse.relation("r").size == 1
        assert warehouse.counters.inserts == 1

    def test_observers_see_inserts_and_deletes(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a", "b"])
        events = []
        warehouse.add_observer(
            lambda name, row, is_insert: events.append(
                (name, row, is_insert)
            )
        )
        warehouse.insert("r", {"a": 1, "b": 2})
        warehouse.delete("r", {"a": 1, "b": 2})
        assert events == [("r", (1, 2), True), ("r", (1, 2), False)]

    def test_load_bulk(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        loaded = warehouse.load("r", [{"a": v} for v in range(10)])
        assert loaded == 10
        assert warehouse.relation("r").size == 10

    def test_delete_absent_row_raises_before_notifying(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        events = []
        warehouse.add_observer(lambda *args: events.append(args))
        with pytest.raises(RelationError):
            warehouse.delete("r", {"a": 1})
        assert events == []

    def test_remove_observer(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        events = []

        def observer(name, row, is_insert):
            events.append((name, row, is_insert))

        warehouse.add_observer(observer)
        warehouse.insert("r", {"a": 1})
        warehouse.remove_observer(observer)
        warehouse.insert("r", {"a": 2})
        assert len(events) == 1


class _BoomError(RuntimeError):
    pass


def _raising_observer(relation_name, row, is_insert):
    raise _BoomError("observer blew up")


class TestObserverErrorIsolation:
    """A raising observer must not corrupt the load or detach peers."""

    def _warehouse(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a", "b"])
        events = []
        warehouse.add_observer(_raising_observer)
        warehouse.add_observer(
            lambda name, row, is_insert: events.append(
                (name, row, is_insert)
            )
        )
        return warehouse, events

    def test_insert_completes_despite_raising_observer(self):
        warehouse, events = self._warehouse()
        with pytest.raises(_BoomError):
            warehouse.insert("r", {"a": 1, "b": 2})
        # The relation mutation completed: the row is really there.
        assert warehouse.relation("r").size == 1
        # The later observer still saw the event.
        assert events == [("r", (1, 2), True)]

    def test_delete_notifies_all_despite_raising_observer(self):
        warehouse, events = self._warehouse()
        with pytest.raises(_BoomError):
            warehouse.insert("r", {"a": 1, "b": 2})
        with pytest.raises(_BoomError):
            warehouse.delete("r", {"a": 1, "b": 2})
        assert warehouse.relation("r").size == 0
        assert events[-1] == ("r", (1, 2), False)

    def test_load_batch_completes_despite_raising_observer(self):
        warehouse, events = self._warehouse()
        with pytest.raises(_BoomError):
            warehouse.load_batch(
                "r",
                {
                    "a": np.array([1, 2], dtype=np.int64),
                    "b": np.array([3, 4], dtype=np.int64),
                },
            )
        assert warehouse.relation("r").size == 2
        assert events == [("r", (1, 3), True), ("r", (2, 4), True)]

    def test_observer_list_intact_after_error(self):
        warehouse, events = self._warehouse()
        with pytest.raises(_BoomError):
            warehouse.insert("r", {"a": 1, "b": 2})
        # Neither observer was detached: the next insert raises again
        # AND the well-behaved observer keeps seeing events.
        with pytest.raises(_BoomError):
            warehouse.insert("r", {"a": 5, "b": 6})
        assert events == [("r", (1, 2), True), ("r", (5, 6), True)]

    def test_first_of_several_errors_is_raised(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])

        def second_raiser(name, row, is_insert):
            raise ValueError("later failure")

        warehouse.add_observer(_raising_observer)
        warehouse.add_observer(second_raiser)
        with pytest.raises(_BoomError):
            warehouse.insert("r", {"a": 1})


class TestExactCosts:
    def test_scan_cost_is_relation_size(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        warehouse.load("r", [{"a": v} for v in range(25)])
        assert warehouse.scan_cost("r") == 25

    def test_exact_column_charges_disk(self):
        warehouse = DataWarehouse()
        warehouse.create_relation("r", ["a"])
        warehouse.load("r", [{"a": v} for v in range(25)])
        column = warehouse.exact_column("r", "a")
        assert sorted(column.tolist()) == list(range(25))
        assert warehouse.counters.disk_accesses == 25
