"""The ``python -m repro.obs`` CLI: selftest, dump, tail."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.__main__ import main


@pytest.fixture(autouse=True)
def _restore_obs_defaults():
    yield
    obs.disable()


class TestSelftest:
    def test_selftest_exits_zero(self, capsys):
        assert main(["--selftest", "--rows", "20000"]) == 0
        assert "selftest ok" in capsys.readouterr().out

    def test_selftest_restores_defaults(self):
        main(["--selftest", "--rows", "5000"])
        from repro.obs import probe
        from repro.obs.metrics import NULL_REGISTRY, get_registry

        assert probe.PROBE is None
        assert get_registry() is NULL_REGISTRY


class TestDump:
    def test_prometheus_dump_parses(self, capsys):
        assert main(["--rows", "5000"]) == 0
        text = capsys.readouterr().out
        parsed = obs.parse_prometheus(text)
        assert "repro_synopsis_footprint_words" in parsed
        assert "repro_queries_total" in parsed

    def test_json_dump_parses(self, capsys):
        assert main(["--format", "json", "--rows", "5000"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]
        assert len(payload["spans"]) == 4

    def test_tail_renders_each_round(self, capsys):
        assert main(["--rows", "6000", "--tail", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("--- round") == 3


class TestReport:
    def test_demo_report_renders_all_sections(self, capsys):
        assert main(["report", "--rows", "2000"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("repro health report")
        assert "no cluster data" in out
        assert "unrecognized series" not in out

    def test_cluster_flag_populates_cluster_section(self, capsys):
        assert main(["report", "--rows", "2000", "--cluster"]) == 0
        out = capsys.readouterr().out
        assert "no cluster data" not in out
        assert "failovers 1" in out
        assert "restarts 1" in out

    def test_metrics_file_with_unknown_family_gets_footer(
        self, capsys, tmp_path
    ):
        snapshot = {
            "metrics": [
                {
                    "name": "repro_mystery_widgets_total",
                    "type": "counter",
                    "series": [{"labels": {}, "value": 1.0}],
                }
            ]
        }
        path = tmp_path / "snapshot.json"
        path.write_text(json.dumps(snapshot))
        assert main(["report", "--metrics", str(path)]) == 0
        out = capsys.readouterr().out
        assert "unrecognized series" in out
        assert "repro_mystery_widgets_total" in out
