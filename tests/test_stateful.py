"""Model-based (stateful) tests via hypothesis state machines.

Each machine drives a component through random operation sequences
while maintaining an exact reference model, checking the component's
observable behaviour against the model after every step.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.counting import CountingSample
from repro.engine.relation import Relation
from repro.stats.frequency import FrequencyTable

values = st.integers(min_value=1, max_value=30)


class CountingSampleMachine(RuleBasedStateMachine):
    """CountingSample vs an exact live-multiset model.

    Checked properties: counts never exceed live frequencies, the
    footprint never exceeds its bound, internal bookkeeping stays
    consistent, and absent-value deletes are no-ops.
    """

    @initialize(seed=st.integers(min_value=0, max_value=2**16))
    def setup(self, seed):
        self.sample = CountingSample(16, seed=seed)
        self.live: Counter[int] = Counter()

    @rule(value=values)
    def insert(self, value):
        self.sample.insert(value)
        self.live[value] += 1

    @rule(value=values)
    def delete_if_live(self, value):
        if self.live[value] > 0:
            self.sample.delete(value)
            self.live[value] -= 1

    @rule(value=values)
    def delete_absent_from_sample(self, value):
        """Deleting a live value that happens not to be sampled is a
        legal no-op on the sample."""
        if self.live[value] > 0 and value not in self.sample:
            before = self.sample.as_dict()
            self.sample.delete(value)
            self.live[value] -= 1
            assert self.sample.as_dict() == before

    @invariant()
    def counts_bounded_by_live(self):
        for value, count in self.sample.pairs():
            assert 0 < count <= self.live[value]

    @invariant()
    def footprint_bounded(self):
        assert self.sample.footprint <= 16
        self.sample.check_invariants()


class RelationMachine(RuleBasedStateMachine):
    """Relation vs a Counter-of-rows model."""

    @initialize()
    def setup(self):
        self.relation = Relation("r", ["a", "b"])
        self.model: Counter[tuple] = Counter()

    @rule(a=values, b=values)
    def insert(self, a, b):
        self.relation.insert((a, b))
        self.model[(a, b)] += 1

    @rule(a=values, b=values)
    def delete_if_present(self, a, b):
        if self.model[(a, b)] > 0:
            self.relation.delete((a, b))
            self.model[(a, b)] -= 1

    @invariant()
    def sizes_match(self):
        assert len(self.relation) == sum(self.model.values())

    @invariant()
    def column_matches_model(self):
        expected = Counter()
        for (a, _), count in self.model.items():
            if count:
                expected[a] += count
        assert Counter(self.relation.column("a").tolist()) == expected


class FrequencyTableMachine(RuleBasedStateMachine):
    """FrequencyTable vs collections.Counter."""

    @initialize()
    def setup(self):
        self.table = FrequencyTable()
        self.model: Counter[int] = Counter()

    @rule(value=values)
    def insert(self, value):
        self.table.insert(value)
        self.model[value] += 1

    @rule(value=values)
    def delete_if_present(self, value):
        if self.model[value] > 0:
            self.table.delete(value)
            self.model[value] -= 1

    @precondition(lambda self: sum(self.model.values()) > 0)
    @rule()
    def mode_matches(self):
        value, count = self.table.mode()
        assert count == max(self.model.values())
        assert self.model[value] == count

    @invariant()
    def state_matches(self):
        assert self.table.as_dict() == {
            v: c for v, c in self.model.items() if c > 0
        }
        assert self.table.total == sum(self.model.values())


TestCountingSampleMachine = CountingSampleMachine.TestCase
TestRelationMachine = RelationMachine.TestCase
TestFrequencyTableMachine = FrequencyTableMachine.TestCase

for machine in (
    TestCountingSampleMachine,
    TestRelationMachine,
    TestFrequencyTableMachine,
):
    machine.settings = settings(
        max_examples=60, stateful_step_count=40, deadline=None
    )
