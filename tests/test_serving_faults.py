"""Fault-injection battery for the AQP service.

The serving layer sits on the same durability stack the crash battery
already proves out (WAL + checkpoint + recovery); these tests verify
the *service-level* contract on top of it:

* a storage crash mid-request kills the connection (no reply, no
  partial ack) and a restart via :class:`RecoveryManager` reproduces
  exactly the acknowledged ingest;
* a crash during the shutdown drain leaves a cleanly recoverable
  prefix -- never corruption, never phantom rows;
* transient fsync errors under load are absorbed by the retry layer
  and are invisible to clients;
* synopses recovered after a served crash are statistically
  indistinguishable from uncrashed twins (the chi-square standard of
  ``test_recovery_statistical``).

Every fault plan is deterministic (probe-then-inject on the injector's
operation index), the server clock is a :class:`FakeClock`, and no
test sleeps.
"""

from __future__ import annotations

import asyncio
from collections import Counter
from pathlib import Path

import numpy as np
import pytest

scipy_stats = pytest.importorskip("scipy.stats")

from repro.core.counting import CountingSample
from repro.engine import ApproximateAnswerEngine, DataWarehouse
from repro.faults import (
    CRASH,
    FSYNC_CRASH,
    FSYNC_ERROR,
    Fault,
    FaultPlan,
    FaultyFilesystem,
    SimulatedCrash,
)
from repro.obs.clock import FakeClock
from repro.obs.metrics import MetricsRegistry
from repro.persist import CheckpointStore, LocalFileSystem, RecoveryManager
from repro.persist.retry import RetryPolicy
from repro.serving import AQPClient, AQPServer

RELATION = "s"
ATTRIBUTE = "v"
M = 8  # synopsis footprint bound
N = 40  # total stream values 0..N-1
BATCH = 8
STREAM_BATCHES = [
    list(range(start, start + BATCH)) for start in range(0, N, BATCH)
]
ACKED = 3  # batches acknowledged before the planned mid-ingest crash
ALPHA = 1e-4
TRIALS = 200

SCENARIO_TIMEOUT = 60.0


def run_scenario(coro):
    """``asyncio.run`` with a hard deadline: a wedged server fails the
    test instead of hanging the shard."""
    return asyncio.run(asyncio.wait_for(coro, SCENARIO_TIMEOUT))


def build_serving_stack(
    root: Path,
    filesystem,
    *,
    sample_seed: int,
    sync_every: int = 1,
    retry: RetryPolicy | None = None,
) -> tuple[AQPServer, RecoveryManager]:
    """A served warehouse with WAL durability and a bound synopsis.

    The empty checkpoint is taken up front, so recovery replays every
    batch op-record the WAL made durable -- the group-commit path the
    server's ack contract rides on.
    """
    store = CheckpointStore(
        root,
        filesystem,
        sync_every=sync_every,
        retry=retry,
        registry=MetricsRegistry(),
    )
    manager = RecoveryManager(store)
    warehouse = DataWarehouse()
    warehouse.create_relation(RELATION, [ATTRIBUTE])
    manager.attach(warehouse)
    manager.bind(RELATION, ATTRIBUTE, CountingSample(M, seed=sample_seed))
    manager.checkpoint()
    engine = ApproximateAnswerEngine(warehouse)
    server = AQPServer(
        warehouse,
        engine,
        manager=manager,
        registry=MetricsRegistry(),
        clock=FakeClock(),
        fatal_exceptions=(SimulatedCrash,),
    )
    return server, manager


async def serve_batches(
    server: AQPServer, batches: list[list[int]]
) -> tuple[int, bool]:
    """Ingest ``batches`` over the wire; returns (acked, crashed)."""
    host, port = await server.start()
    client = await AQPClient.connect(host, port)
    acked = 0
    crashed = False
    try:
        await client.hello()
        for values in batches:
            try:
                rows = await client.ingest(RELATION, {ATTRIBUTE: values})
            except ConnectionError:
                crashed = True
                break
            assert rows == len(values)
            acked += 1
    finally:
        await client.close()
    return acked, crashed


def recover(root: Path, *, seed: int):
    return RecoveryManager(CheckpointStore(root)).recover(seed=seed)


def probe_operation_marks(root: Path, *, sync_every: int = 1) -> list[int]:
    """Healthy run of the full serving workload, recording the
    injector's operation index after each ack and after shutdown.

    Returns ``[after_ack_0, ..., after_ack_4, before_shutdown]`` --
    the sweep coordinates every injected run below is planned against
    (the workload is deterministic, so the indices transfer exactly).
    """
    faulty = FaultyFilesystem(LocalFileSystem(), FaultPlan.none())
    server, _ = build_serving_stack(
        root, faulty, sample_seed=0, sync_every=sync_every
    )
    marks: list[int] = []

    async def scenario():
        host, port = await server.start()
        client = await AQPClient.connect(host, port)
        await client.hello()
        for values in STREAM_BATCHES:
            await client.ingest(RELATION, {ATTRIBUTE: values})
            marks.append(faulty.operations)
        await client.bye()
        marks.append(faulty.operations)
        await server.shutdown()

    run_scenario(scenario())
    return marks


@pytest.fixture(scope="module")
def sync_marks(tmp_path_factory):
    return probe_operation_marks(
        tmp_path_factory.mktemp("serving-probe-sync")
    )


@pytest.fixture(scope="module")
def buffered_marks(tmp_path_factory):
    return probe_operation_marks(
        tmp_path_factory.mktemp("serving-probe-buffered"),
        sync_every=1_000,
    )


class TestMidRequestCrash:
    def test_crash_kills_connection_and_recovery_matches_acks(
        self, tmp_path, sync_marks
    ):
        """A WAL crash during the fourth ingest: the client never gets
        an ack, the server dies (abort, not drain), and recovery
        reproduces exactly the three acknowledged batches."""
        crash_index = sync_marks[ACKED - 1]  # first op of batch 4
        faulty = FaultyFilesystem(
            LocalFileSystem(), FaultPlan.single(crash_index, CRASH, seed=1)
        )
        server, _ = build_serving_stack(
            tmp_path, faulty, sample_seed=1
        )

        async def run():
            address = await server.start()
            client = await AQPClient.connect(*address)
            acked = 0
            crashed = False
            try:
                await client.hello()
                for values in STREAM_BATCHES:
                    try:
                        await client.ingest(
                            RELATION, {ATTRIBUTE: values}
                        )
                    except ConnectionError:
                        crashed = True
                        break
                    acked += 1
            finally:
                await client.close()
            # The listener died with the crash: new clients are
            # refused, not hung.
            if server._server is not None:
                await server._server.wait_closed()
            with pytest.raises(OSError):
                await asyncio.open_connection(*address)
            return acked, crashed

        acked, crashed = run_scenario(run())
        assert crashed
        assert acked == ACKED
        assert isinstance(server.fatal_error, SimulatedCrash)
        assert server.fatal_error.operation_index == crash_index

        state = recover(tmp_path, seed=101)
        relation = state.warehouse.relation(RELATION)
        assert relation.size == ACKED * BATCH
        survivor = state.synopsis(RELATION, ATTRIBUTE)
        survivor.check_invariants()
        assert survivor.total_inserted == ACKED * BATCH

    def test_unacked_batch_is_never_recovered(self, tmp_path, sync_marks):
        """Sweep every operation of the crashing ingest: wherever the
        crash falls inside batch 4, recovery holds exactly the acked
        rows (the record write is atomic-or-absent under sync_every=1,
        modulo a tolerated torn tail that replays to the same rows)."""
        for crash_index in range(
            sync_marks[ACKED - 1], sync_marks[ACKED]
        ):
            root = tmp_path / f"op{crash_index}"
            faulty = FaultyFilesystem(
                LocalFileSystem(),
                FaultPlan.single(crash_index, CRASH, seed=crash_index),
            )
            server, _ = build_serving_stack(
                root, faulty, sample_seed=2
            )
            acked, crashed = run_scenario(
                serve_batches(server, STREAM_BATCHES)
            )
            state = recover(root, seed=200 + crash_index)
            recovered_rows = state.warehouse.relation(RELATION).size
            # The ack is the floor; the in-flight batch may or may not
            # have reached the log before the crash point, but nothing
            # in between and nothing beyond.
            assert recovered_rows >= acked * BATCH
            assert recovered_rows in (acked * BATCH, (acked + 1) * BATCH)
            if crashed:
                assert isinstance(server.fatal_error, SimulatedCrash)


class TestShutdownDrainCrash:
    def test_clean_drain_makes_every_ack_durable(self, tmp_path):
        """Baseline: with group commit buffering 1000 records, the
        graceful shutdown's drain is what makes the acks durable."""
        faulty = FaultyFilesystem(LocalFileSystem(), FaultPlan.none())
        server, _ = build_serving_stack(
            tmp_path, faulty, sample_seed=3, sync_every=1_000
        )

        async def scenario():
            acked, crashed = await serve_batches(server, STREAM_BATCHES)
            await server.shutdown()
            return acked, crashed

        acked, crashed = run_scenario(scenario())
        assert (acked, crashed) == (len(STREAM_BATCHES), False)
        state = recover(tmp_path, seed=301)
        assert state.warehouse.relation(RELATION).size == N
        assert state.synopsis(RELATION, ATTRIBUTE).total_inserted == N

    def test_crash_during_drain_leaves_clean_prefix(
        self, tmp_path, buffered_marks
    ):
        """An fsync crash at the drain point: shutdown dies, and
        recovery yields a whole-batch prefix of the acked stream --
        possibly short (the group-commit window), never torn garbage,
        never rows that were not acked."""
        drain_index = buffered_marks[-1]
        faulty = FaultyFilesystem(
            LocalFileSystem(),
            FaultPlan.single(drain_index, FSYNC_CRASH, seed=4),
        )
        server, _ = build_serving_stack(
            tmp_path, faulty, sample_seed=4, sync_every=1_000
        )

        async def scenario():
            acked, crashed = await serve_batches(server, STREAM_BATCHES)
            assert (acked, crashed) == (len(STREAM_BATCHES), False)
            with pytest.raises(SimulatedCrash):
                await server.shutdown()

        run_scenario(scenario())
        state = recover(tmp_path, seed=401)
        recovered_rows = state.warehouse.relation(RELATION).size
        assert recovered_rows <= N
        assert recovered_rows % BATCH == 0
        survivor = state.synopsis(RELATION, ATTRIBUTE)
        survivor.check_invariants()
        assert survivor.total_inserted == recovered_rows


class TestTransientFaults:
    def test_fsync_errors_under_load_are_invisible_to_clients(
        self, tmp_path, sync_marks
    ):
        """Three transient storage errors land mid-ingest; the retry
        layer absorbs them, every ack arrives, the server stays
        healthy, and recovery sees the full stream."""
        plan = FaultPlan(
            faults=tuple(
                Fault(index, FSYNC_ERROR)
                for index in (
                    sync_marks[0],
                    sync_marks[2],
                    sync_marks[3],
                )
            ),
            seed=5,
        )
        faulty = FaultyFilesystem(LocalFileSystem(), plan)
        server, _ = build_serving_stack(
            tmp_path,
            faulty,
            sample_seed=5,
            retry=RetryPolicy(attempts=3),
        )

        async def scenario():
            acked, crashed = await serve_batches(server, STREAM_BATCHES)
            await server.shutdown()
            return acked, crashed

        acked, crashed = run_scenario(scenario())
        assert (acked, crashed) == (len(STREAM_BATCHES), False)
        assert server.fatal_error is None
        state = recover(tmp_path, seed=501)
        assert state.warehouse.relation(RELATION).size == N


# ----------------------------------------------------------------------
# Statistical equivalence of synopses recovered after a served crash
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def served_crash_ensembles(tmp_path_factory, sync_marks):
    """TRIALS crash/recover/continue pipelines through the network
    path, next to uncrashed in-process twins.

    Each trial: serve three batches (acked), crash on the fourth,
    recover with a trial-specific seed, then continue the stream into
    the recovered synopsis.  The twin sees the same stream with no
    crash.  Counters accumulate which values each survivor holds.
    """
    root = tmp_path_factory.mktemp("serving-crash-stats")
    crash_index = sync_marks[ACKED - 1]
    recovered_counts: Counter[int] = Counter()
    twin_counts: Counter[int] = Counter()
    for trial in range(TRIALS):
        sub = root / f"t{trial}"
        faulty = FaultyFilesystem(
            LocalFileSystem(),
            FaultPlan.single(crash_index, CRASH, seed=trial),
        )
        server, _ = build_serving_stack(
            sub, faulty, sample_seed=trial
        )
        acked, crashed = run_scenario(
            serve_batches(server, STREAM_BATCHES)
        )
        assert (acked, crashed) == (ACKED, True)
        state = recover(sub, seed=50_000 + trial)
        survivor = state.synopsis(RELATION, ATTRIBUTE)
        assert survivor.total_inserted == ACKED * BATCH
        for value in range(ACKED * BATCH, N):
            survivor.insert(value)
        survivor.check_invariants()
        assert survivor.total_inserted == N
        recovered_counts.update(survivor.as_dict().keys())
        twin = CountingSample(M, seed=trial)
        for value in range(N):
            twin.insert(value)
        twin_counts.update(twin.as_dict().keys())
    return recovered_counts, twin_counts


class TestServedCrashEquivalence:
    def test_recovered_matches_uncrashed_twins(
        self, served_crash_ensembles
    ):
        """Homogeneity: synopses recovered behind the server include
        each value as often as twins that never crashed."""
        recovered, twins = served_crash_ensembles
        table = np.array(
            [
                [recovered[value] for value in range(N)],
                [twins[value] for value in range(N)],
            ]
        )
        statistic, p_value, _, _ = scipy_stats.chi2_contingency(table)
        assert p_value > ALPHA, (
            "served-crash recovered synopses diverge from uncrashed "
            f"twins (chi2={statistic:.1f})"
        )

    def test_recovered_inclusion_is_uniform(self, served_crash_ensembles):
        """No stream position is privileged by where the served crash
        fell: acked-and-replayed values and post-recovery values are
        included equally often."""
        recovered, _ = served_crash_ensembles
        observed = np.array([recovered[value] for value in range(N)])
        statistic, p_value = scipy_stats.chisquare(observed)
        assert p_value > ALPHA, (
            f"recovered inclusion not uniform (chi2={statistic:.1f})"
        )

    def test_twin_baseline_is_itself_uniform(self, served_crash_ensembles):
        """Calibration: the twins pass the same uniformity test, so a
        failure above cannot be blamed on the harness."""
        _, twins = served_crash_ensembles
        observed = np.array([twins[value] for value in range(N)])
        _, p_value = scipy_stats.chisquare(observed)
        assert p_value > ALPHA
