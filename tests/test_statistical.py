"""Statistical correctness tests (chi-square / goodness-of-fit).

The unit suites check means and tolerances; these tests apply proper
goodness-of-fit machinery to the distributional claims at the heart of
the paper -- Theorem 2 (the maintained concise sample is uniform),
reservoir uniformity, Zipf generator fidelity, and the geometric skip
law -- using scipy's chi-square at a conservative significance level.

Every test is deterministic (fixed seeds), so these cannot flake; the
significance level only calibrates how strong the evidence is for the
specific seeds used.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

scipy_stats = pytest.importorskip("scipy.stats")

from repro.core.concise import ConciseSample
from repro.core.reservoir import ReservoirSample
from repro.randkit.rng import ReproRandom
from repro.streams.zipf import ZipfDistribution

ALPHA = 1e-4  # reject only on overwhelming evidence


class TestZipfGenerator:
    def test_chi_square_goodness_of_fit(self):
        domain, skew, n = 50, 1.2, 200_000
        distribution = ZipfDistribution(domain, skew)
        values = distribution.sample(n, seed=1)
        observed = np.bincount(values, minlength=domain + 1)[1:]
        expected = distribution.probabilities * n
        statistic, p_value = scipy_stats.chisquare(observed, expected)
        assert p_value > ALPHA, f"zipf GOF failed (chi2={statistic:.1f})"

    def test_uniform_case(self):
        values = ZipfDistribution(20, 0.0).sample(100_000, seed=2)
        observed = np.bincount(values, minlength=21)[1:]
        _, p_value = scipy_stats.chisquare(observed)
        assert p_value > ALPHA


class TestGeometricSkips:
    def test_skip_distribution_chi_square(self):
        rng = ReproRandom(3)
        p = 0.3
        n = 100_000
        draws = np.array([rng.geometric_skip(p) for _ in range(n)])
        # Bin 0..9 and a tail bucket.
        max_bin = 10
        observed = np.bincount(
            np.minimum(draws, max_bin), minlength=max_bin + 1
        )
        probabilities = np.array(
            [(1 - p) ** i * p for i in range(max_bin)]
            + [(1 - p) ** max_bin]
        )
        _, p_value = scipy_stats.chisquare(observed, probabilities * n)
        assert p_value > ALPHA


class TestReservoirUniformity:
    def test_inclusion_chi_square(self):
        """Each stream position appears with probability m/n; test the
        inclusion counts across trials against the binomial mean."""
        n, m, trials = 40, 8, 5000
        appearance = Counter()
        for trial in range(trials):
            sample = ReservoirSample(m, seed=trial)
            sample.insert_many(range(n))
            appearance.update(sample.points())
        observed = np.array([appearance[i] for i in range(n)])
        expected = np.full(n, trials * m / n)
        _, p_value = scipy_stats.chisquare(observed, expected)
        assert p_value > ALPHA


class TestTheorem2Uniformity:
    def test_concise_inclusion_uniform_across_positions(self):
        """Theorem 2: after maintenance with threshold raises, every
        stream position is equally likely to be in the sample.  All
        values distinct, so position == value and counts == inclusion
        flags."""
        n, bound, trials = 60, 12, 4000
        appearance = Counter()
        for trial in range(trials):
            sample = ConciseSample(bound, seed=trial)
            for value in range(n):
                sample.insert(value)
            appearance.update(sample.as_dict())
        observed = np.array(
            [appearance[value] for value in range(n)], dtype=np.float64
        )
        expected = np.full(n, observed.sum() / n)
        _, p_value = scipy_stats.chisquare(observed, expected)
        assert p_value > ALPHA, "Theorem 2 uniformity violated"

    def test_concise_sample_size_distribution_vs_binomial(self):
        """At a stable final threshold tau, inclusion is i.i.d.
        Bernoulli(1/tau), so sample-size / n concentrates at 1/tau."""
        n, bound = 50_000, 200
        ratios = []
        for trial in range(30):
            sample = ConciseSample(bound, seed=100 + trial)
            stream = np.arange(n) % 10_000  # near-uniform values
            sample.insert_array(stream)
            ratios.append(
                sample.sample_size * sample.threshold / n
            )
        # Each ratio estimates 1 within binomial noise.
        assert np.mean(ratios) == pytest.approx(1.0, abs=0.1)


class TestBernoulliCoin:
    def test_binomial_two_sided(self):
        rng = ReproRandom(5)
        p, n = 0.37, 50_000
        hits = sum(rng.bernoulli(p) for _ in range(n))
        p_value = scipy_stats.binomtest(hits, n, p).pvalue
        assert p_value > ALPHA
