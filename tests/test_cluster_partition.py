"""Value-hash partitioning: routing power without processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    partition_columns,
    partition_keys,
    shard_of_keys,
    shard_of_value,
)
from repro.engine.composite import encode_composite_array
from repro.streams import zipf_stream

STREAM = zipf_stream(10_000, 1_000, 1.25, seed=7)


class TestPartitionKeys:
    def test_single_attribute_is_verbatim(self):
        columns = {"v": STREAM, "w": STREAM + 1}
        keys = partition_keys(columns, ["v"])
        np.testing.assert_array_equal(keys, STREAM.astype(np.int64))

    def test_pair_uses_composite_encoding(self):
        left = np.arange(100, dtype=np.int64)
        right = (np.arange(100, dtype=np.int64) * 3) % 17
        columns = {"a": left, "b": right}
        keys = partition_keys(columns, ["a", "b"])
        np.testing.assert_array_equal(
            keys, encode_composite_array((left, right))
        )

    def test_three_attributes_rejected(self):
        columns = {"a": STREAM, "b": STREAM, "c": STREAM}
        with pytest.raises(ValueError):
            partition_keys(columns, ["a", "b", "c"])


class TestShardOfKeys:
    def test_one_shard_owns_everything(self):
        owners = shard_of_keys(STREAM, 1)
        assert (owners == 0).all()

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ValueError):
            shard_of_keys(STREAM, 0)

    def test_deterministic_and_value_pure(self):
        """The owner of a key is a pure function of (key, shards)."""
        owners = shard_of_keys(STREAM, 4)
        again = shard_of_keys(STREAM, 4)
        np.testing.assert_array_equal(owners, again)
        for value in (0, 1, 999, -5):
            assert shard_of_value(value, 4) == int(
                shard_of_keys(np.array([value], dtype=np.int64), 4)[0]
            )

    def test_avalanche_spreads_consecutive_keys(self):
        """Consecutive key values must not stripe: every shard owns a
        healthy share of a contiguous key range."""
        owners = shard_of_keys(np.arange(8_000, dtype=np.int64), 8)
        counts = np.bincount(owners, minlength=8)
        assert (counts > 0.5 * 1_000).all()
        assert (counts < 1.5 * 1_000).all()


class TestPartitionColumns:
    def test_pieces_reassemble_the_batch(self):
        columns = {"v": STREAM, "w": STREAM * 2}
        pieces = partition_columns(columns, ["v"], 4)
        assert len(pieces) == 4
        gathered = np.concatenate(
            [piece["v"] for piece in pieces if piece]
        )
        np.testing.assert_array_equal(
            np.sort(gathered), np.sort(STREAM)
        )

    def test_each_value_lives_on_one_shard(self):
        pieces = partition_columns({"v": STREAM}, ["v"], 4)
        seen: dict[int, int] = {}
        for shard, piece in enumerate(pieces):
            for value in set(piece.get("v", np.array([])).tolist()):
                assert seen.setdefault(int(value), shard) == shard

    def test_rows_stay_aligned_across_columns(self):
        columns = {"v": STREAM, "w": STREAM * 10 + 3}
        for piece in partition_columns(columns, ["v"], 4):
            if not piece:
                continue
            np.testing.assert_array_equal(
                piece["w"], piece["v"] * 10 + 3
            )

    def test_shard_order_is_a_subsequence(self):
        """Stable selection: each shard ingests the stream's rows in
        original order."""
        columns = {"v": STREAM}
        owners = shard_of_keys(STREAM.astype(np.int64), 4)
        for shard, piece in enumerate(partition_columns(columns, ["v"], 4)):
            if not piece:
                continue
            np.testing.assert_array_equal(
                piece["v"], STREAM[owners == shard]
            )

    def test_empty_batch_yields_empty_pieces(self):
        pieces = partition_columns(
            {"v": np.array([], dtype=np.int64)}, ["v"], 3
        )
        assert pieces == [{}, {}, {}]

    def test_single_shard_passes_batch_through(self):
        columns = {"v": STREAM}
        pieces = partition_columns(columns, ["v"], 1)
        assert len(pieces) == 1
        np.testing.assert_array_equal(pieces[0]["v"], STREAM)
