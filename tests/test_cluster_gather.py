"""Combining per-shard answers: the coordinator's estimator algebra."""

from __future__ import annotations

import math

import pytest

from repro.cluster.gather import (
    ClusterAnswer,
    combine_intervals,
    merge_hotlist_responses,
    merge_ratio_responses,
    merge_scalar_responses,
)
from repro.engine.responses import QueryResponse
from repro.estimators.intervals import ConfidenceInterval
from repro.hotlist.base import HotListAnswer, HotListEntry


def scalar(
    answer: float,
    half: float | None = None,
    confidence: float = 0.95,
    *,
    exact: bool = False,
) -> QueryResponse:
    interval = (
        None
        if half is None
        else ConfidenceInterval(
            low=answer - half, high=answer + half, confidence=confidence
        )
    )
    return QueryResponse(
        answer=answer,
        interval=interval,
        method="concise-sample",
        is_exact=exact,
        disk_accesses=1,
        exact_cost_estimate=10,
    )


class TestCombineIntervals:
    def test_half_widths_add_in_quadrature(self):
        intervals = [
            ConfidenceInterval(low=7.0, high=13.0, confidence=0.95),
            ConfidenceInterval(low=16.0, high=24.0, confidence=0.99),
        ]
        combined = combine_intervals(intervals, [10.0, 20.0], 30.0)
        assert combined is not None
        assert combined.low == pytest.approx(30.0 - 5.0)
        assert combined.high == pytest.approx(30.0 + 5.0)
        # The weakest shard's confidence wins.
        assert combined.confidence == 0.95

    def test_any_missing_interval_suppresses_the_combined_one(self):
        intervals = [
            ConfidenceInterval(low=7.0, high=13.0, confidence=0.95),
            None,
        ]
        assert combine_intervals(intervals, [10.0, 20.0], 30.0) is None
        assert combine_intervals([], [], 0.0) is None


class TestMergeScalarResponses:
    def test_additive_estimate_and_bookkeeping(self):
        answer = merge_scalar_responses(
            [scalar(100.0, 4.0), scalar(40.0, 3.0)], 2, 2
        )
        assert isinstance(answer, ClusterAnswer)
        assert answer.answer == pytest.approx(140.0)
        assert answer.interval is not None
        assert answer.interval.width == pytest.approx(2 * 5.0)
        assert not answer.degraded
        assert answer.response.method == "cluster:concise-sample"
        assert answer.response.disk_accesses == 2
        assert answer.response.exact_cost_estimate == 20

    def test_partial_coverage_is_flagged(self):
        answer = merge_scalar_responses([scalar(100.0, 4.0)], 1, 2)
        assert answer.degraded
        assert answer.shards_responding == 1
        assert answer.shards_total == 2

    def test_exact_only_when_all_parts_exact_and_full(self):
        full = merge_scalar_responses(
            [scalar(1.0, exact=True), scalar(2.0, exact=True)], 2, 2
        )
        assert full.response.is_exact
        degraded = merge_scalar_responses([scalar(1.0, exact=True)], 1, 2)
        assert not degraded.response.is_exact
        mixed = merge_scalar_responses(
            [scalar(1.0, exact=True), scalar(2.0)], 2, 2
        )
        assert not mixed.response.is_exact


class TestMergeRatioResponses:
    def test_ratio_of_sums_with_scaled_interval(self):
        answer = merge_ratio_responses(
            [scalar(30.0, 6.0), scalar(10.0, 8.0)],
            [100.0, 100.0],
            2,
            2,
            method="cluster:average",
        )
        assert answer.answer == pytest.approx(0.2)
        assert answer.interval is not None
        assert answer.interval.width == pytest.approx(
            2 * math.hypot(6.0, 8.0) / 200.0
        )
        assert answer.response.method == "cluster:average"

    def test_zero_denominator_degrades_to_zero(self):
        answer = merge_ratio_responses(
            [scalar(30.0, 6.0)], [0.0], 1, 1, method="cluster:selectivity"
        )
        assert answer.answer == 0.0
        assert answer.interval is None


def hotlist(entries: list[tuple[int, float]], k: int = 3) -> QueryResponse:
    return QueryResponse(
        answer=HotListAnswer(
            k=k,
            entries=tuple(
                HotListEntry(value, count) for value, count in entries
            ),
        ),
        interval=None,
        method="counting-hotlist",
        is_exact=False,
    )


class TestMergeHotlistResponses:
    def test_global_top_k_of_disjoint_shards(self):
        answer = merge_hotlist_responses(
            [
                hotlist([(1, 50.0), (3, 30.0)]),
                hotlist([(2, 40.0), (4, 10.0)]),
            ],
            3,
            2,
            2,
        )
        result = answer.answer
        assert isinstance(result, HotListAnswer)
        assert [(e.value, e.estimated_count) for e in result.entries] == [
            (1, 50.0),
            (2, 40.0),
            (3, 30.0),
        ]

    def test_ties_break_toward_smaller_value(self):
        answer = merge_hotlist_responses(
            [hotlist([(9, 20.0)]), hotlist([(2, 20.0)])], 1, 2, 2
        )
        result = answer.answer
        assert isinstance(result, HotListAnswer)
        assert result.entries[0].value == 2

    def test_non_hotlist_answer_rejected(self):
        with pytest.raises(TypeError):
            merge_hotlist_responses([scalar(1.0)], 3, 2, 2)
