"""Unit tests for the V-optimal histogram."""

from __future__ import annotations

import numpy as np
import pytest

from repro.randkit import numpy_generator
from repro.core.base import SynopsisError
from repro.streams import zipf_stream
from repro.synopses.histogram_vopt import VOptimalHistogram


class TestConstruction:
    def test_validation(self):
        with pytest.raises(SynopsisError):
            VOptimalHistogram.from_sample(np.arange(10), 0, 10)
        with pytest.raises(SynopsisError):
            VOptimalHistogram.from_sample(np.empty(0), 4, 10)

    def test_fewer_values_than_buckets(self):
        histogram = VOptimalHistogram.from_sample(
            np.array([1, 1, 2]), 10, 3
        )
        assert histogram.bucket_count == 2

    def test_total_rows_preserved(self):
        points = zipf_stream(20_000, 500, 1.0, seed=1)
        histogram = VOptimalHistogram.from_sample(points, 16, 20_000)
        assert histogram.total_rows == pytest.approx(20_000, rel=0.01)

    def test_footprint(self):
        histogram = VOptimalHistogram.from_sample(
            np.arange(1, 101), 10, 100
        )
        assert histogram.footprint == 40


class TestOptimality:
    def test_isolates_outlier_frequency(self):
        """A single huge spike should get its own bucket: the DP puts
        a boundary around it."""
        points = np.concatenate(
            [np.arange(1, 101), np.full(500, 50)]
        )
        histogram = VOptimalHistogram.from_sample(points, 8, len(points))
        # Equality estimate at the spike should be close to its count.
        assert histogram.estimate_equality(50) == pytest.approx(
            501, rel=0.35
        )

    def test_beats_random_partition_on_variance_objective(self):
        """The DP's partition cost is no worse than arbitrary
        partitions (check against the equal-width split)."""
        rng = numpy_generator(2)
        frequencies = rng.pareto(1.2, size=100) * 100

        def partition_cost(boundaries):
            total = 0.0
            for start, end in boundaries:
                segment = frequencies[start : end + 1]
                total += float(
                    ((segment - segment.mean()) ** 2).sum()
                )
            return total

        optimal = VOptimalHistogram._optimal_boundaries(frequencies, 6)
        equal_width = [
            (i * 100 // 6, (i + 1) * 100 // 6 - 1) for i in range(6)
        ]
        assert partition_cost(optimal) <= partition_cost(equal_width) + 1e-6

    def test_dp_exact_on_tiny_input(self):
        frequencies = np.array([10.0, 10.0, 1.0, 1.0])
        boundaries = VOptimalHistogram._optimal_boundaries(frequencies, 2)
        assert boundaries == [(0, 1), (2, 3)]


class TestEstimation:
    @pytest.fixture(scope="class")
    def histogram(self):
        points = zipf_stream(50_000, 2000, 1.2, seed=3)
        return (
            VOptimalHistogram.from_sample(points, 24, 50_000),
            points,
        )

    def test_full_range(self, histogram):
        h, points = histogram
        assert h.estimate_range(1, 2000) == pytest.approx(
            50_000, rel=0.02
        )

    def test_hot_range_accuracy(self, histogram):
        h, points = histogram
        truth = float(np.count_nonzero(points <= 10))
        assert h.estimate_range(1, 10) == pytest.approx(truth, rel=0.25)

    def test_empty_range(self, histogram):
        h, _ = histogram
        assert h.estimate_range(10, 5) == 0.0
        assert h.estimate_range(10**9, 2 * 10**9) == 0.0

    def test_equality_out_of_domain(self, histogram):
        h, _ = histogram
        assert h.estimate_equality(-5) == 0.0

    def test_pre_grouping_keeps_mass(self):
        points = zipf_stream(30_000, 5000, 0.5, seed=4)
        histogram = VOptimalHistogram.from_sample(
            points, 10, 30_000, max_points=64
        )
        assert histogram.total_rows == pytest.approx(30_000, rel=0.01)
